#pragma once
/// \file monitor.hpp
/// \brief Monitor — one-call wiring of the live-monitoring stack: sampler +
///        HTTP exposition server + progress tracker + flight recorder.
///
/// The examples' `--monitor <port>` flag constructs one of these:
///
///   g6::obs::Monitor monitor;
///   g6::obs::MonitorConfig cfg;
///   cfg.port = 8080;
///   monitor.start(cfg);              // sampler thread + server thread
///   ...run...                        // driver updates registry / tracker
///   monitor.stop();                  // flush series JSONL, stop threads
///
/// Endpoints served (127.0.0.1 only):
///   /metrics       Prometheus text exposition (format 0.0.4)
///   /metrics.json  registry snapshot as JSON
///   /progress      ProgressTracker::to_json() — per-job ETA and drift
///   /series        TimeSeriesSampler::to_json() — the retained frame ring
///
/// Every sampler frame is forwarded to the FlightRecorder (bounded ring +
/// throttled autosave), so even a SIGKILLed run leaves a recent
/// `flight_<ts>.json` behind. Monitoring only reads simulation state —
/// determinism contract — and compiles to no-ops under G6_OBS_DISABLED.

#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace g6::obs {

struct MonitorConfig {
  int port = 0;  ///< TCP port for the HTTP server; 0 = ephemeral (tests)
  bool serve = true;  ///< false: sampler/flight only, no server thread
  double sample_interval = 1.0;   ///< sampler cadence, seconds
  std::size_t series_frames = 600;  ///< sampler ring capacity
  std::string series_path;  ///< if non-empty, write JSONL here on stop()
  std::string series_binary_path;  ///< if non-empty, write G6SERIES1 ring
  std::string flight_dir = ".";    ///< where flight_<ts>.json lands
  std::size_t flight_steps = 256;  ///< flight ring: step records
  std::size_t flight_events = 256;  ///< flight ring: fault/recovery notes
  std::size_t flight_frames = 32;   ///< flight ring: sampler frames
  double flight_autosave = 2.0;     ///< min seconds between autosaves
  bool crash_handlers = true;  ///< install fatal-signal dump handlers
};

#ifndef G6_OBS_DISABLED

class MonitorServer;
class TimeSeriesSampler;

class Monitor {
 public:
  /// Monitors MetricsRegistry::global() and ProgressTracker::global().
  Monitor();
  /// Monitors a private registry (tests).
  explicit Monitor(MetricsRegistry& registry);
  ~Monitor();  ///< stop()s if still running
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Arm the flight recorder, start the sampler thread and (when cfg.serve)
  /// the HTTP server. Returns false when the port cannot be bound.
  bool start(const MonitorConfig& cfg);

  /// Stop both threads; flush series files if configured. Idempotent.
  void stop();

  bool running() const;

  /// Bound HTTP port (resolves port 0); 0 when not serving.
  int port() const;

  TimeSeriesSampler& sampler();
  MonitorServer& server();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // G6_OBS_DISABLED

class Monitor {
 public:
  Monitor() = default;
  explicit Monitor(MetricsRegistry&) {}
  bool start(const MonitorConfig&) { return false; }
  void stop() {}
  bool running() const { return false; }
  int port() const { return 0; }
};

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
