#pragma once
/// \file trace.hpp
/// \brief Scoped phase tracing: RAII spans recorded into per-thread ring
///        buffers, exported as Chrome trace_event JSON (loadable in
///        chrome://tracing or https://ui.perfetto.dev).
///
/// Use through the macros, never by naming TraceSpan directly:
///
///   void step() {
///     G6_TRACE_SPAN("blockstep");          // category defaults to "g6"
///     ...
///     { G6_TRACE_SPAN_CAT("pipeline", "hw"); machine.compute(...); }
///   }
///
/// Recording is off by default; TraceRecorder::global().enable() turns it
/// on (a disabled span costs one relaxed atomic load). Compiling with
/// G6_OBS_DISABLED removes the spans entirely — the macros expand to
/// `((void)0)`, so instrumented code carries zero runtime and zero code-size
/// cost in stripped builds. Span names/categories must be string literals
/// (or otherwise outlive the recorder): only the pointer is stored.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace g6::obs {

/// One completed span, timestamped in nanoseconds since the recorder epoch.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

/// Per-thread ring buffers of completed spans.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& global();

  /// Start/stop recording. Spans opened while disabled record nothing.
  void enable(bool on = true) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ring capacity per thread (default 65536 events). Applies to threads
  /// that record their first event after the call.
  void set_thread_capacity(std::size_t events);

  /// Nanoseconds since this recorder's epoch (steady clock).
  std::uint64_t now_ns() const;

  /// Append one completed span for the calling thread.
  void record(const char* name, const char* cat, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// All retained events, merged across threads, sorted by start time.
  std::vector<TraceEvent> events() const;

  /// Events overwritten because a thread ring was full.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drop all retained events (keeps thread registrations and the epoch).
  void clear();

  /// Chrome trace_event JSON (the "JSON array format" wrapped in an object
  /// with displayTimeUnit; timestamps in microseconds).
  std::string to_chrome_json() const;

  /// Write to_chrome_json() to \p path; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct ThreadBuf {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;
    std::size_t head = 0;   ///< next write position
    std::size_t count = 0;  ///< valid events (saturates at ring.size())
    std::uint32_t tid = 0;
  };

  ThreadBuf* thread_buf();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> capacity_{65536};

  mutable std::mutex mu_;  ///< guards threads_ growth
  std::vector<std::unique_ptr<ThreadBuf>> threads_;

  // Epoch captured on first use so timestamps stay small.
  std::atomic<std::uint64_t> epoch_ns_{0};
};

/// RAII span. Captures the recorder's enabled state at open; zero work when
/// tracing is off. Use the G6_TRACE_SPAN* macros.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "g6")
      : rec_(TraceRecorder::global().enabled() ? &TraceRecorder::global()
                                               : nullptr) {
    if (rec_ != nullptr) {
      name_ = name;
      cat_ = cat;
      start_ns_ = rec_->now_ns();
    }
  }
  ~TraceSpan() {
    if (rec_ != nullptr)
      rec_->record(name_, cat_, start_ns_, rec_->now_ns() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* rec_;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace g6::obs

#ifdef G6_OBS_DISABLED

#define G6_TRACE_SPAN(name) ((void)0)
#define G6_TRACE_SPAN_CAT(name, cat) ((void)0)

#else

#define G6_OBS_CONCAT_INNER(a, b) a##b
#define G6_OBS_CONCAT(a, b) G6_OBS_CONCAT_INNER(a, b)

/// Open a span covering the rest of the enclosing scope.
#define G6_TRACE_SPAN(name) \
  ::g6::obs::TraceSpan G6_OBS_CONCAT(g6_trace_span_, __LINE__)(name)
#define G6_TRACE_SPAN_CAT(name, cat) \
  ::g6::obs::TraceSpan G6_OBS_CONCAT(g6_trace_span_, __LINE__)(name, cat)

#endif  // G6_OBS_DISABLED
