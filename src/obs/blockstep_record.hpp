#pragma once
/// \file blockstep_record.hpp
/// \brief Per-blockstep timeline recorder: the measured counterpart of
///        cluster::StepBreakdown.
///
/// The GRAPE-6 system paper (Makino et al. 2003, §9) reports the time of one
/// block step as a sum of named phases — predictor sweep, pipeline passes,
/// i-particle/result communication, j-memory update, host work, inter-host
/// sync. The analytic PerfModel reproduces that accounting; this recorder
/// *measures* it: the integrator charges host/scheduler wall time, hardware
/// backends charge their cycle- and byte-accounted phase times, and each
/// block step closes into one StepRecord. The report module joins these
/// records against the model term by term.
///
/// Threading: one recorder belongs to one integration driver thread (begin/
/// annotate/end and add() are called from the thread running the step loop).

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace g6::obs {

/// The phases of one block step, in StepBreakdown order.
enum class Phase {
  kPredict = 0,  ///< predictor sweep over j-memory
  kPipeline,     ///< pipeline passes (force evaluation)
  kIComm,        ///< i-particle distribution
  kResultComm,   ///< force-result return path
  kJUpdate,      ///< corrected-particle writeback to j-memory
  kHost,         ///< host integration work (corrector, timestep, scheduler push)
  kSync,         ///< scheduler pop / inter-host barrier
};
inline constexpr std::size_t kPhaseCount = 7;

const char* phase_name(Phase p);

/// Measured record of one block step.
struct StepRecord {
  double t = 0.0;          ///< block time
  std::size_t n_act = 0;   ///< active particles in the block
  std::array<double, kPhaseCount> seconds{};  ///< per-phase seconds

  double& operator[](Phase p) { return seconds[static_cast<std::size_t>(p)]; }
  double operator[](Phase p) const { return seconds[static_cast<std::size_t>(p)]; }

  double total() const {
    double s = 0.0;
    for (double v : seconds) s += v;
    return s;
  }
};

/// Collects StepRecords over a run.
class BlockstepRecorder {
 public:
  /// Open a new record (phase times may arrive before t/n_act are known).
  void begin_step();
  /// Fill in the block time and size of the open record.
  void annotate(double t, std::size_t n_act);
  /// Close the open record and append it to records().
  void end_step();
  bool step_open() const { return open_; }

  /// Accumulate seconds into the open record's phase. Outside a step (e.g.
  /// the initial full-system force evaluation) the time lands in outside().
  void add(Phase p, double seconds);

  const std::vector<StepRecord>& records() const { return records_; }
  /// Phase time charged while no step was open.
  const StepRecord& outside() const { return outside_; }

  void clear();

  /// Element-wise sum over records() (t = last block time, n_act summed).
  StepRecord sum() const;

  /// JSON array of the records: [{"t":..,"n_act":..,"predict":..,...},..].
  std::string to_json() const;

 private:
  bool open_ = false;
  StepRecord current_;
  StepRecord outside_;
  std::vector<StepRecord> records_;
};

/// RAII helper: adds the scope's wall time into a recorder phase (no-op when
/// the recorder is null, so call sites stay unconditional).
class PhaseTimer {
 public:
  PhaseTimer(BlockstepRecorder* rec, Phase p) : rec_(rec), phase_(p) {}
  ~PhaseTimer() {
    if (rec_ != nullptr) rec_->add(phase_, timer_.seconds());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  BlockstepRecorder* rec_;
  Phase phase_;
  util::Timer timer_;
};

}  // namespace g6::obs
