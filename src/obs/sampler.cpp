#include "obs/sampler.hpp"

#include <cstdio>

#include "obs/json.hpp"

#ifndef G6_OBS_DISABLED
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "util/timer.hpp"
#endif

namespace g6::obs {

std::string SeriesFrame::to_json() const {
  std::string out = "{\"seq\":" + json_number(static_cast<double>(seq)) +
                    ",\"wall\":" + json_number(wall_seconds) +
                    ",\"dt\":" + json_number(dt) + ",\"m\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SeriesSample& s = samples[i];
    if (i != 0) out += ",";
    out += "[" + json_number(static_cast<double>(s.name_id)) + "," +
           json_number(static_cast<double>(static_cast<int>(s.kind))) + "," +
           json_number(s.value) + "," + json_number(s.delta) + "," +
           json_number(s.rate);
    if (s.kind == MetricKind::kHistogram)
      out += "," + json_number(s.p50) + "," + json_number(s.p90) + "," +
             json_number(s.p99);
    out += "]";
  }
  out += "]}";
  return out;
}

#ifndef G6_OBS_DISABLED

struct TimeSeriesSampler::Impl {
  MetricsRegistry& registry;
  g6::util::Timer epoch;  ///< wall_seconds origin

  std::mutex mu;  ///< guards everything below
  SamplerConfig cfg;
  std::vector<std::string> names;              ///< interned, append-only
  std::map<std::string, std::uint32_t> index;  ///< name -> id
  std::map<std::uint32_t, double> last_value;  ///< id -> previous frame value
  std::deque<SeriesFrame> ring;
  std::uint64_t taken = 0;
  double last_wall = 0.0;

  std::thread thread;
  std::condition_variable cv;
  bool stopping = false;
  bool thread_running = false;

  explicit Impl(MetricsRegistry& reg) : registry(reg) {}
};

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry& registry)
    : impl_(std::make_unique<Impl>(registry)) {}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::sample_now() {
  // Snapshot outside the sampler lock: the registry serializes snapshots
  // itself, and a provider may take arbitrarily long.
  const MetricsSnapshot snap = impl_->registry.snapshot();
  const double wall = impl_->epoch.seconds();

  SeriesFrame frame;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    frame.seq = impl_->taken++;
    frame.wall_seconds = wall;
    frame.dt = frame.seq == 0 ? 0.0 : wall - impl_->last_wall;
    impl_->last_wall = wall;
    frame.samples.reserve(snap.metrics.size());
    for (const MetricSnapshot& m : snap.metrics) {
      SeriesSample s;
      auto it = impl_->index.find(m.name);
      if (it == impl_->index.end()) {
        const auto id = static_cast<std::uint32_t>(impl_->names.size());
        impl_->names.push_back(m.name);
        it = impl_->index.emplace(m.name, id).first;
      }
      s.name_id = it->second;
      s.kind = m.kind;
      s.value = m.value;
      const auto prev = impl_->last_value.find(s.name_id);
      if (prev != impl_->last_value.end()) {
        s.delta = s.value - prev->second;
        s.rate = frame.dt > 0.0 ? s.delta / frame.dt : 0.0;
        prev->second = s.value;
      } else {
        impl_->last_value.emplace(s.name_id, s.value);
      }
      if (m.kind == MetricKind::kHistogram) {
        s.p50 = m.hist.p50;
        s.p90 = m.hist.p90;
        s.p99 = m.hist.p99;
      }
      frame.samples.push_back(s);
    }
    impl_->ring.push_back(frame);
    while (impl_->ring.size() > impl_->cfg.max_frames) impl_->ring.pop_front();
  }
  if (on_frame) on_frame(frame);
}

void TimeSeriesSampler::start(SamplerConfig cfg) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->thread_running) return;
  if (cfg.interval_seconds <= 0.0) cfg.interval_seconds = 1.0;
  if (cfg.max_frames == 0) cfg.max_frames = 1;
  impl_->cfg = cfg;
  impl_->stopping = false;
  impl_->thread_running = true;
  lock.unlock();
  impl_->thread = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> wait_lock(impl_->mu);
        impl_->cv.wait_for(
            wait_lock,
            std::chrono::duration<double>(impl_->cfg.interval_seconds),
            [this] { return impl_->stopping; });
        if (impl_->stopping) return;
      }
      sample_now();
    }
  });
}

void TimeSeriesSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->thread_running) return;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->thread_running = false;
}

bool TimeSeriesSampler::running() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->thread_running;
}

std::vector<std::string> TimeSeriesSampler::names() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->names;
}

std::vector<SeriesFrame> TimeSeriesSampler::frames() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return std::vector<SeriesFrame>(impl_->ring.begin(), impl_->ring.end());
}

std::uint64_t TimeSeriesSampler::frames_taken() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->taken;
}

namespace {

std::string names_json(const std::vector<std::string>& names) {
  std::string out = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(names[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

std::string TimeSeriesSampler::to_json() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"interval\":" + json_number(impl_->cfg.interval_seconds) +
                    ",\"frames_taken\":" +
                    json_number(static_cast<double>(impl_->taken)) +
                    ",\"names\":" + names_json(impl_->names) + ",\"frames\":[";
  bool first = true;
  for (const SeriesFrame& f : impl_->ring) {
    if (!first) out += ",";
    first = false;
    out += f.to_json();
  }
  out += "]}";
  return out;
}

bool TimeSeriesSampler::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const std::string header =
        "{\"series\":\"g6\",\"interval\":" +
        json_number(impl_->cfg.interval_seconds) +
        ",\"names\":" + names_json(impl_->names) + "}\n";
    ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
    for (const SeriesFrame& frame : impl_->ring) {
      const std::string line = frame.to_json() + "\n";
      ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size();
    }
  }
  return std::fclose(f) == 0 && ok;
}

namespace {

template <typename T>
bool put(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;  // little-endian hosts only
}

}  // namespace

bool TimeSeriesSampler::write_binary(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite("G6SERIES1", 1, 9, f) == 9;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ok = ok && put(f, static_cast<std::uint32_t>(impl_->names.size()));
    for (const std::string& name : impl_->names) {
      ok = ok && put(f, static_cast<std::uint32_t>(name.size()));
      ok = ok && std::fwrite(name.data(), 1, name.size(), f) == name.size();
    }
    ok = ok && put(f, static_cast<std::uint32_t>(impl_->ring.size()));
    for (const SeriesFrame& frame : impl_->ring) {
      ok = ok && put(f, frame.seq) && put(f, frame.wall_seconds) &&
           put(f, frame.dt) &&
           put(f, static_cast<std::uint32_t>(frame.samples.size()));
      for (const SeriesSample& s : frame.samples) {
        ok = ok && put(f, s.name_id) &&
             put(f, static_cast<std::uint8_t>(s.kind)) && put(f, s.value) &&
             put(f, s.delta) && put(f, s.rate) && put(f, s.p50) &&
             put(f, s.p90) && put(f, s.p99);
      }
    }
  }
  return std::fclose(f) == 0 && ok;
}

#endif  // G6_OBS_DISABLED

}  // namespace g6::obs
