#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace g6::obs {

bool JsonValue::as_bool() const {
  G6_CHECK(is_bool(), "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  G6_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  G6_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  G6_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  G6_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  G6_CHECK(is_array(), "JSON value is not an array");
  G6_CHECK(i < array_.size(), "JSON array index out of range");
  return array_[i];
}

std::size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = x;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    G6_CHECK(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    G6_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    G6_CHECK(pos_ < text_.size() && text_[pos_] == c,
             std::string("expected '") + c + "' in JSON at offset " +
                 std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        G6_CHECK(consume_literal("true"), "malformed JSON literal");
        return JsonValue::make_bool(true);
      case 'f':
        G6_CHECK(consume_literal("false"), "malformed JSON literal");
        return JsonValue::make_bool(false);
      case 'n':
        G6_CHECK(consume_literal("null"), "malformed JSON literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      G6_CHECK(pos_ < text_.size(), "unterminated JSON string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      G6_CHECK(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          G6_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else G6_CHECK(false, "bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (no surrogate-pair combining; the
          // exports only emit escapes for control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: G6_CHECK(false, "unknown JSON escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    G6_CHECK(any, "malformed JSON number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    G6_CHECK(end != nullptr && *end == '\0', "malformed JSON number");
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

}  // namespace g6::obs
