#pragma once
/// \file report.hpp
/// \brief Measured-vs-model performance accounting: join the blockstep
///        recorder's measured phase times against an analytic per-term model
///        (cluster::PerfModel in production; any callback in tests) and
///        report per-term ratios plus sustained-speed numbers in the paper's
///        57-operations-per-interaction convention.
///
/// obs does not depend on cluster; the model side enters as a callback that
/// maps a block size to the seven modeled phase times (see
/// cluster::to_phase_array for the PerfModel adapter).

#include <array>
#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "obs/blockstep_record.hpp"

namespace g6::obs {

/// Maps n_act -> modeled seconds per phase for one block step.
using ModelTermsFn = std::function<std::array<double, kPhaseCount>(std::size_t)>;

/// Aggregate of the measured records joined with the model.
struct ModelComparison {
  std::size_t steps = 0;          ///< number of block steps joined
  std::size_t n_total = 0;        ///< system size (for the op count)
  double operations = 0.0;        ///< 57 * N * sum(n_act)
  std::array<double, kPhaseCount> measured{};  ///< summed measured seconds
  std::array<double, kPhaseCount> modeled{};   ///< summed modeled seconds
  double measured_seconds = 0.0;
  double modeled_seconds = 0.0;
  double measured_flops = 0.0;  ///< operations / measured_seconds
  double modeled_flops = 0.0;   ///< operations / modeled_seconds

  double measured_of(Phase p) const { return measured[static_cast<std::size_t>(p)]; }
  double modeled_of(Phase p) const { return modeled[static_cast<std::size_t>(p)]; }
  /// measured / modeled for one phase (inf when the model term is zero).
  double ratio(Phase p) const;
};

/// Join measured records against the model. \p ops_per_interaction defaults
/// to the Gordon Bell convention (57).
ModelComparison compare_to_model(std::span<const StepRecord> records,
                                 std::size_t n_total, const ModelTermsFn& model,
                                 double ops_per_interaction = 57.0);

/// Render the per-term table:
///   term | measured [s] | modeled [s] | measured/modeled
/// plus total and sustained-flops rows.
std::string render_comparison(const ModelComparison& cmp);

/// JSON object for embedding in the metrics export.
std::string comparison_to_json(const ModelComparison& cmp);

}  // namespace g6::obs
