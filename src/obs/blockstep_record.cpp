#include "obs/blockstep_record.hpp"

#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kPredict: return "predict";
    case Phase::kPipeline: return "pipeline";
    case Phase::kIComm: return "i_comm";
    case Phase::kResultComm: return "result_comm";
    case Phase::kJUpdate: return "j_update";
    case Phase::kHost: return "host";
    case Phase::kSync: return "sync";
  }
  return "?";
}

void BlockstepRecorder::begin_step() {
  G6_CHECK(!open_, "begin_step with a step already open");
  current_ = StepRecord{};
  open_ = true;
}

void BlockstepRecorder::annotate(double t, std::size_t n_act) {
  G6_CHECK(open_, "annotate without an open step");
  current_.t = t;
  current_.n_act = n_act;
}

void BlockstepRecorder::end_step() {
  G6_CHECK(open_, "end_step without an open step");
  records_.push_back(current_);
  open_ = false;
}

void BlockstepRecorder::add(Phase p, double seconds) {
  (open_ ? current_ : outside_)[p] += seconds;
}

void BlockstepRecorder::clear() {
  open_ = false;
  current_ = StepRecord{};
  outside_ = StepRecord{};
  records_.clear();
}

StepRecord BlockstepRecorder::sum() const {
  StepRecord total;
  for (const StepRecord& r : records_) {
    total.t = r.t;
    total.n_act += r.n_act;
    for (std::size_t k = 0; k < kPhaseCount; ++k) total.seconds[k] += r.seconds[k];
  }
  return total;
}

std::string BlockstepRecorder::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const StepRecord& r : records_) {
    if (!first) out += ",";
    first = false;
    out += "{\"t\":" + json_number(r.t) +
           ",\"n_act\":" + json_number(static_cast<double>(r.n_act));
    for (std::size_t k = 0; k < kPhaseCount; ++k) {
      out += ",\"";
      out += phase_name(static_cast<Phase>(k));
      out += "\":" + json_number(r.seconds[k]);
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace g6::obs
