#include "obs/report.hpp"

#include <cmath>
#include <limits>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace g6::obs {

double ModelComparison::ratio(Phase p) const {
  const double m = modeled_of(p);
  if (m == 0.0)
    return measured_of(p) == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return measured_of(p) / m;
}

ModelComparison compare_to_model(std::span<const StepRecord> records,
                                 std::size_t n_total, const ModelTermsFn& model,
                                 double ops_per_interaction) {
  ModelComparison cmp;
  cmp.n_total = n_total;
  for (const StepRecord& r : records) {
    if (r.n_act == 0) continue;
    ++cmp.steps;
    cmp.operations += ops_per_interaction * static_cast<double>(n_total) *
                      static_cast<double>(r.n_act);
    const std::array<double, kPhaseCount> m = model(r.n_act);
    for (std::size_t k = 0; k < kPhaseCount; ++k) {
      cmp.measured[k] += r.seconds[k];
      cmp.modeled[k] += m[k];
    }
  }
  for (std::size_t k = 0; k < kPhaseCount; ++k) {
    cmp.measured_seconds += cmp.measured[k];
    cmp.modeled_seconds += cmp.modeled[k];
  }
  if (cmp.measured_seconds > 0.0)
    cmp.measured_flops = cmp.operations / cmp.measured_seconds;
  if (cmp.modeled_seconds > 0.0)
    cmp.modeled_flops = cmp.operations / cmp.modeled_seconds;
  return cmp;
}

std::string render_comparison(const ModelComparison& cmp) {
  util::Table t({"step term", "measured [s]", "modeled [s]", "measured/modeled"});
  for (std::size_t k = 0; k < kPhaseCount; ++k) {
    const Phase p = static_cast<Phase>(k);
    t.row({phase_name(p), util::fmt_sci(cmp.measured_of(p)),
           util::fmt_sci(cmp.modeled_of(p)), util::fmt(cmp.ratio(p), 3)});
  }
  t.row({"total", util::fmt_sci(cmp.measured_seconds),
         util::fmt_sci(cmp.modeled_seconds),
         util::fmt(cmp.modeled_seconds == 0.0
                       ? 1.0
                       : cmp.measured_seconds / cmp.modeled_seconds,
                   3)});
  t.row({"sustained [flops]", util::fmt_sci(cmp.measured_flops),
         util::fmt_sci(cmp.modeled_flops), "-"});
  std::string out = t.render();
  out += "(" + std::to_string(cmp.steps) + " block steps, " +
         json_number(cmp.operations) + " operations in the 57-op convention)\n";
  return out;
}

std::string comparison_to_json(const ModelComparison& cmp) {
  std::string out = "{\"steps\":" + json_number(static_cast<double>(cmp.steps)) +
                    ",\"n_total\":" + json_number(static_cast<double>(cmp.n_total)) +
                    ",\"operations\":" + json_number(cmp.operations) +
                    ",\"measured_seconds\":" + json_number(cmp.measured_seconds) +
                    ",\"modeled_seconds\":" + json_number(cmp.modeled_seconds) +
                    ",\"measured_flops\":" + json_number(cmp.measured_flops) +
                    ",\"modeled_flops\":" + json_number(cmp.modeled_flops) +
                    ",\"terms\":{";
  for (std::size_t k = 0; k < kPhaseCount; ++k) {
    const Phase p = static_cast<Phase>(k);
    if (k != 0) out += ",";
    out += "\"";
    out += phase_name(p);
    out += "\":{\"measured\":" + json_number(cmp.measured_of(p)) +
           ",\"modeled\":" + json_number(cmp.modeled_of(p)) +
           ",\"ratio\":" + json_number(cmp.ratio(p)) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace g6::obs
