#include "obs/monitor.hpp"

#ifndef G6_OBS_DISABLED

#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/monitor_server.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"

namespace g6::obs {

struct Monitor::Impl {
  MetricsRegistry& registry;
  TimeSeriesSampler sampler;
  MonitorServer server;
  MonitorConfig cfg;
  bool started = false;

  explicit Impl(MetricsRegistry& reg) : registry(reg), sampler(reg) {}
};

Monitor::Monitor() : Monitor(MetricsRegistry::global()) {}

Monitor::Monitor(MetricsRegistry& registry)
    : impl_(std::make_unique<Impl>(registry)) {}

Monitor::~Monitor() { stop(); }

bool Monitor::start(const MonitorConfig& cfg) {
  if (impl_->started) return true;
  impl_->cfg = cfg;

  FlightConfig fc;
  fc.dir = cfg.flight_dir;
  fc.max_steps = cfg.flight_steps;
  fc.max_events = cfg.flight_events;
  fc.max_frames = cfg.flight_frames;
  fc.autosave_min_interval = cfg.flight_autosave;
  FlightRecorder::global().enable(fc);
  if (cfg.crash_handlers) FlightRecorder::install_crash_handlers();

  // Feed every frame into the flight ring; its throttled autosave is what
  // survives SIGKILL.
  impl_->sampler.on_frame = [](const SeriesFrame& frame) {
    FlightRecorder::global().record_frame_json(frame.to_json());
  };

  if (cfg.serve) {
    MetricsRegistry* reg = &impl_->registry;
    impl_->server.route("/metrics", [reg] {
      return HttpResponse{200, "text/plain; version=0.0.4",
                          to_prometheus(reg->snapshot())};
    });
    impl_->server.route("/metrics.json", [reg] {
      return HttpResponse{200, "application/json",
                          "{\"metrics\":" + reg->snapshot().to_json() + "}"};
    });
    impl_->server.route("/progress", [] {
      return HttpResponse{200, "application/json",
                          ProgressTracker::global().to_json()};
    });
    TimeSeriesSampler* sampler = &impl_->sampler;
    impl_->server.route("/series", [sampler] {
      return HttpResponse{200, "application/json", sampler->to_json()};
    });
    if (!impl_->server.start(cfg.port)) return false;
  }

  SamplerConfig sc;
  sc.interval_seconds = cfg.sample_interval;
  sc.max_frames = cfg.series_frames;
  impl_->sampler.start(sc);
  impl_->started = true;
  return true;
}

void Monitor::stop() {
  if (!impl_->started) return;
  impl_->sampler.stop();
  impl_->server.stop();
  if (!impl_->cfg.series_path.empty())
    impl_->sampler.write_jsonl(impl_->cfg.series_path);
  if (!impl_->cfg.series_binary_path.empty())
    impl_->sampler.write_binary(impl_->cfg.series_binary_path);
  impl_->started = false;
}

bool Monitor::running() const { return impl_->started; }

int Monitor::port() const { return impl_->server.port(); }

TimeSeriesSampler& Monitor::sampler() { return impl_->sampler; }
MonitorServer& Monitor::server() { return impl_->server; }

}  // namespace g6::obs

#endif  // G6_OBS_DISABLED
