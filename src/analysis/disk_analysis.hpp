#pragma once
/// \file disk_analysis.hpp
/// \brief Analysis of planetesimal-disk snapshots: radial surface-density
///        profiles, orbital-element statistics, velocity dispersions and the
///        gap-contrast metric used to quantify the paper's Figure 13 ("Gap
///        of the distribution is formed near the radius of protoplanets").

#include <cstddef>
#include <vector>

#include "disk/kepler.hpp"
#include "nbody/particle.hpp"
#include "util/histogram.hpp"

namespace g6::analysis {

using g6::nbody::ParticleSystem;

/// Radial surface-density profile Σ(r): mass per unit area in annular bins.
/// \p exclude lists particle indices to skip (the protoplanets).
g6::util::Histogram surface_density(const ParticleSystem& ps, double r_in,
                                    double r_out, std::size_t nbins,
                                    const std::vector<std::size_t>& exclude = {});

/// Orbital elements of every (bound) particle. Unbound/degenerate states
/// yield has_elements = false.
struct ParticleElements {
  bool bound = false;
  g6::disk::OrbitalElements el;
};
std::vector<ParticleElements> all_elements(const ParticleSystem& ps, double solar_gm,
                                           const std::vector<std::size_t>& exclude = {});

/// RMS eccentricity / inclination (mass-weighted) over the bound particles —
/// the dynamical temperature of the disk.
struct DispersionReport {
  double rms_e = 0.0;
  double rms_i = 0.0;
  std::size_t n_bound = 0;
  std::size_t n_unbound = 0;
};
DispersionReport dispersions(const ParticleSystem& ps, double solar_gm,
                             const std::vector<std::size_t>& exclude = {});

/// RMS eccentricity in annular bins of semi-major axis (heating profile).
std::vector<double> rms_e_profile(const ParticleSystem& ps, double solar_gm,
                                  double a_in, double a_out, std::size_t nbins,
                                  const std::vector<std::size_t>& exclude = {});

/// Dynamical classification of the planetesimal population (paper §2: "some
/// planetesimals are accreted and others are scattered away from the solar
/// system by Neptune. This scattering efficiency is an important key...").
struct PopulationCensus {
  std::size_t n_cold = 0;       ///< bound, orbit crosses no protoplanet
  std::size_t n_crossing = 0;   ///< bound, perihelion..aphelion brackets a protoplanet
  std::size_t n_scattered = 0;  ///< bound but e > e_scatter (strongly kicked)
  std::size_t n_unbound = 0;    ///< hyperbolic: the ejection / Oort channel

  std::size_t total() const {
    return n_cold + n_crossing + n_scattered + n_unbound;
  }
};

/// Classify every (non-excluded) particle against the protoplanet orbits.
/// A particle is "crossing" when its radial range [q, Q] brackets any of
/// \p protoplanet_a; "scattered" when bound with e > e_scatter.
PopulationCensus population_census(const ParticleSystem& ps, double solar_gm,
                                   const std::vector<double>& protoplanet_a,
                                   const std::vector<std::size_t>& exclude = {},
                                   double e_scatter = 0.3);

/// Gap contrast around semi-major axis \p a_gap: the ratio of the mean
/// surface number density in [a_gap - w, a_gap + w] to the mean in the two
/// flanking reference bands. 1 = no gap, -> 0 as the gap empties. Number-
/// weighted by default (the paper's Figure 13 shows particle positions);
/// pass mass_weighted = true for a mass-density contrast.
double gap_contrast(const ParticleSystem& ps, double solar_gm, double a_gap,
                    double width, const std::vector<std::size_t>& exclude = {},
                    bool mass_weighted = false);

}  // namespace g6::analysis
