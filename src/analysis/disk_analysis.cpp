#include "analysis/disk_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace g6::analysis {

namespace {
std::vector<bool> exclusion_mask(std::size_t n, const std::vector<std::size_t>& exclude) {
  std::vector<bool> mask(n, false);
  for (std::size_t i : exclude) {
    G6_CHECK(i < n, "exclusion index out of range");
    mask[i] = true;
  }
  return mask;
}
}  // namespace

g6::util::Histogram surface_density(const ParticleSystem& ps, double r_in,
                                    double r_out, std::size_t nbins,
                                    const std::vector<std::size_t>& exclude) {
  g6::util::Histogram h(r_in, r_out, nbins);
  const auto mask = exclusion_mask(ps.size(), exclude);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (mask[i]) continue;
    const double r = std::hypot(ps.pos(i).x, ps.pos(i).y);  // cylindrical
    h.add(r, ps.mass(i));
  }
  // Convert accumulated mass to surface density by dividing by annulus area.
  g6::util::Histogram sigma(r_in, r_out, nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    const double lo = h.edge_lo(b);
    const double hi = h.edge_hi(b);
    const double area = std::numbers::pi * (hi * hi - lo * lo);
    if (h.count(b) > 0.0) sigma.add(h.center(b), h.count(b) / area);
  }
  return sigma;
}

std::vector<ParticleElements> all_elements(const ParticleSystem& ps, double solar_gm,
                                           const std::vector<std::size_t>& exclude) {
  const auto mask = exclusion_mask(ps.size(), exclude);
  std::vector<ParticleElements> out(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (mask[i]) continue;
    g6::disk::StateVector sv{ps.pos(i), ps.vel(i)};
    if (g6::disk::specific_energy(sv, solar_gm) >= 0.0) continue;  // unbound
    out[i].bound = true;
    out[i].el = g6::disk::state_to_elements(sv, solar_gm);
  }
  return out;
}

DispersionReport dispersions(const ParticleSystem& ps, double solar_gm,
                             const std::vector<std::size_t>& exclude) {
  DispersionReport rep;
  const auto elems = all_elements(ps, solar_gm, exclude);
  const auto mask = exclusion_mask(ps.size(), exclude);
  double se2 = 0.0, si2 = 0.0, mtot = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (mask[i]) continue;
    if (!elems[i].bound) {
      ++rep.n_unbound;
      continue;
    }
    ++rep.n_bound;
    const double m = ps.mass(i);
    se2 += m * elems[i].el.e * elems[i].el.e;
    si2 += m * elems[i].el.inc * elems[i].el.inc;
    mtot += m;
  }
  if (mtot > 0.0) {
    rep.rms_e = std::sqrt(se2 / mtot);
    rep.rms_i = std::sqrt(si2 / mtot);
  }
  return rep;
}

std::vector<double> rms_e_profile(const ParticleSystem& ps, double solar_gm,
                                  double a_in, double a_out, std::size_t nbins,
                                  const std::vector<std::size_t>& exclude) {
  G6_CHECK(nbins > 0 && a_out > a_in, "bad profile bins");
  std::vector<double> se2(nbins, 0.0), mass(nbins, 0.0);
  const auto elems = all_elements(ps, solar_gm, exclude);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (!elems[i].bound) continue;
    const double a = elems[i].el.a;
    if (a < a_in || a >= a_out) continue;
    const auto b = static_cast<std::size_t>((a - a_in) / (a_out - a_in) *
                                            static_cast<double>(nbins));
    se2[std::min(b, nbins - 1)] += ps.mass(i) * elems[i].el.e * elems[i].el.e;
    mass[std::min(b, nbins - 1)] += ps.mass(i);
  }
  std::vector<double> out(nbins, 0.0);
  for (std::size_t b = 0; b < nbins; ++b)
    if (mass[b] > 0.0) out[b] = std::sqrt(se2[b] / mass[b]);
  return out;
}

PopulationCensus population_census(const ParticleSystem& ps, double solar_gm,
                                   const std::vector<double>& protoplanet_a,
                                   const std::vector<std::size_t>& exclude,
                                   double e_scatter) {
  const auto mask = exclusion_mask(ps.size(), exclude);
  PopulationCensus census;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (mask[i]) continue;
    const g6::disk::StateVector sv{ps.pos(i), ps.vel(i)};
    if (g6::disk::specific_energy(sv, solar_gm) >= 0.0) {
      ++census.n_unbound;
      continue;
    }
    const auto el = g6::disk::state_to_elements(sv, solar_gm);
    if (el.e > e_scatter) {
      ++census.n_scattered;
      continue;
    }
    const double q = el.a * (1.0 - el.e);
    const double bigq = el.a * (1.0 + el.e);
    bool crossing = false;
    for (double app : protoplanet_a)
      if (q <= app && app <= bigq) crossing = true;
    if (crossing) {
      ++census.n_crossing;
    } else {
      ++census.n_cold;
    }
  }
  return census;
}

double gap_contrast(const ParticleSystem& ps, double solar_gm, double a_gap,
                    double width, const std::vector<std::size_t>& exclude,
                    bool mass_weighted) {
  G6_CHECK(width > 0.0, "gap width must be positive");
  const auto elems = all_elements(ps, solar_gm, exclude);
  double m_gap = 0.0, m_ref = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (!elems[i].bound) continue;
    const double a = elems[i].el.a;
    const double m = mass_weighted ? ps.mass(i) : 1.0;
    if (std::abs(a - a_gap) <= width) {
      m_gap += m;
    } else if (std::abs(a - a_gap) <= 3.0 * width) {
      m_ref += m;  // two flanking bands, each 2w wide -> 4w total
    }
  }
  if (m_ref <= 0.0) return m_gap > 0.0 ? 2.0 : 1.0;
  // Normalise band areas: gap band is 2w wide, reference 4w.
  return (m_gap / (2.0 * width)) / (m_ref / (4.0 * width));
}

}  // namespace g6::analysis
