#include "nbody/models.hpp"

#include <cmath>
#include <numbers>

#include "nbody/energy.hpp"
#include "util/check.hpp"

namespace g6::nbody {

namespace {

/// Isotropic random direction.
Vec3 random_direction(g6::util::Rng& rng) {
  const double z = rng.uniform(-1.0, 1.0);
  const double phi = rng.angle();
  const double s = std::sqrt(1.0 - z * z);
  return {s * std::cos(phi), s * std::sin(phi), z};
}

}  // namespace

void to_center_of_mass_frame(ParticleSystem& ps) {
  const Vec3 x0 = center_of_mass(ps);
  const Vec3 v0 = center_of_mass_velocity(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps.pos(i) -= x0;
    ps.vel(i) -= v0;
  }
}

ParticleSystem plummer_sphere(std::size_t n, double total_mass, double scale,
                              g6::util::Rng& rng) {
  G6_CHECK(n > 0 && total_mass > 0.0 && scale > 0.0, "bad Plummer parameters");
  ParticleSystem ps;
  const double m = total_mass / static_cast<double>(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the cumulative mass profile M(r) ∝ (1 + (a/r)^2)^(-3/2).
    double u;
    do { u = rng.uniform(); } while (u == 0.0);
    const double r = scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);

    // Velocity modulus by von Neumann rejection on q^2 (1-q^2)^{7/2}
    // (Aarseth, Hénon & Wielen 1974), q = v / v_escape.
    double q, g;
    do {
      q = rng.uniform();
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double v_esc =
        std::sqrt(2.0 * total_mass) * std::pow(r * r + scale * scale, -0.25);

    ps.add(m, r * random_direction(rng), q * v_esc * random_direction(rng));
  }
  to_center_of_mass_frame(ps);
  return ps;
}

ParticleSystem cold_uniform_sphere(std::size_t n, double total_mass, double radius,
                                   g6::util::Rng& rng) {
  G6_CHECK(n > 0 && total_mass > 0.0 && radius > 0.0, "bad sphere parameters");
  ParticleSystem ps;
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = radius * std::cbrt(rng.uniform());
    ps.add(m, r * random_direction(rng), {});
  }
  to_center_of_mass_frame(ps);
  return ps;
}

double virial_ratio(const ParticleSystem& ps, double eps) {
  const EnergyReport rep = compute_energy(ps, eps, 0.0);
  G6_CHECK(rep.potential_mutual < 0.0, "virial ratio of an unbound system");
  return -rep.kinetic / rep.potential_mutual;
}

}  // namespace g6::nbody
