#pragma once
/// \file simd_dispatch.hpp
/// \brief Runtime multi-ISA dispatch for the force-kernel stack.
///
/// One binary carries four instantiations of every vector kernel — scalar,
/// SSE2, AVX2+FMA and AVX-512 — compiled in separate translation units with
/// per-file ISA flags (src/nbody/kernels_<isa>.cpp, see CMakeLists.txt).
/// At startup the CPU is probed once via CPUID and the highest supported
/// level is selected; `G6_SIMD_LEVEL=scalar|sse2|avx2|avx512` overrides the
/// choice (clamped, with a one-shot warning, to what the CPU supports) so
/// tests and CI can exercise the whole fallback ladder on one machine.
///
/// The same probe derives the kBlocked kernel's i×j tile geometry from the
/// host's L1d/L2 sizes (overridable with G6_BLOCK_I / G6_BLOCK_J), and
/// publish_kernel_metrics() exposes the whole decision as `g6.kernel.*`
/// gauges so `--monitor` shows what the hot path is actually running.
///
/// The exact kernels are bit-identical across every level (per-pair
/// arithmetic is IEEE-identical at any width and accumulation replays the
/// seed's j-order), so dispatch changes throughput only — enforced by the
/// conformance tests run under each G6_SIMD_LEVEL in CI.

#include <cstddef>
#include <cstdint>
#include <string>

#include "nbody/force_kernels.hpp"

namespace g6::obs {
class MetricsRegistry;
}

namespace g6::nbody {

/// The dispatch ladder, lowest to highest. Each level requires all the
/// features of the levels below it.
enum class SimdLevel : int {
  kScalar = 0,  ///< no explicit vectors (x86-64 baseline codegen)
  kSse2 = 1,    ///< 2 double lanes (x86-64 baseline ISA, explicit vectors)
  kAvx2 = 2,    ///< 4 double lanes + FMA
  kAvx512 = 3,  ///< 8 double lanes + FMA + vrsqrt14 (enables kFast)
};

inline constexpr int kSimdLevelCount = 4;

/// Display name ("scalar", "sse2", "avx2", "avx512").
const char* simd_level_name(SimdLevel level);

/// Parse one level name; returns false (and leaves \p out untouched) when
/// the name is not recognised.
bool simd_level_from_name(const char* name, SimdLevel* out);

/// Highest level this CPU supports, probed once via CPUID (cached).
/// Non-x86 builds report kScalar.
SimdLevel detect_simd_level();

/// Resolve an environment override against the detected level. Pure —
/// \p env_value is the raw G6_SIMD_LEVEL string (nullptr = unset). On an
/// unrecognised name or a request above \p detected, falls back/clamps and
/// explains why in \p warning (left empty otherwise). Exposed for tests.
SimdLevel resolve_simd_level(const char* env_value, SimdLevel detected,
                             std::string* warning);

/// The level the process runs at: detect_simd_level() clamped against
/// G6_SIMD_LEVEL. Resolved once on first use; a warning (unknown name /
/// unsupported request) is logged exactly once.
SimdLevel active_simd_level();

/// Cache sizes used to derive the kBlocked tile geometry.
struct CacheInfo {
  std::size_t l1d_bytes = 0;
  std::size_t l2_bytes = 0;
};

/// Per-core data-cache sizes via sysconf, with 32 KiB / 1 MiB fallbacks when
/// the platform does not report them.
CacheInfo probe_cache_info();

/// i×j tile geometry of the kBlocked kernel.
struct BlockGeometry {
  std::size_t i_block = 0;  ///< i-particles per tile row
  std::size_t j_block = 0;  ///< j-particles per tile column
};

/// Derive the tile geometry from cache sizes: the j-block (7 doubles = 56 B
/// per j) fills half of L1d so the streamed j-columns stay resident across
/// the i-block, and the i-block's working set (pos+vel+Force ~ 104 B per i)
/// is capped at a quarter of L1d. Both are clamped to sane bounds and
/// rounded to vector-friendly multiples.
BlockGeometry derive_block_geometry(const CacheInfo& cache);

/// The process-wide geometry: derive_block_geometry(probe_cache_info()) with
/// G6_BLOCK_I / G6_BLOCK_J overrides applied (invalid values warn once and
/// are ignored). Resolved once on first use.
BlockGeometry active_block_geometry();

/// One ISA level's kernel entry points. `level`/`width`/`width_f` describe
/// what the TU was compiled as; `has_fast_rsqrt` tells whether kFast is a
/// real rsqrt kernel at this level (AVX-512) or an alias of kSimd.
struct KernelTable {
  SimdLevel level = SimdLevel::kScalar;
  const char* name = "scalar";
  int width = 1;            ///< double lanes per vector op
  int width_f = 2;          ///< float/int32 lanes per vector op
  bool has_fast_rsqrt = false;

  using ForceFn = void (*)(const SoAPredicted& js, const Vec3& xi,
                           const Vec3& vi, std::size_t self, double eps2,
                           Force& out);
  using BlockFn = void (*)(const SoAPredicted& js, const Vec3* xis,
                           const Vec3* vis, const std::uint32_t* selves,
                           std::size_t ni, double eps2,
                           const BlockGeometry& geom, Force* out);

  ForceFn tiled = nullptr;
  ForceFn simd = nullptr;
  ForceFn fast = nullptr;
  ForceFn mixed = nullptr;
  BlockFn blocked = nullptr;
  /// kMixed over an i-block: pairs of i-rows share each j-block's seven
  /// loads (halving the loop's memory traffic); results are bit-identical
  /// to `mixed` row by row. Ignores the geometry argument.
  BlockFn mixed_block = nullptr;
};

/// The dispatch table compiled for \p level (every level is always linked
/// in; running one above detect_simd_level() would fault on real silicon,
/// which is why active_simd_level() clamps).
const KernelTable& kernel_table(SimdLevel level);

/// kernel_table(active_simd_level()) — what force_on_i routes through.
const KernelTable& active_kernel_table();

/// Publish the dispatch decision as gauges:
///   g6.kernel.simd_level       numeric level (0 scalar .. 3 avx512)
///   g6.kernel.level.<name>     one-hot per level (1 = active)
///   g6.kernel.simd_width       double lanes of the active table
///   g6.kernel.block_i/block_j  active kBlocked geometry
///   g6.kernel.l1d_bytes/l2_bytes  probed cache sizes
/// Idempotent; CpuDirectBackend calls it at construction.
void publish_kernel_metrics(g6::obs::MetricsRegistry& reg);

}  // namespace g6::nbody
