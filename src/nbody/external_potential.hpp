#pragma once
/// \file external_potential.hpp
/// \brief The Sun as an external potential (paper §2: "All gravitational
///        interactions (except for the Solar gravity, which is treated as an
///        external potential field)...").
///
/// The Sun sits at the origin of the heliocentric frame and is not softened.
/// Its contribution is added by the host (the integrator), not by GRAPE —
/// which is also how the real code splits the work: an O(1)-per-particle term
/// stays on the host, the O(N) term goes to the hardware.

#include <cmath>

#include "nbody/particle.hpp"
#include "util/vec3.hpp"

namespace g6::nbody {

/// Point-mass potential fixed at the origin.
struct SolarPotential {
  double gm = 0.0;  ///< G * M_sun in code units (0 disables the term)

  /// Add the solar acceleration, jerk and potential for a particle at
  /// position \p x with velocity \p v.
  void apply(const Vec3& x, const Vec3& v, Force& f) const {
    if (gm == 0.0) return;
    const double r2 = norm2(x);
    const double rinv = 1.0 / std::sqrt(r2);
    const double rinv2 = rinv * rinv;
    const double gmr3 = gm * rinv * rinv2;
    f.acc -= gmr3 * x;
    f.jerk -= gmr3 * (v - 3.0 * (dot(x, v) * rinv2) * x);
    f.pot -= gm * rinv;
  }

  /// Potential energy of a particle of mass m at position x.
  double potential_energy(double m, const Vec3& x) const {
    if (gm == 0.0) return 0.0;
    return -gm * m / norm(x);
  }
};

}  // namespace g6::nbody
