#pragma once
/// \file hermite6.hpp
/// \brief Sixth-order Hermite integrator (Nitadori & Makino 2008) — the
///        scheme the GRAPE lineage moved to after the paper, included here
///        as the repository's "future work" extension.
///
/// The 4th-order scheme interpolates the force from (a, j) at both ends of
/// the step; the 6th-order scheme adds the snap s = d2a/dt2, whose pairwise
/// evaluation needs the *relative acceleration* of the pair — hence a
/// two-pass force calculation:
///   pass 1: Newtonian acc (+ jerk) for every particle;
///   pass 2: snap from (dx, dv, da).
/// Corrector (the two-point quintic Hermite rule):
///   v1 = v0 + dt/2 (a0+a1) + dt^2/10 (j0-j1) + dt^3/120 (s0+s1)
///   x1 = x0 + dt/2 (v0+v1) + dt^2/10 (a0-a1) + dt^3/120 (j0+j1)
/// Implemented as a shared-timestep scheme with a P(EC)^n iteration (the
/// corrector needs forces at the corrected state to reach full order).

#include <cstdint>

#include "nbody/external_potential.hpp"
#include "nbody/particle.hpp"

namespace g6::nbody {

/// Per-particle force with second derivative.
struct Force6 {
  Vec3 acc;
  Vec3 jerk;
  Vec3 snap;
  double pot = 0.0;
};

/// Two-pass direct-summation evaluation of acc/jerk/snap (+ the external
/// solar potential's contributions) for every particle of \p ps.
/// O(N^2) per pass.
void compute_force6(const ParticleSystem& ps, double eps, const SolarPotential& solar,
                    std::vector<Force6>& out);

/// Shared-timestep 6th-order Hermite integrator.
class Hermite6Integrator {
 public:
  /// \p dt constant step; \p iterations corrector passes (>= 2 recommended:
  /// the first pass predicts only to 4th order).
  Hermite6Integrator(ParticleSystem& ps, double dt, double eps,
                     double solar_gm = 0.0, int iterations = 2);

  /// Evaluate initial forces. Must be called before step()/evolve().
  void initialize();

  /// One step of length dt.
  void step();

  /// Step until the system time reaches at least \p t_end.
  void evolve(double t_end);

  double current_time() const { return t_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t force_evaluations() const { return force_evals_; }

 private:
  ParticleSystem& ps_;
  double dt_;
  double eps_;
  SolarPotential solar_;
  int iterations_;
  double t_ = 0.0;
  std::uint64_t steps_ = 0;
  std::uint64_t force_evals_ = 0;
  bool initialized_ = false;

  std::vector<Force6> f0_, f1_;
  std::vector<Vec3> x0_, v0_;
};

}  // namespace g6::nbody
