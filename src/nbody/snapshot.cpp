#include "nbody/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace g6::nbody {

void write_snapshot(std::ostream& os, const ParticleSystem& ps, double time) {
  os.precision(17);
  os << "g6snap " << ps.size() << ' ' << time << '\n';
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto& x = ps.pos(i);
    const auto& v = ps.vel(i);
    os << ps.id(i) << ' ' << ps.mass(i) << ' ' << x.x << ' ' << x.y << ' ' << x.z << ' '
       << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  G6_CHECK(os.good(), "snapshot write failed");
}

void write_snapshot_file(const std::string& path, const ParticleSystem& ps, double time) {
  std::ofstream os(path);
  G6_CHECK(os.is_open(), "cannot open snapshot file for writing: " + path);
  write_snapshot(os, ps, time);
}

double read_snapshot(std::istream& is, ParticleSystem& ps) {
  std::string magic;
  std::size_t n = 0;
  double time = 0.0;
  is >> magic >> n >> time;
  G6_CHECK(is.good() && magic == "g6snap", "not a g6 snapshot stream");
  ps.resize(0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    double m = 0.0;
    Vec3 x, v;
    is >> id >> m >> x.x >> x.y >> x.z >> v.x >> v.y >> v.z;
    G6_CHECK(!is.fail(), "truncated snapshot at particle " + std::to_string(i));
    const std::size_t k = ps.add(m, x, v);
    ps.time(k) = time;
  }
  return time;
}

double read_snapshot_file(const std::string& path, ParticleSystem& ps) {
  std::ifstream is(path);
  G6_CHECK(is.is_open(), "cannot open snapshot file for reading: " + path);
  return read_snapshot(is, ps);
}

namespace {

constexpr char kBinaryMagic[8] = {'G', '6', 'S', 'N', 'A', 'P', 'B', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod_stream(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  G6_CHECK(is.good(), "truncated binary snapshot");
  return value;
}

}  // namespace

void write_snapshot_binary(std::ostream& os, const ParticleSystem& ps, double time) {
  os.write(kBinaryMagic, sizeof kBinaryMagic);
  write_pod(os, static_cast<std::uint64_t>(ps.size()));
  write_pod(os, time);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    write_pod(os, static_cast<std::uint64_t>(ps.id(i)));
    write_pod(os, ps.mass(i));
    write_pod(os, ps.pos(i));
    write_pod(os, ps.vel(i));
  }
  G6_CHECK(os.good(), "binary snapshot write failed");
}

void write_snapshot_binary_file(const std::string& path, const ParticleSystem& ps,
                                double time) {
  std::ofstream os(path, std::ios::binary);
  G6_CHECK(os.is_open(), "cannot open snapshot file for writing: " + path);
  write_snapshot_binary(os, ps, time);
}

double read_snapshot_binary(std::istream& is, ParticleSystem& ps) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  G6_CHECK(is.good() && std::memcmp(magic, kBinaryMagic, sizeof magic) == 0,
           "not a g6 binary snapshot stream");
  const auto n = read_pod_stream<std::uint64_t>(is);
  const auto time = read_pod_stream<double>(is);
  ps.resize(0);
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)read_pod_stream<std::uint64_t>(is);  // id (reassigned on add)
    const auto m = read_pod_stream<double>(is);
    const auto x = read_pod_stream<Vec3>(is);
    const auto v = read_pod_stream<Vec3>(is);
    const std::size_t k = ps.add(m, x, v);
    ps.time(k) = time;
  }
  return time;
}

double read_snapshot_binary_file(const std::string& path, ParticleSystem& ps) {
  std::ifstream is(path, std::ios::binary);
  G6_CHECK(is.is_open(), "cannot open snapshot file for reading: " + path);
  return read_snapshot_binary(is, ps);
}

}  // namespace g6::nbody
