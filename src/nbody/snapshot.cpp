#include "nbody/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/crc.hpp"

namespace g6::nbody {

void write_snapshot(std::ostream& os, const ParticleSystem& ps, double time) {
  os.precision(17);
  os << "g6snap " << ps.size() << ' ' << time << '\n';
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto& x = ps.pos(i);
    const auto& v = ps.vel(i);
    os << ps.id(i) << ' ' << ps.mass(i) << ' ' << x.x << ' ' << x.y << ' ' << x.z << ' '
       << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  G6_CHECK(os.good(), "snapshot write failed");
}

void write_snapshot_file(const std::string& path, const ParticleSystem& ps, double time) {
  std::ofstream os(path);
  G6_CHECK(os.is_open(), "cannot open snapshot file for writing: " + path);
  write_snapshot(os, ps, time);
  os.close();
  G6_CHECK(!os.fail(), "snapshot close failed: " + path);
}

double read_snapshot(std::istream& is, ParticleSystem& ps) {
  std::string magic;
  std::size_t n = 0;
  double time = 0.0;
  is >> magic >> n >> time;
  G6_CHECK(is.good() && magic == "g6snap", "not a g6 snapshot stream");
  ps.resize(0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    double m = 0.0;
    Vec3 x, v;
    is >> id >> m >> x.x >> x.y >> x.z >> v.x >> v.y >> v.z;
    G6_CHECK(!is.fail(), "truncated snapshot at particle " + std::to_string(i));
    const std::size_t k = ps.add(m, x, v);
    ps.time(k) = time;
  }
  return time;
}

double read_snapshot_file(const std::string& path, ParticleSystem& ps) {
  std::ifstream is(path);
  G6_CHECK(is.is_open(), "cannot open snapshot file for reading: " + path);
  return read_snapshot(is, ps);
}

namespace {

constexpr char kBinaryMagicV1[8] = {'G', '6', 'S', 'N', 'A', 'P', 'B', '1'};
constexpr char kBinaryMagicV2[8] = {'G', '6', 'S', 'N', 'A', 'P', 'B', '2'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Streaming writer that folds every byte after the magic into a CRC, so
/// the trailer covers header and records without buffering the payload.
struct CrcWriter {
  std::ostream& os;
  std::uint32_t crc = g6::util::crc32_init();
  template <typename T>
  void put(const T& value) {
    write_pod(os, value);
    crc = g6::util::crc32_update(crc, &value, sizeof(T));
  }
};

/// Streaming reader mirroring CrcWriter; every read is checked so a
/// truncated stream raises instead of returning zero-filled garbage.
struct CrcReader {
  std::istream& is;
  std::uint32_t crc = g6::util::crc32_init();
  template <typename T>
  T get() {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    G6_CHECK(is.good(), "truncated binary snapshot");
    crc = g6::util::crc32_update(crc, &value, sizeof(T));
    return value;
  }
};

}  // namespace

void write_snapshot_binary(std::ostream& os, const ParticleSystem& ps, double time) {
  os.write(kBinaryMagicV2, sizeof kBinaryMagicV2);
  CrcWriter w{os};
  w.put(static_cast<std::uint64_t>(ps.size()));
  w.put(time);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    w.put(static_cast<std::uint64_t>(ps.id(i)));
    w.put(ps.mass(i));
    w.put(ps.pos(i));
    w.put(ps.vel(i));
  }
  write_pod(os, g6::util::crc32_final(w.crc));
  os.flush();
  G6_CHECK(os.good(), "binary snapshot write failed");
}

void write_snapshot_binary_file(const std::string& path, const ParticleSystem& ps,
                                double time) {
  std::ofstream os(path, std::ios::binary);
  G6_CHECK(os.is_open(), "cannot open snapshot file for writing: " + path);
  write_snapshot_binary(os, ps, time);
  os.close();
  G6_CHECK(!os.fail(), "binary snapshot close failed: " + path);
}

double read_snapshot_binary(std::istream& is, ParticleSystem& ps) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  G6_CHECK(is.good(), "truncated binary snapshot header");
  const bool checked = std::memcmp(magic, kBinaryMagicV2, sizeof magic) == 0;
  G6_CHECK(checked || std::memcmp(magic, kBinaryMagicV1, sizeof magic) == 0,
           "not a g6 binary snapshot stream");
  CrcReader r{is};
  const auto n = r.get<std::uint64_t>();
  const auto time = r.get<double>();
  ps.resize(0);
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)r.get<std::uint64_t>();  // id (reassigned on add)
    const auto m = r.get<double>();
    const auto x = r.get<Vec3>();
    const auto v = r.get<Vec3>();
    const std::size_t k = ps.add(m, x, v);
    ps.time(k) = time;
  }
  if (checked) {
    std::uint32_t trailer = 0;
    is.read(reinterpret_cast<char*>(&trailer), sizeof trailer);
    G6_CHECK(is.good(), "truncated binary snapshot trailer");
    G6_CHECK(g6::util::crc32_final(r.crc) == trailer,
             "binary snapshot CRC mismatch: file is corrupted");
  }
  return time;
}

double read_snapshot_binary_file(const std::string& path, ParticleSystem& ps) {
  std::ifstream is(path, std::ios::binary);
  G6_CHECK(is.is_open(), "cannot open snapshot file for reading: " + path);
  return read_snapshot_binary(is, ps);
}

}  // namespace g6::nbody
