#include "nbody/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"
#include "util/crc_stream.hpp"

namespace g6::nbody {

void write_snapshot(std::ostream& os, const ParticleSystem& ps, double time) {
  os.precision(17);
  os << "g6snap " << ps.size() << ' ' << time << '\n';
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto& x = ps.pos(i);
    const auto& v = ps.vel(i);
    os << ps.id(i) << ' ' << ps.mass(i) << ' ' << x.x << ' ' << x.y << ' ' << x.z << ' '
       << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  G6_CHECK(os.good(), "snapshot write failed");
}

void write_snapshot_file(const std::string& path, const ParticleSystem& ps, double time) {
  std::ofstream os(path);
  G6_CHECK(os.is_open(), "cannot open snapshot file for writing: " + path);
  write_snapshot(os, ps, time);
  os.close();
  G6_CHECK(!os.fail(), "snapshot close failed: " + path);
}

namespace {

/// Parse failures name the offending line and field so a damaged
/// multi-gigabyte production snapshot can be triaged without a hex dump.
[[noreturn]] void snapshot_parse_error(std::size_t line_no, const std::string& what) {
  g6::util::raise("snapshot parse error at line " + std::to_string(line_no) + ": " +
                  what);
}

}  // namespace

double read_snapshot(std::istream& is, ParticleSystem& ps) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) snapshot_parse_error(1, "empty stream (expected 'g6snap <n> <time>' header)");
  ++line_no;
  std::istringstream header(line);
  std::string magic;
  std::size_t n = 0;
  double time = 0.0;
  header >> magic;
  if (magic != "g6snap")
    snapshot_parse_error(line_no, "bad magic '" + magic + "' (expected 'g6snap')");
  if (!(header >> n)) snapshot_parse_error(line_no, "missing or malformed field 'n'");
  if (!(header >> time)) snapshot_parse_error(line_no, "missing or malformed field 'time'");

  static constexpr const char* kFields[] = {"id", "mass", "x", "y", "z",
                                            "vx", "vy", "vz"};
  ps.resize(0);
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(is, line))
      snapshot_parse_error(line_no + 1, "truncated: header promised " + std::to_string(n) +
                                            " particles, stream ends after " +
                                            std::to_string(i));
    ++line_no;
    std::istringstream fields(line);
    std::uint64_t id = 0;
    double value[7] = {};
    for (int f = 0; f < 8; ++f) {
      const bool ok = (f == 0) ? static_cast<bool>(fields >> id)
                               : static_cast<bool>(fields >> value[f - 1]);
      if (!ok)
        snapshot_parse_error(line_no, std::string("missing or malformed field '") +
                                          kFields[f] + "' (particle " +
                                          std::to_string(i) + ")");
    }
    if (id > 0xFFFFFFFFull)
      snapshot_parse_error(line_no, "particle id " + std::to_string(id) +
                                        " exceeds 32 bits");
    if (!seen.insert(static_cast<std::uint32_t>(id)).second)
      snapshot_parse_error(line_no, "duplicate particle id " + std::to_string(id));
    const std::size_t k =
        ps.add(value[0], {value[1], value[2], value[3]}, {value[4], value[5], value[6]});
    ps.time(k) = time;
    ps.set_id(k, static_cast<std::uint32_t>(id));
  }
  return time;
}

double read_snapshot_file(const std::string& path, ParticleSystem& ps) {
  std::ifstream is(path);
  G6_CHECK(is.is_open(), "cannot open snapshot file for reading: " + path);
  return read_snapshot(is, ps);
}

namespace {

constexpr char kBinaryMagicV1[8] = {'G', '6', 'S', 'N', 'A', 'P', 'B', '1'};
constexpr char kBinaryMagicV2[8] = {'G', '6', 'S', 'N', 'A', 'P', 'B', '2'};

using g6::util::CrcReader;
using g6::util::CrcWriter;
using g6::util::write_pod;

}  // namespace

void write_snapshot_binary(std::ostream& os, const ParticleSystem& ps, double time) {
  os.write(kBinaryMagicV2, sizeof kBinaryMagicV2);
  CrcWriter w{os};
  w.put(static_cast<std::uint64_t>(ps.size()));
  w.put(time);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    w.put(static_cast<std::uint64_t>(ps.id(i)));
    w.put(ps.mass(i));
    w.put(ps.pos(i));
    w.put(ps.vel(i));
  }
  w.put_trailer();
  os.flush();
  G6_CHECK(os.good(), "binary snapshot write failed");
}

void write_snapshot_binary_file(const std::string& path, const ParticleSystem& ps,
                                double time) {
  std::ofstream os(path, std::ios::binary);
  G6_CHECK(os.is_open(), "cannot open snapshot file for writing: " + path);
  write_snapshot_binary(os, ps, time);
  os.close();
  G6_CHECK(!os.fail(), "binary snapshot close failed: " + path);
}

double read_snapshot_binary(std::istream& is, ParticleSystem& ps) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  G6_CHECK(is.good(), "truncated binary snapshot header");
  const bool checked = std::memcmp(magic, kBinaryMagicV2, sizeof magic) == 0;
  G6_CHECK(checked || std::memcmp(magic, kBinaryMagicV1, sizeof magic) == 0,
           "not a g6 binary snapshot stream");
  CrcReader r{is, g6::util::crc32_init(), "binary snapshot"};
  const auto n = r.get<std::uint64_t>();
  const auto time = r.get<double>();
  ps.resize(0);
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto id = r.get<std::uint64_t>();
    const auto m = r.get<double>();
    const auto x = r.get<Vec3>();
    const auto v = r.get<Vec3>();
    G6_CHECK(id <= 0xFFFFFFFFull, "binary snapshot particle id exceeds 32 bits");
    G6_CHECK(seen.insert(static_cast<std::uint32_t>(id)).second,
             "binary snapshot duplicate particle id " + std::to_string(id));
    const std::size_t k = ps.add(m, x, v);
    ps.time(k) = time;
    ps.set_id(k, static_cast<std::uint32_t>(id));
  }
  if (checked) r.check_trailer();
  return time;
}

double read_snapshot_binary_file(const std::string& path, ParticleSystem& ps) {
  std::ifstream is(path, std::ios::binary);
  G6_CHECK(is.is_open(), "cannot open snapshot file for reading: " + path);
  return read_snapshot_binary(is, ps);
}

}  // namespace g6::nbody
