#pragma once
/// \file hermite.hpp
/// \brief The 4th-order Hermite predictor–corrector (Makino & Aarseth 1992),
///        the integration scheme the paper runs on GRAPE-6.
///
/// The scheme:
///   predictor:  x_p = x0 + v0 dt + a0 dt^2/2 + j0 dt^3/6
///               v_p = v0 + a0 dt + j0 dt^2/2
///   force:      (a1, j1) evaluated at the predicted state
///   corrector:  reconstruct the 2nd and 3rd derivatives from (a0,j0,a1,j1)
///               and add the 4th/5th-order terms to x_p, v_p.
///
/// The timestep criterion is Aarseth's composite formula on the force
/// derivatives at the new time.

#include <algorithm>
#include <cmath>

#include "util/vec3.hpp"

namespace g6::nbody {

using g6::util::Vec3;

/// Predicted phase-space point.
struct Predicted {
  Vec3 pos;
  Vec3 vel;
};

/// Hermite predictor: advance (x0,v0,a0,j0) valid at t0 to time t0+dt.
inline Predicted hermite_predict(const Vec3& x0, const Vec3& v0, const Vec3& a0,
                                 const Vec3& j0, double dt) {
  const double dt2 = dt * dt * 0.5;
  const double dt3 = dt * dt2 * (1.0 / 3.0);
  return {x0 + v0 * dt + a0 * dt2 + j0 * dt3, v0 + a0 * dt + j0 * dt2};
}

/// Higher force derivatives recovered by the corrector.
struct HermiteDerivatives {
  Vec3 snap;    ///< a^(2) at the *old* time t0
  Vec3 crackle; ///< a^(3) (constant over the step at this order)
};

/// Compute the 2nd and 3rd force derivatives over a step of length dt from
/// the old (a0, j0) and new (a1, j1) forces.
inline HermiteDerivatives hermite_derivatives(const Vec3& a0, const Vec3& j0,
                                              const Vec3& a1, const Vec3& j1,
                                              double dt) {
  const double inv_dt = 1.0 / dt;
  const double inv_dt2 = inv_dt * inv_dt;
  const Vec3 da = a0 - a1;
  const Vec3 snap = (-6.0 * da - dt * (4.0 * j0 + 2.0 * j1)) * inv_dt2;
  const Vec3 crackle = (12.0 * da + 6.0 * dt * (j0 + j1)) * (inv_dt2 * inv_dt);
  return {snap, crackle};
}

/// Hermite corrector: refine the predicted state with the recovered
/// derivatives. Returns the corrected (x1, v1) at time t0+dt.
inline Predicted hermite_correct(const Predicted& pred, const HermiteDerivatives& d,
                                 double dt) {
  const double dt4 = dt * dt * dt * dt;
  const double dt5 = dt4 * dt;
  // snap/crackle are at t0; the correction terms below are their integrals.
  return {pred.pos + d.snap * (dt4 / 24.0) + d.crackle * (dt5 / 120.0),
          pred.vel + d.snap * (dt * dt * dt / 6.0) + d.crackle * (dt4 / 24.0)};
}

/// Aarseth timestep criterion evaluated at the new time t1:
///   dt = sqrt( eta * (|a||a2| + |j|^2) / (|j||a3| + |a2|^2) )
/// where a2, a3 are the 2nd/3rd derivatives shifted to t1.
inline double aarseth_dt(const Vec3& a1, const Vec3& j1, const HermiteDerivatives& d,
                         double dt, double eta) {
  using g6::util::norm;
  const Vec3 a2_t1 = d.snap + d.crackle * dt;  // shift snap to t1
  const Vec3& a3_t1 = d.crackle;
  const double na = norm(a1);
  const double nj = norm(j1);
  const double n2 = norm(a2_t1);
  const double n3 = norm(a3_t1);
  const double num = na * n2 + nj * nj;
  const double den = nj * n3 + n2 * n2;
  if (den == 0.0) return dt * 2.0;  // force field locally linear: grow
  return std::sqrt(eta * num / den);
}

/// Startup timestep (only a and j known): dt = eta_s * |a| / |j|.
inline double initial_dt(const Vec3& a, const Vec3& j, double eta_s, double dt_max) {
  using g6::util::norm;
  const double nj = norm(j);
  if (nj == 0.0) return dt_max;
  return std::min(dt_max, eta_s * norm(a) / nj);
}

}  // namespace g6::nbody
