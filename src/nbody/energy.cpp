#include "nbody/energy.hpp"

#include <cmath>
#include <mutex>

namespace g6::nbody {

EnergyReport compute_energy(const ParticleSystem& ps, double eps, double solar_gm,
                            g6::util::ThreadPool* pool) {
  EnergyReport rep;
  const std::size_t n = ps.size();
  const double eps2 = eps * eps;

  for (std::size_t i = 0; i < n; ++i) {
    rep.kinetic += 0.5 * ps.mass(i) * norm2(ps.vel(i));
    if (solar_gm != 0.0) rep.potential_solar -= solar_gm * ps.mass(i) / norm(ps.pos(i));
  }

  auto pair_sum = [&](std::size_t begin, std::size_t end) {
    double pe = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 xi = ps.pos(i);
      const double mi = ps.mass(i);
      for (std::size_t j = i + 1; j < n; ++j) {
        const double r2 = norm2(ps.pos(j) - xi) + eps2;
        pe -= mi * ps.mass(j) / std::sqrt(r2);
      }
    }
    return pe;
  };

  if (pool == nullptr || pool->size() == 1) {
    rep.potential_mutual = pair_sum(0, n);
  } else {
    std::mutex mu;
    pool->parallel_for(n, [&](std::size_t b, std::size_t e) {
      const double pe = pair_sum(b, e);
      std::lock_guard lk(mu);
      rep.potential_mutual += pe;
    });
  }
  return rep;
}

Vec3 total_angular_momentum(const ParticleSystem& ps) {
  Vec3 l{};
  for (std::size_t i = 0; i < ps.size(); ++i)
    l += ps.mass(i) * cross(ps.pos(i), ps.vel(i));
  return l;
}

Vec3 center_of_mass(const ParticleSystem& ps) {
  Vec3 c{};
  double m = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    c += ps.mass(i) * ps.pos(i);
    m += ps.mass(i);
  }
  return m > 0.0 ? c / m : c;
}

Vec3 center_of_mass_velocity(const ParticleSystem& ps) {
  Vec3 c{};
  double m = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    c += ps.mass(i) * ps.vel(i);
    m += ps.mass(i);
  }
  return m > 0.0 ? c / m : c;
}

}  // namespace g6::nbody
