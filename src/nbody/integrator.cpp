#include "nbody/integrator.hpp"

#include <algorithm>
#include <cmath>

#include "nbody/hermite.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace g6::nbody {

HermiteIntegrator::HermiteIntegrator(ParticleSystem& ps, ForceBackend& backend,
                                     IntegratorConfig cfg, g6::util::ThreadPool* pool)
    : ps_(ps), backend_(backend), cfg_(cfg),
      pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(cfg_.eta > 0.0 && cfg_.eta_init > 0.0, "eta parameters must be positive");
  G6_CHECK(is_power_of_two_step(cfg_.dt_max), "dt_max must be a power of two");
  G6_CHECK(is_power_of_two_step(cfg_.dt_min), "dt_min must be a power of two");
  G6_CHECK(cfg_.dt_min <= cfg_.dt_max, "dt_min must not exceed dt_max");
  G6_CHECK(cfg_.corrector_iterations >= 1, "need at least one corrector pass");
  solar_.gm = cfg_.solar_gm;
}

void HermiteIntegrator::initialize() {
  const std::size_t n = ps_.size();
  G6_CHECK(n > 0, "cannot integrate an empty system");
  for (std::size_t i = 0; i < n; ++i) {
    G6_CHECK(ps_.time(i) == ps_.time(0), "all particles must start at a common time");
  }
  t_sys_ = ps_.time(0);

  backend_.load(ps_);
  std::vector<std::uint32_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);
  std::vector<Force> f(n);
  backend_.compute(t_sys_, all, f);

  for (std::size_t i = 0; i < n; ++i) {
    solar_.apply(ps_.pos(i), ps_.vel(i), f[i]);
    ps_.acc(i) = f[i].acc;
    ps_.jerk(i) = f[i].jerk;
    ps_.pot(i) = f[i].pot;
    const double dt_req = initial_dt(f[i].acc, f[i].jerk, cfg_.eta_init, cfg_.dt_max);
    double dt = quantize_dt(dt_req, cfg_.dt_max, cfg_.dt_min);
    // The first block boundary must be commensurate with the start time.
    while (dt > cfg_.dt_min && !is_commensurate(t_sys_, dt)) dt *= 0.5;
    ps_.dt(i) = dt;
  }
  // j-memory must see the initial acc/jerk for its predictor polynomials.
  backend_.load(ps_);
  scheduler_.reset(ps_.times(), ps_.dts());
  stats_ = {};
  initialized_ = true;
}

void HermiteIntegrator::restore(double t_sys, IntegratorStats stats) {
  const std::size_t n = ps_.size();
  G6_CHECK(n > 0, "cannot restore an empty system");
  for (std::size_t i = 0; i < n; ++i) {
    G6_CHECK(ps_.dt(i) > 0.0 && is_power_of_two_step(ps_.dt(i)),
             "restored particle " + std::to_string(i) + " has no valid timestep");
    G6_CHECK(ps_.time(i) <= t_sys, "restored particle time exceeds t_sys");
  }
  // j-memory rebuilt from the saved full Hermite state is identical to the
  // image the uninterrupted run accumulated through load()+update() calls:
  // both paths write the same (mass, pos, vel, acc, jerk, t) per particle.
  backend_.load(ps_);
  scheduler_.reset(ps_.times(), ps_.dts());
  stats_ = std::move(stats);
  t_sys_ = t_sys;
  initialized_ = true;
}

void HermiteIntegrator::correct_block(double t, std::span<const std::uint32_t> block,
                                      std::span<const Force> forces, bool requantize) {
  const std::size_t m = block.size();
  std::vector<Predicted> pred(m);
  std::vector<Predicted> corr(m);
  std::vector<Force> f(m);
  std::vector<HermiteDerivatives> deriv(m);

  // First corrector pass from the predicted state (standard PEC) —
  // per-particle work is independent; this is what the paper spreads over
  // the 16 host PCs.
  pool_->parallel_for(m, [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      const std::uint32_t i = block[k];
      const double dt = t - ps_.time(i);
      pred[k] = hermite_predict(ps_.pos(i), ps_.vel(i), ps_.acc(i), ps_.jerk(i), dt);
      f[k] = forces[k];
      solar_.apply(pred[k].pos, pred[k].vel, f[k]);
      deriv[k] = hermite_derivatives(ps_.acc(i), ps_.jerk(i), f[k].acc, f[k].jerk, dt);
      corr[k] = hermite_correct(pred[k], deriv[k], dt);
    }
  });

  // Optional P(EC)^n iterations: re-evaluate the force at the corrected
  // state and correct again (time-symmetric for constant steps, KYM98).
  for (int pass = 1; pass < cfg_.corrector_iterations; ++pass) {
    std::vector<Vec3> pos(m), vel(m);
    for (std::size_t k = 0; k < m; ++k) {
      pos[k] = corr[k].pos;
      vel[k] = corr[k].vel;
    }
    std::vector<Force> f2(m);
    backend_.compute_states(t, block, pos, vel, f2);
    pool_->parallel_for(m, [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) {
        const std::uint32_t i = block[k];
        const double dt = t - ps_.time(i);
        f[k] = f2[k];
        solar_.apply(corr[k].pos, corr[k].vel, f[k]);
        deriv[k] =
            hermite_derivatives(ps_.acc(i), ps_.jerk(i), f[k].acc, f[k].jerk, dt);
        corr[k] = hermite_correct(pred[k], deriv[k], dt);
      }
    });
  }

  // Finalise: timestep selection and state writeback.
  pool_->parallel_for(m, [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      const std::uint32_t i = block[k];
      const double dt = t - ps_.time(i);
      const double dt_req = aarseth_dt(f[k].acc, f[k].jerk, deriv[k], dt, cfg_.eta);
      double dt_new;
      if (requantize) {
        dt_new = quantize_dt(dt_req, cfg_.dt_max, cfg_.dt_min);
        while (dt_new > cfg_.dt_min && !is_commensurate(t, dt_new)) dt_new *= 0.5;
      } else {
        dt_new = next_block_dt(t, ps_.dt(i), dt_req, cfg_.dt_max, cfg_.dt_min);
      }

      ps_.pos(i) = corr[k].pos;
      ps_.vel(i) = corr[k].vel;
      ps_.acc(i) = f[k].acc;
      ps_.jerk(i) = f[k].jerk;
      ps_.pot(i) = f[k].pot;
      ps_.time(i) = t;
      ps_.dt(i) = dt_new;
    }
  });
  // Scheduler pushes and stats stay on the driving thread.
  for (std::uint32_t i : block) {
    scheduler_.push(i, t + ps_.dt(i));
  }
}

double HermiteIntegrator::step() {
  G6_CHECK(initialized_, "call initialize() first");
  G6_TRACE_SPAN("blockstep");
  g6::obs::BlockstepRecorder* rec = recorder_;
  if (rec != nullptr) rec->begin_step();
  // Scheduler pop is the single-host stand-in for the inter-host sync point
  // at the head of every block step.
  const double t = [&] {
    g6::obs::PhaseTimer pt(rec, g6::obs::Phase::kSync);
    return scheduler_.pop_block(block_);
  }();
  forces_.resize(block_.size());
  {
    // Hardware backends attribute their own phases (predict/pipeline/comm);
    // for plain backends the whole force evaluation is the pipeline phase.
    g6::obs::PhaseTimer pt(backend_.records_phases() ? nullptr : rec,
                           g6::obs::Phase::kPipeline);
    G6_TRACE_SPAN("force");
    backend_.compute(t, block_, forces_);
  }

  // Track dt changes for the stats before they are overwritten.
  std::vector<double> old_dt(block_.size());
  for (std::size_t k = 0; k < block_.size(); ++k) old_dt[k] = ps_.dt(block_[k]);

  {
    g6::obs::PhaseTimer pt(rec, g6::obs::Phase::kHost);
    G6_TRACE_SPAN("correct");
    correct_block(t, block_, forces_, /*requantize=*/false);
  }
  {
    g6::obs::PhaseTimer pt(backend_.records_phases() ? nullptr : rec,
                           g6::obs::Phase::kJUpdate);
    G6_TRACE_SPAN("j-update");
    backend_.update(block_, ps_);
  }

  for (std::size_t k = 0; k < block_.size(); ++k) {
    if (ps_.dt(block_[k]) < old_dt[k]) ++stats_.dt_shrinks;
    if (ps_.dt(block_[k]) > old_dt[k]) ++stats_.dt_grows;
  }
  ++stats_.blocks;
  stats_.steps += block_.size();
  if (cfg_.record_block_sizes)
    stats_.block_sizes.push_back(static_cast<std::uint32_t>(block_.size()));
  if (rec != nullptr) {
    rec->annotate(t, block_.size());
    rec->end_step();
  }
  if (on_block) on_block(t, block_.size());
  t_sys_ = t;
  return t;
}

void HermiteIntegrator::evolve(double t_end) {
  G6_CHECK(initialized_, "call initialize() first");
  G6_CHECK(t_end >= t_sys_, "cannot evolve backwards");
  while (scheduler_.next_time() <= t_end) step();
  synchronize(t_end);
}

void HermiteIntegrator::synchronize(double t) {
  G6_CHECK(initialized_, "call initialize() first");
  std::vector<std::uint32_t> lagging;
  for (std::size_t i = 0; i < ps_.size(); ++i) {
    G6_CHECK(ps_.time(i) <= t, "synchronize target precedes a particle time");
    if (ps_.time(i) < t) lagging.push_back(static_cast<std::uint32_t>(i));
  }
  if (lagging.empty()) {
    t_sys_ = t;
    return;
  }
  std::vector<Force> f(lagging.size());
  backend_.compute(t, lagging, f);
  correct_block(t, lagging, f, /*requantize=*/true);
  backend_.update(lagging, ps_);
  ++stats_.blocks;
  stats_.steps += lagging.size();
  t_sys_ = t;
}

void publish_metrics(const IntegratorStats& stats, g6::obs::MetricsRegistry& registry) {
  registry.counter("g6.nbody.blocks").set(stats.blocks);
  registry.counter("g6.nbody.steps").set(stats.steps);
  registry.counter("g6.nbody.dt_shrinks").set(stats.dt_shrinks);
  registry.counter("g6.nbody.dt_grows").set(stats.dt_grows);
  registry.gauge("g6.nbody.mean_block_size").set(stats.mean_block_size());
  // Histogram entries accumulate: publish once per run (the counters above
  // use set() and stay idempotent).
  if (!stats.block_sizes.empty()) {
    auto hist = registry.histogram("g6.nbody.block_size");
    for (std::uint32_t b : stats.block_sizes) hist.add(static_cast<double>(b));
  }
}

}  // namespace g6::nbody
