#include "nbody/blockstep.hpp"

#include <cmath>

namespace g6::nbody {

bool is_power_of_two_step(double dt) {
  if (!(dt > 0.0) || !std::isfinite(dt)) return false;
  int exp = 0;
  const double frac = std::frexp(dt, &exp);
  return frac == 0.5;  // dt == 2^(exp-1) exactly
}

double quantize_dt(double dt_req, double dt_max, double dt_min) {
  G6_CHECK(is_power_of_two_step(dt_max), "dt_max must be a power of two");
  G6_CHECK(is_power_of_two_step(dt_min), "dt_min must be a power of two");
  G6_CHECK(dt_min <= dt_max, "dt_min must not exceed dt_max");
  if (!(dt_req > 0.0) || !std::isfinite(dt_req)) return dt_min;
  if (dt_req >= dt_max) return dt_max;
  // Largest 2^k <= dt_req: frexp gives dt_req = f * 2^e with f in [0.5, 1),
  // so 2^(e-1) <= dt_req < 2^e.
  int exp = 0;
  (void)std::frexp(dt_req, &exp);
  double dt = std::ldexp(1.0, exp - 1);
  if (dt < dt_min) dt = dt_min;
  return dt;
}

bool is_commensurate(double t, double dt) {
  G6_CHECK(dt > 0.0, "dt must be positive");
  const double q = t / dt;  // exact: dividing by a power of two
  return q == std::floor(q);
}

double next_block_dt(double t_new, double dt_old, double dt_req, double dt_max,
                     double dt_min) {
  G6_CHECK(is_power_of_two_step(dt_old), "current dt must be a power of two");
  double dt = dt_old;
  if (dt_req < dt) {
    // Shrink freely; halving preserves commensurability of t_new.
    while (dt > dt_min && dt > dt_req) dt *= 0.5;
  } else if (dt_req >= 2.0 * dt && dt < dt_max && is_commensurate(t_new, 2.0 * dt)) {
    // Grow by at most one level per step, and only on an even boundary.
    dt *= 2.0;
  }
  if (dt > dt_max) dt = dt_max;
  if (dt < dt_min) dt = dt_min;
  return dt;
}

void BlockScheduler::reset(std::span<const double> times, std::span<const double> dts) {
  G6_CHECK(times.size() == dts.size(), "times/dts size mismatch");
  heap_ = {};
  t_next_.assign(times.size(), 0.0);
  for (std::size_t i = 0; i < times.size(); ++i) {
    G6_CHECK(dts[i] > 0.0, "every particle needs a positive dt");
    t_next_[i] = times[i] + dts[i];
    heap_.push({t_next_[i], static_cast<std::uint32_t>(i)});
  }
}

void BlockScheduler::drop_stale() const {
  while (!heap_.empty() && heap_.top().t != t_next_[heap_.top().idx]) heap_.pop();
}

double BlockScheduler::next_time() const {
  drop_stale();
  G6_CHECK(!heap_.empty(), "scheduler is empty");
  return heap_.top().t;
}

double BlockScheduler::pop_block(std::vector<std::uint32_t>& block) {
  const double t = next_time();
  block.clear();
  for (;;) {
    drop_stale();
    if (heap_.empty() || heap_.top().t != t) break;
    block.push_back(heap_.top().idx);
    heap_.pop();
  }
  G6_CHECK(!block.empty(), "a block must contain at least one particle");
  return t;
}

void BlockScheduler::push(std::uint32_t i, double t_next) {
  G6_CHECK(i < t_next_.size(), "particle index out of range");
  t_next_[i] = t_next;
  heap_.push({t_next, i});
}

}  // namespace g6::nbody
