#pragma once
/// \file snapshot.hpp
/// \brief Plain-text snapshot I/O ("The whole simulation, including file
///        operations" — §6). Round-trip exact: values are written with 17
///        significant digits.

#include <iosfwd>
#include <string>

#include "nbody/particle.hpp"

namespace g6::nbody {

/// Write a snapshot: header line `g6snap <n> <time>` followed by one line per
/// particle: `id mass x y z vx vy vz`.
void write_snapshot(std::ostream& os, const ParticleSystem& ps, double time);
void write_snapshot_file(const std::string& path, const ParticleSystem& ps, double time);

/// Read a snapshot written by write_snapshot. All particles are placed at the
/// snapshot time with zero acc/jerk (call HermiteIntegrator::initialize()
/// to rebuild derivatives); particle ids are preserved. Returns the snapshot
/// time. Malformed input raises g6::util::Error naming the offending line
/// and field; duplicate particle ids are rejected.
double read_snapshot(std::istream& is, ParticleSystem& ps);
double read_snapshot_file(const std::string& path, ParticleSystem& ps);

/// Binary snapshot (production-run sized outputs; §6 mentions the run's
/// file operations): magic "G6SNAPB2", particle count, time, packed
/// per-particle records (id, mass, pos, vel as native doubles/uint64),
/// then a CRC-32 trailer over everything after the magic. Readers verify
/// the trailer and raise g6::util::Error on any truncation or corruption;
/// legacy "G6SNAPB1" streams (no trailer) remain readable.
void write_snapshot_binary(std::ostream& os, const ParticleSystem& ps, double time);
void write_snapshot_binary_file(const std::string& path, const ParticleSystem& ps,
                                double time);
double read_snapshot_binary(std::istream& is, ParticleSystem& ps);
double read_snapshot_binary_file(const std::string& path, ParticleSystem& ps);

}  // namespace g6::nbody
