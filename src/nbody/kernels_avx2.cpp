/// AVX2+FMA rung of the dispatch ladder: 4 double / 8 float lanes.
/// Compiled with -mavx2 -mfma on top of baseline x86-64 — see CMakeLists.txt.
#define G6_KERNEL_IMPL_NS kernels_avx2
#define G6_KERNEL_LEVEL ::g6::nbody::SimdLevel::kAvx2
#include "nbody/kernels_impl.hpp"
