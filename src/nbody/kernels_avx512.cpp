/// AVX-512 rung of the dispatch ladder: 8 double / 16 float lanes, FMA, and
/// vrsqrt14 (which makes kFast a real rsqrt kernel at this level only).
/// Compiled with -mavx512f/dq/vl -mfma on top of baseline x86-64.
#define G6_KERNEL_IMPL_NS kernels_avx512
#define G6_KERNEL_LEVEL ::g6::nbody::SimdLevel::kAvx512
#include "nbody/kernels_impl.hpp"
