#include "nbody/force_kernels.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "nbody/force_direct.hpp"
#include "util/simd.hpp"

namespace g6::nbody {

CpuKernel cpu_kernel_from_env() {
  const char* env = std::getenv("G6_CPU_KERNEL");
  if (env == nullptr) return CpuKernel::kSimd;
  if (std::strcmp(env, "reference") == 0) return CpuKernel::kReference;
  if (std::strcmp(env, "tiled") == 0) return CpuKernel::kTiled;
  if (std::strcmp(env, "fast") == 0) return CpuKernel::kFast;
  return CpuKernel::kSimd;
}

const char* cpu_kernel_name(CpuKernel k) {
  switch (k) {
    case CpuKernel::kReference: return "reference";
    case CpuKernel::kTiled: return "tiled";
    case CpuKernel::kSimd: return "simd";
    case CpuKernel::kFast: return "fast";
  }
  return "?";
}

namespace {

/// The seven running sums of one i-particle, held in scalar locals so the
/// optimizer keeps them in registers: accumulating straight into a Force&
/// would alias (in the compiler's view) the js arrays and force a
/// load-add-store round trip per term. The add sequence is unchanged, so
/// values stay bit-identical to accumulating in the struct.
struct Sums {
  double ax, ay, az, jx, jy, jz, po;

  explicit Sums(const Force& f)
      : ax(f.acc.x), ay(f.acc.y), az(f.acc.z),
        jx(f.jerk.x), jy(f.jerk.y), jz(f.jerk.z), po(f.pot) {}

  void flush(Force& f) const {
    f.acc = {ax, ay, az};
    f.jerk = {jx, jy, jz};
    f.pot = po;
  }
};

// The scalar oracle loop must stay scalar: GCC's SLP vectorizer otherwise
// rewrites it with ~10 cross-lane shuffles per pair (all serialized on one
// port), which is ~2x slower than plain scalar code on this loop.
#if defined(__GNUC__) && !defined(__clang__)
#define G6_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define G6_NO_VECTORIZE
#endif

/// The seed's scalar loop over [b, e) — the bit-exactness oracle, also used
/// by the other kernels for the tile containing `self` and for tails.
/// Expression-for-expression identical to pairwise_force (force_direct.hpp).
G6_NO_VECTORIZE
void reference_range(const SoAPredicted& js, std::size_t b, std::size_t e,
                     const Vec3& xi, const Vec3& vi, std::size_t self,
                     double eps2, Force& f) {
  const double* const gx = js.x.data();
  const double* const gy = js.y.data();
  const double* const gz = js.z.data();
  const double* const gvx = js.vx.data();
  const double* const gvy = js.vy.data();
  const double* const gvz = js.vz.data();
  const double* const gm = js.m.data();
  Sums s(f);
  for (std::size_t j = b; j < e; ++j) {
    if (j == self) continue;
    const double drx = gx[j] - xi.x;
    const double dry = gy[j] - xi.y;
    const double drz = gz[j] - xi.z;
    const double dvx = gvx[j] - vi.x;
    const double dvy = gvy[j] - vi.y;
    const double dvz = gvz[j] - vi.z;
    const double r2 = ((drx * drx + dry * dry) + drz * drz) + eps2;
    const double rinv = 1.0 / std::sqrt(r2);
    const double rinv2 = rinv * rinv;
    const double mr = gm[j] * rinv;
    const double mr3 = mr * rinv2;
    const double rv = (drx * dvx + dry * dvy) + drz * dvz;
    const double c = 3.0 * (rv * rinv2);
    s.ax += mr3 * drx;
    s.ay += mr3 * dry;
    s.az += mr3 * drz;
    s.jx += mr3 * (dvx - c * drx);
    s.jy += mr3 * (dvy - c * dry);
    s.jz += mr3 * (dvz - c * drz);
    s.po -= mr;
  }
  s.flush(f);
}

/// Plain-C tiled kernel: the contribution loop below carries no loop-carried
/// dependence and auto-vectorizes (inspect with -fopt-info-vec); the ordered
/// accumulation loop replays the seed's summation order.
void force_tiled(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                 std::size_t self, double eps2, Force& f) {
  constexpr std::size_t kTile = 64;
  const std::size_t n = js.size();
  double ax[kTile], ay[kTile], az[kTile];
  double jx[kTile], jy[kTile], jz[kTile], po[kTile];
  Sums s(f);
  for (std::size_t b = 0; b < n; b += kTile) {
    const std::size_t len = std::min(kTile, n - b);
    if (self - b < len) {  // tile holds the self-particle: scalar path
      s.flush(f);
      reference_range(js, b, b + len, xi, vi, self, eps2, f);
      s = Sums(f);
      continue;
    }
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t j = b + k;
      const double drx = js.x[j] - xi.x;
      const double dry = js.y[j] - xi.y;
      const double drz = js.z[j] - xi.z;
      const double dvx = js.vx[j] - vi.x;
      const double dvy = js.vy[j] - vi.y;
      const double dvz = js.vz[j] - vi.z;
      const double r2 = ((drx * drx + dry * dry) + drz * drz) + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv2 = rinv * rinv;
      const double mr = js.m[j] * rinv;
      const double mr3 = mr * rinv2;
      const double rv = (drx * dvx + dry * dvy) + drz * dvz;
      const double c = 3.0 * (rv * rinv2);
      ax[k] = mr3 * drx;
      ay[k] = mr3 * dry;
      az[k] = mr3 * drz;
      jx[k] = mr3 * (dvx - c * drx);
      jy[k] = mr3 * (dvy - c * dry);
      jz[k] = mr3 * (dvz - c * drz);
      po[k] = mr;
    }
    for (std::size_t k = 0; k < len; ++k) {
      s.ax += ax[k];
      s.ay += ay[k];
      s.az += az[k];
      s.jx += jx[k];
      s.jy += jy[k];
      s.jz += jz[k];
      s.po -= po[k];
    }
  }
  s.flush(f);
}

/// One W-wide block of the explicit kernel: the seven contribution vectors of
/// j-particles [j0, j0+W), computed in vector registers in the seed's
/// expression order and staged column-wise into \p b.
template <std::size_t W>
inline void simd_fill_block(const double* gx, const double* gy, const double* gz,
                            const double* gvx, const double* gvy, const double* gvz,
                            const double* gm, std::size_t j0,
                            const g6::util::simd::VecD xiv, const g6::util::simd::VecD yiv,
                            const g6::util::simd::VecD ziv, const g6::util::simd::VecD vxiv,
                            const g6::util::simd::VecD vyiv, const g6::util::simd::VecD vziv,
                            const g6::util::simd::VecD eps2v, const g6::util::simd::VecD one,
                            const g6::util::simd::VecD three, double (*b)[W]) {
  namespace s = g6::util::simd;
  const s::VecD drx = s::load(gx + j0) - xiv;
  const s::VecD dry = s::load(gy + j0) - yiv;
  const s::VecD drz = s::load(gz + j0) - ziv;
  const s::VecD dvx = s::load(gvx + j0) - vxiv;
  const s::VecD dvy = s::load(gvy + j0) - vyiv;
  const s::VecD dvz = s::load(gvz + j0) - vziv;
  const s::VecD mj = s::load(gm + j0);
  const s::VecD r2 = ((drx * drx + dry * dry) + drz * drz) + eps2v;
  const s::VecD rinv = one / s::vsqrt(r2);
  const s::VecD rinv2 = rinv * rinv;
  const s::VecD mr = mj * rinv;
  const s::VecD mr3 = mr * rinv2;
  const s::VecD rv = (drx * dvx + dry * dvy) + drz * dvz;
  const s::VecD c = three * (rv * rinv2);
  s::store(b[0], mr3 * drx);
  s::store(b[1], mr3 * dry);
  s::store(b[2], mr3 * drz);
  s::store(b[3], mr3 * (dvx - c * drx));
  s::store(b[4], mr3 * (dvy - c * dry));
  s::store(b[5], mr3 * (dvz - c * drz));
  s::store(b[6], mr);
}

/// Explicit G6_SIMD kernel: per W-wide j-block the contributions are computed
/// in vector registers (the divider works on a whole block at once), staged
/// through a double-buffered stack staging area, and accumulated in strict
/// j-order one block behind the vector fill. The one-block lag lets the
/// out-of-order core run block b+1's sqrt/div under block b's serial
/// ordered-summation chain, which is the kernel's other latency floor.
void force_simd(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                std::size_t self, double eps2, Force& f) {
  namespace s = g6::util::simd;
  constexpr std::size_t W = s::kWidth;
  const std::size_t n = js.size();
  const double* const gx = js.x.data();
  const double* const gy = js.y.data();
  const double* const gz = js.z.data();
  const double* const gvx = js.vx.data();
  const double* const gvy = js.vy.data();
  const double* const gvz = js.vz.data();
  const double* const gm = js.m.data();
  const s::VecD xiv = s::broadcast(xi.x), yiv = s::broadcast(xi.y),
                ziv = s::broadcast(xi.z);
  const s::VecD vxiv = s::broadcast(vi.x), vyiv = s::broadcast(vi.y),
                vziv = s::broadcast(vi.z);
  const s::VecD eps2v = s::broadcast(eps2);
  const s::VecD one = s::broadcast(1.0);
  const s::VecD three = s::broadcast(3.0);
  alignas(64) double buf[2][7][W];
  Sums acc(f);
  int cur = 0;
  bool pending = false;  // buf[cur ^ 1] holds a filled, not-yet-summed block
  std::size_t j0 = 0;
  auto drain = [&] {
    if (!pending) return;
    double(*b)[W] = buf[cur ^ 1];
    for (std::size_t k = 0; k < W; ++k) {
      acc.ax += b[0][k];
      acc.ay += b[1][k];
      acc.az += b[2][k];
      acc.jx += b[3][k];
      acc.jy += b[4][k];
      acc.jz += b[5][k];
      acc.po -= b[6][k];
    }
    pending = false;
  };
  for (; j0 + W <= n; j0 += W) {
    if (self - j0 < W) {  // block holds the self-particle: scalar path
      drain();
      acc.flush(f);
      reference_range(js, j0, j0 + W, xi, vi, self, eps2, f);
      acc = Sums(f);
      continue;
    }
    simd_fill_block<W>(gx, gy, gz, gvx, gvy, gvz, gm, j0, xiv, yiv, ziv, vxiv,
                       vyiv, vziv, eps2v, one, three, buf[cur]);
#if defined(__GNUC__)
    // Keep the staging stores real. Without this barrier GCC forwards the
    // vector stores straight into the ordered-sum loads via ~50 cross-lane
    // shuffles per block, which serialize on the shuffle port and run ~3x
    // slower than store-forwarding through the stack buffer.
    asm volatile("" : "+m"(buf));
#endif
    drain();  // sum the previous block while this block's vectors retire
    pending = true;
    cur ^= 1;  // the just-filled block is now buf[cur ^ 1]
  }
  drain();
  acc.flush(f);
  reference_range(js, j0, n, xi, vi, self, eps2, f);
}

/// Opt-in approximate kernel: reciprocal-sqrt estimate + two Newton steps,
/// FMA everywhere, vector-lane accumulators (no ordering constraint). Only
/// meaningfully different from force_simd on AVX-512 hardware.
void force_fast(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                std::size_t self, double eps2, Force& f) {
  namespace s = g6::util::simd;
  if constexpr (!s::kHasFastRsqrt) {
    force_simd(js, xi, vi, self, eps2, f);
    return;
  } else {
    constexpr std::size_t W = s::kWidth;
    const std::size_t n = js.size();
    const s::VecD xiv = s::broadcast(xi.x), yiv = s::broadcast(xi.y),
                  ziv = s::broadcast(xi.z);
    const s::VecD vxiv = s::broadcast(vi.x), vyiv = s::broadcast(vi.y),
                  vziv = s::broadcast(vi.z);
    const s::VecD eps2v = s::broadcast(eps2);
    const s::VecD half = s::broadcast(0.5);
    const s::VecD c15 = s::broadcast(1.5);
    const s::VecD three = s::broadcast(3.0);
    s::VecD accx = s::broadcast(0.0), accy = accx, accz = accx;
    s::VecD jkx = accx, jky = accx, jkz = accx, pot = accx;
    std::size_t j0 = 0;
    for (; j0 + W <= n; j0 += W) {
      if (self - j0 < W) {
        reference_range(js, j0, j0 + W, xi, vi, self, eps2, f);
        continue;
      }
      const s::VecD drx = s::load(js.x.data() + j0) - xiv;
      const s::VecD dry = s::load(js.y.data() + j0) - yiv;
      const s::VecD drz = s::load(js.z.data() + j0) - ziv;
      const s::VecD dvx = s::load(js.vx.data() + j0) - vxiv;
      const s::VecD dvy = s::load(js.vy.data() + j0) - vyiv;
      const s::VecD dvz = s::load(js.vz.data() + j0) - vziv;
      const s::VecD mj = s::load(js.m.data() + j0);
      const s::VecD r2 = s::fmadd(drz, drz, s::fmadd(dry, dry, s::fmadd(drx, drx, eps2v)));
      s::VecD y = s::rsqrt_approx(r2);
      const s::VecD h = half * r2;
      y = y * s::fnmadd(h * y, y, c15);  // Newton: y (1.5 - r2/2 y^2)
      y = y * s::fnmadd(h * y, y, c15);
      const s::VecD rinv2 = y * y;
      const s::VecD mr = mj * y;
      const s::VecD mr3 = mr * rinv2;
      const s::VecD rv = s::fmadd(drz, dvz, s::fmadd(dry, dvy, drx * dvx));
      const s::VecD c = three * (rv * rinv2);
      accx = s::fmadd(mr3, drx, accx);
      accy = s::fmadd(mr3, dry, accy);
      accz = s::fmadd(mr3, drz, accz);
      jkx = s::fmadd(mr3, s::fnmadd(c, drx, dvx), jkx);
      jky = s::fmadd(mr3, s::fnmadd(c, dry, dvy), jky);
      jkz = s::fmadd(mr3, s::fnmadd(c, drz, dvz), jkz);
      pot = pot - mr;
    }
    reference_range(js, j0, n, xi, vi, self, eps2, f);
    f.acc.x += s::reduce_add(accx);
    f.acc.y += s::reduce_add(accy);
    f.acc.z += s::reduce_add(accz);
    f.jerk.x += s::reduce_add(jkx);
    f.jerk.y += s::reduce_add(jky);
    f.jerk.z += s::reduce_add(jkz);
    f.pot += s::reduce_add(pot);
  }
}

}  // namespace

void force_on_i(CpuKernel kernel, const SoAPredicted& js, const Vec3& xi,
                const Vec3& vi, std::size_t self, double eps2, Force& out) {
  switch (kernel) {
    case CpuKernel::kReference:
      reference_range(js, 0, js.size(), xi, vi, self, eps2, out);
      return;
    case CpuKernel::kTiled:
      force_tiled(js, xi, vi, self, eps2, out);
      return;
    case CpuKernel::kSimd:
      force_simd(js, xi, vi, self, eps2, out);
      return;
    case CpuKernel::kFast:
      force_fast(js, xi, vi, self, eps2, out);
      return;
  }
}

}  // namespace g6::nbody
