#include "nbody/force_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "nbody/force_direct.hpp"
#include "nbody/simd_dispatch.hpp"
#include "util/log.hpp"

namespace g6::nbody {

bool cpu_kernel_from_name(const char* name, CpuKernel* out) {
  if (name == nullptr) return false;
  for (int i = 0; i < kCpuKernelCount; ++i) {
    const CpuKernel k = static_cast<CpuKernel>(i);
    if (std::strcmp(name, cpu_kernel_name(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

CpuKernel cpu_kernel_from_env() {
  const char* env = std::getenv("G6_CPU_KERNEL");
  if (env == nullptr) return CpuKernel::kSimd;
  CpuKernel k;
  if (cpu_kernel_from_name(env, &k)) return k;
  // One-shot: the backend constructs per run/board, and a misspelt kernel
  // silently running the default cost PR 2's bench users real confusion.
  static const bool warned = [env] {
    G6_LOG_WARN("unrecognised G6_CPU_KERNEL '"
                << env
                << "' (accepted: reference, tiled, simd, blocked, fast, "
                   "mixed); using 'simd'");
    return true;
  }();
  (void)warned;
  return CpuKernel::kSimd;
}

const char* cpu_kernel_name(CpuKernel k) {
  switch (k) {
    case CpuKernel::kReference: return "reference";
    case CpuKernel::kTiled: return "tiled";
    case CpuKernel::kSimd: return "simd";
    case CpuKernel::kBlocked: return "blocked";
    case CpuKernel::kFast: return "fast";
    case CpuKernel::kMixed: return "mixed";
  }
  return "?";
}

void SoAPredicted::ensure_mixed() const {
  if (mixed_valid) return;
  const std::size_t n = size();
  qx.resize(n); qy.resize(n); qz.resize(n);
  fvx.resize(n); fvy.resize(n); fvz.resize(n);
  fm3.resize(n);
  double maxc = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    maxc = std::max(maxc, std::fabs(x[j]));
    maxc = std::max(maxc, std::fabs(y[j]));
    maxc = std::max(maxc, std::fabs(z[j]));
  }
  // Power-of-two grid spacing with max|coord|/lsb <= 2^29: positions use 30
  // signed bits, position differences (incl. an i-particle up to twice the
  // span away) stay well inside int32 — mirroring the hardware's fixed-point
  // j-memory, where differences on the common grid are exact.
  mixed_lsb = std::ldexp(1.0, std::ilogb(maxc) + 1 - 29);
  const double inv = 1.0 / mixed_lsb;
  // Masses are pre-divided by lsb^3 so the kernel can run entirely in grid
  // units (no per-pair rescaling of dr): lsb is a power of two, so this and
  // the kernel's final undo are exact exponent shifts, not roundings.
  const double inv3 = inv * inv * inv;
  for (std::size_t j = 0; j < n; ++j) {
    qx[j] = static_cast<std::int32_t>(std::lrint(x[j] * inv));
    qy[j] = static_cast<std::int32_t>(std::lrint(y[j] * inv));
    qz[j] = static_cast<std::int32_t>(std::lrint(z[j] * inv));
    fvx[j] = static_cast<float>(vx[j]);
    fvy[j] = static_cast<float>(vy[j]);
    fvz[j] = static_cast<float>(vz[j]);
    fm3[j] = static_cast<float>(m[j] * inv3);
  }
  mixed_valid = true;
}

namespace {

/// The seven running sums of one i-particle, held in scalar locals so the
/// optimizer keeps them in registers (see kernels_impl.hpp).
struct Sums {
  double ax, ay, az, jx, jy, jz, po;

  explicit Sums(const Force& f)
      : ax(f.acc.x), ay(f.acc.y), az(f.acc.z),
        jx(f.jerk.x), jy(f.jerk.y), jz(f.jerk.z), po(f.pot) {}

  void flush(Force& f) const {
    f.acc = {ax, ay, az};
    f.jerk = {jx, jy, jz};
    f.pot = po;
  }
};

// The scalar oracle loop must stay scalar: GCC's SLP vectorizer otherwise
// rewrites it with ~10 cross-lane shuffles per pair (all serialized on one
// port), which is ~2x slower than plain scalar code on this loop.
#if defined(__GNUC__) && !defined(__clang__)
#define G6_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define G6_NO_VECTORIZE
#endif

}  // namespace

/// The seed's scalar loop over [b, e) — the bit-exactness oracle, also used
/// by every per-ISA kernel TU for the tile containing `self` and for tails
/// (one shared compiled copy; scalar double arithmetic is ISA-independent).
/// Expression-for-expression identical to pairwise_force (force_direct.hpp).
G6_NO_VECTORIZE
void reference_force_range(const SoAPredicted& js, std::size_t b, std::size_t e,
                           const Vec3& xi, const Vec3& vi, std::size_t self,
                           double eps2, Force& f) {
  const double* const gx = js.x.data();
  const double* const gy = js.y.data();
  const double* const gz = js.z.data();
  const double* const gvx = js.vx.data();
  const double* const gvy = js.vy.data();
  const double* const gvz = js.vz.data();
  const double* const gm = js.m.data();
  Sums s(f);
  for (std::size_t j = b; j < e; ++j) {
    if (j == self) continue;
    const double drx = gx[j] - xi.x;
    const double dry = gy[j] - xi.y;
    const double drz = gz[j] - xi.z;
    const double dvx = gvx[j] - vi.x;
    const double dvy = gvy[j] - vi.y;
    const double dvz = gvz[j] - vi.z;
    const double r2 = ((drx * drx + dry * dry) + drz * drz) + eps2;
    const double rinv = 1.0 / std::sqrt(r2);
    const double rinv2 = rinv * rinv;
    const double mr = gm[j] * rinv;
    const double mr3 = mr * rinv2;
    const double rv = (drx * dvx + dry * dvy) + drz * dvz;
    const double c = 3.0 * (rv * rinv2);
    s.ax += mr3 * drx;
    s.ay += mr3 * dry;
    s.az += mr3 * drz;
    s.jx += mr3 * (dvx - c * drx);
    s.jy += mr3 * (dvy - c * dry);
    s.jz += mr3 * (dvz - c * drz);
    s.po -= mr;
  }
  s.flush(f);
}

void force_on_i(CpuKernel kernel, const SoAPredicted& js, const Vec3& xi,
                const Vec3& vi, std::size_t self, double eps2, Force& out) {
  if (kernel == CpuKernel::kReference) {
    reference_force_range(js, 0, js.size(), xi, vi, self, eps2, out);
    return;
  }
  const KernelTable& t = active_kernel_table();
  switch (kernel) {
    case CpuKernel::kReference:
      return;  // handled above
    case CpuKernel::kTiled:
      t.tiled(js, xi, vi, self, eps2, out);
      return;
    case CpuKernel::kSimd:
      t.simd(js, xi, vi, self, eps2, out);
      return;
    case CpuKernel::kBlocked: {
      const std::uint32_t self32 =
          self == kNoSelf ? kNoSelf32 : static_cast<std::uint32_t>(self);
      t.blocked(js, &xi, &vi, &self32, 1, eps2, active_block_geometry(), &out);
      return;
    }
    case CpuKernel::kFast:
      t.fast(js, xi, vi, self, eps2, out);
      return;
    case CpuKernel::kMixed:
      t.mixed(js, xi, vi, self, eps2, out);
      return;
  }
}

void force_on_block(CpuKernel kernel, const SoAPredicted& js, const Vec3* xis,
                    const Vec3* vis, const std::uint32_t* selves, std::size_t ni,
                    double eps2, Force* out) {
  if (kernel == CpuKernel::kBlocked) {
    active_kernel_table().blocked(js, xis, vis, selves, ni, eps2,
                                  active_block_geometry(), out);
    return;
  }
  if (kernel == CpuKernel::kMixed) {
    js.ensure_mixed();  // outside the block entry's pair loop, once per sweep
    active_kernel_table().mixed_block(js, xis, vis, selves, ni, eps2,
                                      active_block_geometry(), out);
    return;
  }
  for (std::size_t k = 0; k < ni; ++k) {
    const std::size_t self =
        selves[k] == kNoSelf32 ? kNoSelf : static_cast<std::size_t>(selves[k]);
    force_on_i(kernel, js, xis[k], vis[k], self, eps2, out[k]);
  }
}

}  // namespace g6::nbody
