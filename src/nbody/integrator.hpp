#pragma once
/// \file integrator.hpp
/// \brief The block individual-timestep Hermite integrator — the paper's
///        algorithm (§1, §3): "The algorithm used is the block individual
///        timestep algorithm, where each particle has its own time and
///        timesteps ... we used direct summation for the force calculation."
///
/// The integrator plays the role of the host PCs: scheduling, prediction of
/// i-particles, correction, timestep control and the external solar
/// potential. All mutual gravity goes through a ForceBackend.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nbody/blockstep.hpp"
#include "nbody/external_potential.hpp"
#include "nbody/force.hpp"
#include "nbody/particle.hpp"
#include "obs/blockstep_record.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace g6::nbody {

/// Tunables of the Hermite/blockstep scheme.
struct IntegratorConfig {
  double eta = 0.02;        ///< Aarseth timestep accuracy parameter
  double eta_init = 0.01;   ///< startup timestep parameter (eta_s)
  double dt_max = 0.125;    ///< largest allowed step (power of two)
  double dt_min = 0x1p-40;  ///< smallest allowed step (power of two)
  double solar_gm = 0.0;    ///< external solar potential strength (0 = off)
  bool record_block_sizes = false;  ///< keep a trace of every block size

  /// Corrector passes per step. 1 is the standard PEC Hermite scheme the
  /// paper ran; >= 2 re-evaluates the force at the corrected state —
  /// the P(EC)^n iteration that makes the scheme time-symmetric for
  /// constant steps (Kokubo, Yoshinaga & Makino 1998), at the cost of one
  /// extra force evaluation per pass.
  int corrector_iterations = 1;
};

/// Aggregate statistics of an integration.
struct IntegratorStats {
  std::uint64_t blocks = 0;        ///< number of block steps executed
  std::uint64_t steps = 0;         ///< number of individual particle steps
  std::uint64_t dt_shrinks = 0;    ///< timestep halvings applied
  std::uint64_t dt_grows = 0;      ///< timestep doublings applied
  std::vector<std::uint32_t> block_sizes;  ///< per-block sizes (if recorded)

  /// Mean particles per block (the machine-efficiency driver, paper §4.2).
  double mean_block_size() const {
    return blocks == 0 ? 0.0 : static_cast<double>(steps) / static_cast<double>(blocks);
  }
};

/// Publish the counters into a metrics registry under `g6.nbody.*`
/// (see docs/OBSERVABILITY.md for the naming convention). Typically wired as
/// a snapshot provider:
///   registry.add_provider([&integ](auto& r) {
///     publish_metrics(integ.stats(), r); });
void publish_metrics(const IntegratorStats& stats, g6::obs::MetricsRegistry& registry);

/// 4th-order Hermite integrator with block individual timesteps.
class HermiteIntegrator {
 public:
  /// The integrator borrows \p ps and \p backend (caller keeps ownership);
  /// \p pool may be shared with the backend (nullptr = the process-wide
  /// g6::util::shared_pool()). The corrector is per-particle independent
  /// work, so trajectories are bit-identical at any thread count.
  HermiteIntegrator(ParticleSystem& ps, ForceBackend& backend, IntegratorConfig cfg,
                    g6::util::ThreadPool* pool = nullptr);

  /// Compute initial forces and timesteps for all particles (all at the same
  /// time), and prime the scheduler. Must be called before step()/evolve().
  void initialize();

  /// Resume from checkpointed state instead of initialize(): the particle
  /// system already holds the saved pos/vel/acc/jerk/pot and per-particle
  /// t/dt, so nothing is recomputed or re-quantised — j-memory is reloaded
  /// from the system, the scheduler is rebuilt from the stored t/dt pairs
  /// (each particle's next update is t+dt, the invariant that holds between
  /// any two block steps), and the stats counters continue from \p stats.
  /// A restored run is bit-identical to one that never stopped
  /// (docs/CHECKPOINTING.md states the determinism contract).
  void restore(double t_sys, IntegratorStats stats);

  /// Execute one block step; returns the time the block advanced to.
  double step();

  /// Step until no pending update time is <= t_end, then synchronise every
  /// particle to exactly t_end (so diagnostics see a coherent state).
  void evolve(double t_end);

  /// Bring all particles to exactly time \p t (>= every particle time).
  /// Re-quantises timesteps so integration can continue afterwards.
  void synchronize(double t);

  /// Earliest pending update time.
  double next_time() const { return scheduler_.next_time(); }

  /// Current system time (time of the last completed block).
  double current_time() const { return t_sys_; }

  const IntegratorStats& stats() const { return stats_; }
  const IntegratorConfig& config() const { return cfg_; }
  ParticleSystem& system() { return ps_; }
  const ParticleSystem& system() const { return ps_; }
  ForceBackend& backend() { return backend_; }

  /// Optional per-block observer: called as on_block(t, block_size) after
  /// every block step (used by the performance-model benches).
  std::function<void(double, std::size_t)> on_block;

  /// Attach a blockstep recorder: every step() closes one measured
  /// StepRecord (the integrator charges host/sync phases, the backend its
  /// hardware phases). Also forwarded to the backend. nullptr detaches.
  void set_step_recorder(g6::obs::BlockstepRecorder* rec) {
    recorder_ = rec;
    backend_.set_step_recorder(rec);
  }

 private:
  /// Correct the particles in \p block at time \p t given backend forces
  /// \p forces, assign new timesteps, and push them back onto the scheduler.
  /// When \p requantize is true (sync steps) the new dt is rebuilt from
  /// scratch instead of via the halve/double rule.
  void correct_block(double t, std::span<const std::uint32_t> block,
                     std::span<const Force> forces, bool requantize);

  ParticleSystem& ps_;
  ForceBackend& backend_;
  IntegratorConfig cfg_;
  g6::util::ThreadPool* pool_;
  SolarPotential solar_;
  BlockScheduler scheduler_;
  IntegratorStats stats_;
  g6::obs::BlockstepRecorder* recorder_ = nullptr;
  double t_sys_ = 0.0;
  bool initialized_ = false;

  // Scratch buffers reused across block steps.
  std::vector<std::uint32_t> block_;
  std::vector<Force> forces_;
};

}  // namespace g6::nbody
