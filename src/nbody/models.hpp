#pragma once
/// \file models.hpp
/// \brief Classic N-body initial-condition generators used to exercise the
///        GRAPE machinery outside the planetesimal problem: the Plummer
///        sphere (the standard benchmark model of the GRAPE papers and of
///        collisional stellar dynamics) and the cold uniform sphere.

#include <cstdint>

#include "nbody/particle.hpp"
#include "util/rng.hpp"

namespace g6::nbody {

/// Equal-mass Plummer model with total mass \p total_mass and Plummer scale
/// radius \p scale (virial-equilibrium velocities, isotropic). Standard
/// Aarseth–Hénon–Wielen rejection sampling; the result is shifted to the
/// centre-of-mass frame.
ParticleSystem plummer_sphere(std::size_t n, double total_mass, double scale,
                              g6::util::Rng& rng);

/// Cold (zero-velocity) homogeneous sphere of radius \p radius — the classic
/// violent-relaxation / cold-collapse test.
ParticleSystem cold_uniform_sphere(std::size_t n, double total_mass, double radius,
                                   g6::util::Rng& rng);

/// Shift a system to its centre-of-mass frame (position and velocity).
void to_center_of_mass_frame(ParticleSystem& ps);

/// Virial ratio Q = -T/W of a snapshot (0.5 in equilibrium). O(N^2).
double virial_ratio(const ParticleSystem& ps, double eps = 0.0);

}  // namespace g6::nbody
