#pragma once
/// \file energy.hpp
/// \brief Conserved-quantity diagnostics: total energy (kinetic + softened
///        mutual potential + solar potential) and angular momentum.
///
/// Energies are only meaningful on a synchronised system (all particles at a
/// common time) — call HermiteIntegrator::synchronize() first.

#include "nbody/particle.hpp"
#include "util/thread_pool.hpp"

namespace g6::nbody {

/// Breakdown of the system energy.
struct EnergyReport {
  double kinetic = 0.0;
  double potential_mutual = 0.0;  ///< softened pairwise potential energy
  double potential_solar = 0.0;   ///< external solar potential energy
  double total() const { return kinetic + potential_mutual + potential_solar; }
};

/// Compute the energy of \p ps with softening \p eps and solar strength
/// \p solar_gm. O(N^2); pass a pool to parallelise the pair sum.
EnergyReport compute_energy(const ParticleSystem& ps, double eps, double solar_gm,
                            g6::util::ThreadPool* pool = nullptr);

/// Total angular momentum about the origin.
Vec3 total_angular_momentum(const ParticleSystem& ps);

/// Centre-of-mass position / velocity.
Vec3 center_of_mass(const ParticleSystem& ps);
Vec3 center_of_mass_velocity(const ParticleSystem& ps);

}  // namespace g6::nbody
