#pragma once
/// \file force_direct.hpp
/// \brief Double-precision direct-summation force backend (the CPU reference
///        implementation; also the per-node kernel of the cluster model).

#include <cstdint>
#include <memory>
#include <vector>

#include "nbody/force.hpp"
#include "nbody/force_kernels.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace g6::nbody {

/// Pairwise softened gravitational force + jerk of particle j (mass m at
/// predicted xj, vj) on an i-particle at (xi, vi):
///   a += m r / (r^2+eps^2)^{3/2},  with r = xj - xi
///   j += m [ v / R3 - 3 (r.v)/R5 r ],  v = vj - vi
/// and pot += m / sqrt(r^2+eps^2). The Gordon Bell convention charges 38
/// floating-point operations for the force and 19 for the jerk.
inline void pairwise_force(const Vec3& xi, const Vec3& vi, const Vec3& xj,
                           const Vec3& vj, double mj, double eps2, Force& f) {
  const Vec3 dr = xj - xi;
  const Vec3 dv = vj - vi;
  const double r2 = norm2(dr) + eps2;
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv2 = rinv * rinv;
  const double mr3inv = mj * rinv * rinv2;
  f.acc += mr3inv * dr;
  f.jerk += mr3inv * (dv - 3.0 * (dot(dr, dv) * rinv2) * dr);
  f.pot -= mj * rinv;
}

/// CPU direct-summation backend. Keeps its own j-particle store (time of
/// validity, position, velocity, acc, jerk, mass per particle) exactly like
/// the hardware's j-memory, and predicts all of them to the requested time
/// before each force evaluation. The predicted store is structure-of-arrays
/// (force_kernels.hpp) and is cached per block time: repeated evaluations at
/// the same t (e.g. compute() delegating to compute_states(), or iterated
/// correctors) predict once.
class CpuDirectBackend final : public ForceBackend {
 public:
  /// \p eps softening length; \p pool optional thread pool (null means the
  /// process-wide g6::util::shared_pool()). Results are bit-identical for
  /// any thread count: the per-i force sweep is independent work.
  explicit CpuDirectBackend(double eps, g6::util::ThreadPool* pool = nullptr);

  std::string name() const override { return "cpu-direct"; }
  void load(const ParticleSystem& ps) override;
  void update(std::span<const std::uint32_t> indices, const ParticleSystem& ps) override;
  void compute(double t, std::span<const std::uint32_t> ilist,
               std::span<Force> out) override;
  void compute_states(double t, std::span<const std::uint32_t> ilist,
                      std::span<const Vec3> pos, std::span<const Vec3> vel,
                      std::span<Force> out) override;
  std::uint64_t interaction_count() const override { return interactions_; }
  double softening() const override { return eps_; }

  /// Number of j-particles currently loaded.
  std::size_t j_count() const { return mass_.size(); }

  /// Inner kernel in use (default: G6_CPU_KERNEL env, else the bit-exact
  /// SIMD kernel). Settable so benches/tests can pin variants.
  CpuKernel kernel() const { return kernel_; }
  void set_kernel(CpuKernel k) { kernel_ = k; }

 private:
  void predict_all(double t);

  double eps_;
  g6::util::ThreadPool* pool_;
  CpuKernel kernel_ = cpu_kernel_from_env();

  // j-particle store (state at each particle's own time t0).
  std::vector<double> t0_, mass_;
  std::vector<Vec3> x0_, v0_, a0_, j0_;
  // SoA predicted state, cached at time predicted_t_.
  SoAPredicted pred_;
  double predicted_t_ = 0.0;
  bool predictions_valid_ = false;
  // Scratch i-particle staging for compute() (avoids per-call allocation).
  std::vector<Vec3> scratch_pos_, scratch_vel_;

  // g6.kernel.<name>.interactions counters, one per kernel variant.
  g6::obs::Counter kernel_interactions_[kCpuKernelCount];

  std::uint64_t interactions_ = 0;
};

}  // namespace g6::nbody
