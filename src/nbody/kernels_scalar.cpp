/// Scalar rung of the dispatch ladder: the explicit vector kernels run one
/// lane wide (G6_SIMD_FORCE_SCALAR must be seen before util/simd.hpp).
/// Compiled for baseline x86-64 — see src/nbody/CMakeLists.txt.
#define G6_SIMD_FORCE_SCALAR 1
#define G6_KERNEL_IMPL_NS kernels_scalar
#define G6_KERNEL_LEVEL ::g6::nbody::SimdLevel::kScalar
#include "nbody/kernels_impl.hpp"
