#include "nbody/force_direct.hpp"

#include "nbody/hermite.hpp"
#include "util/check.hpp"

namespace g6::nbody {

CpuDirectBackend::CpuDirectBackend(double eps, g6::util::ThreadPool* pool)
    : eps_(eps), pool_(pool) {
  G6_CHECK(eps >= 0.0, "softening must be non-negative");
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<g6::util::ThreadPool>(1);
    pool_ = owned_pool_.get();
  }
}

void CpuDirectBackend::load(const ParticleSystem& ps) {
  const std::size_t n = ps.size();
  t0_.resize(n);
  mass_.resize(n);
  x0_.resize(n);
  v0_.resize(n);
  a0_.resize(n);
  j0_.resize(n);
  xp_.resize(n);
  vp_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t0_[i] = ps.time(i);
    mass_[i] = ps.mass(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
}

void CpuDirectBackend::update(std::span<const std::uint32_t> indices,
                              const ParticleSystem& ps) {
  G6_CHECK(ps.size() == mass_.size(), "system size changed; call load() instead");
  for (std::uint32_t i : indices) {
    G6_CHECK(i < mass_.size(), "update index out of range");
    t0_[i] = ps.time(i);
    mass_[i] = ps.mass(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
}

void CpuDirectBackend::predict_all(double t) {
  const std::size_t n = mass_.size();
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j) {
      const Predicted p = hermite_predict(x0_[j], v0_[j], a0_[j], j0_[j], t - t0_[j]);
      xp_[j] = p.pos;
      vp_[j] = p.vel;
    }
  });
}

void CpuDirectBackend::compute(double t, std::span<const std::uint32_t> ilist,
                               std::span<Force> out) {
  G6_CHECK(out.size() == ilist.size(), "output span size mismatch");
  G6_CHECK(!mass_.empty(), "no particles loaded");
  predict_all(t);
  // The i-particle states are their own j-memory predictions.
  std::vector<Vec3> pos(ilist.size()), vel(ilist.size());
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    G6_CHECK(ilist[k] < mass_.size(), "i-particle index out of range");
    pos[k] = xp_[ilist[k]];
    vel[k] = vp_[ilist[k]];
  }
  compute_states(t, ilist, pos, vel, out);
}

void CpuDirectBackend::compute_states(double t, std::span<const std::uint32_t> ilist,
                                      std::span<const Vec3> pos,
                                      std::span<const Vec3> vel,
                                      std::span<Force> out) {
  G6_CHECK(out.size() == ilist.size() && pos.size() == ilist.size() &&
               vel.size() == ilist.size(),
           "i-state span size mismatch");
  G6_CHECK(!mass_.empty(), "no particles loaded");
  predict_all(t);
  const std::size_t n = mass_.size();
  const double eps2 = eps_ * eps_;
  pool_->parallel_for(ilist.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      const std::uint32_t i = ilist[k];
      G6_CHECK(i < n, "i-particle index out of range");
      const Vec3 xi = pos[k];
      const Vec3 vi = vel[k];
      Force f{};
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        pairwise_force(xi, vi, xp_[j], vp_[j], mass_[j], eps2, f);
      }
      out[k] = f;
    }
  });
  interactions_ += static_cast<std::uint64_t>(ilist.size()) * (n - 1);
}

}  // namespace g6::nbody
