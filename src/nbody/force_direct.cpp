#include "nbody/force_direct.hpp"

#include "nbody/hermite.hpp"
#include "nbody/simd_dispatch.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::nbody {

CpuDirectBackend::CpuDirectBackend(double eps, g6::util::ThreadPool* pool)
    : eps_(eps), pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(eps >= 0.0, "softening must be non-negative");
  publish_kernel_metrics(g6::obs::MetricsRegistry::global());
  for (int k = 0; k < kCpuKernelCount; ++k)
    kernel_interactions_[k] = g6::obs::MetricsRegistry::global().counter(
        std::string("g6.kernel.") + cpu_kernel_name(static_cast<CpuKernel>(k)) +
        ".interactions");
}

void CpuDirectBackend::load(const ParticleSystem& ps) {
  const std::size_t n = ps.size();
  t0_.resize(n);
  mass_.resize(n);
  x0_.resize(n);
  v0_.resize(n);
  a0_.resize(n);
  j0_.resize(n);
  pred_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t0_[i] = ps.time(i);
    mass_[i] = ps.mass(i);
    pred_.m[i] = ps.mass(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  predictions_valid_ = false;
}

void CpuDirectBackend::update(std::span<const std::uint32_t> indices,
                              const ParticleSystem& ps) {
  G6_CHECK(ps.size() == mass_.size(), "system size changed; call load() instead");
  for (std::uint32_t i : indices) {
    G6_CHECK(i < mass_.size(), "update index out of range");
    t0_[i] = ps.time(i);
    mass_[i] = ps.mass(i);
    pred_.m[i] = ps.mass(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  predictions_valid_ = false;
}

void CpuDirectBackend::predict_all(double t) {
  if (predictions_valid_ && predicted_t_ == t) return;
  const std::size_t n = mass_.size();
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j) {
      const Predicted p = hermite_predict(x0_[j], v0_[j], a0_[j], j0_[j], t - t0_[j]);
      pred_.x[j] = p.pos.x;
      pred_.y[j] = p.pos.y;
      pred_.z[j] = p.pos.z;
      pred_.vx[j] = p.vel.x;
      pred_.vy[j] = p.vel.y;
      pred_.vz[j] = p.vel.z;
    }
  });
  pred_.mixed_valid = false;  // the kMixed mirror tracks the predicted state
  predicted_t_ = t;
  predictions_valid_ = true;
}

void CpuDirectBackend::compute(double t, std::span<const std::uint32_t> ilist,
                               std::span<Force> out) {
  G6_CHECK(out.size() == ilist.size(), "output span size mismatch");
  G6_CHECK(!mass_.empty(), "no particles loaded");
  predict_all(t);
  // The i-particle states are their own j-memory predictions; the cached
  // prediction makes the compute_states() call below predict-free.
  scratch_pos_.resize(ilist.size());
  scratch_vel_.resize(ilist.size());
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    const std::uint32_t i = ilist[k];
    G6_CHECK(i < mass_.size(), "i-particle index out of range");
    scratch_pos_[k] = {pred_.x[i], pred_.y[i], pred_.z[i]};
    scratch_vel_[k] = {pred_.vx[i], pred_.vy[i], pred_.vz[i]};
  }
  compute_states(t, ilist, scratch_pos_, scratch_vel_, out);
}

void CpuDirectBackend::compute_states(double t, std::span<const std::uint32_t> ilist,
                                      std::span<const Vec3> pos,
                                      std::span<const Vec3> vel,
                                      std::span<Force> out) {
  G6_CHECK(out.size() == ilist.size() && pos.size() == ilist.size() &&
               vel.size() == ilist.size(),
           "i-state span size mismatch");
  G6_CHECK(!mass_.empty(), "no particles loaded");
  predict_all(t);  // cache hit when arriving via compute()
  const std::size_t n = mass_.size();
  const double eps2 = eps_ * eps_;
  const CpuKernel kernel = kernel_;
  // Build the reduced-precision mirror once, before fanning out: the lazy
  // fill inside the kernel would otherwise race across worker threads.
  if (kernel == CpuKernel::kMixed) pred_.ensure_mixed();
  if (kernel == CpuKernel::kBlocked) {
    // Block entry point: the i×j tiling needs whole i-ranges, and each
    // parallel_for chunk is one. Results are independent per i, so the
    // thread-count invariance of the per-i path carries over.
    pool_->parallel_for(ilist.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) {
        G6_CHECK(ilist[k] < n, "i-particle index out of range");
        out[k] = Force{};
      }
      force_on_block(kernel, pred_, pos.data() + b, vel.data() + b,
                     ilist.data() + b, e - b, eps2, out.data() + b);
    });
  } else {
    pool_->parallel_for(ilist.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) {
        const std::uint32_t i = ilist[k];
        G6_CHECK(i < n, "i-particle index out of range");
        Force f{};
        force_on_i(kernel, pred_, pos[k], vel[k], i, eps2, f);
        out[k] = f;
      }
    });
  }
  const std::uint64_t count = static_cast<std::uint64_t>(ilist.size()) * (n - 1);
  interactions_ += count;
  kernel_interactions_[static_cast<int>(kernel)].add(count);
}

}  // namespace g6::nbody
