#include "nbody/simd_dispatch.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace g6::nbody {

// Each per-ISA translation unit (kernels_<isa>.cpp) exports exactly one
// symbol: its dispatch table.
namespace kernels_scalar { const KernelTable& table(); }
namespace kernels_sse2 { const KernelTable& table(); }
namespace kernels_avx2 { const KernelTable& table(); }
namespace kernels_avx512 { const KernelTable& table(); }

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "?";
}

bool simd_level_from_name(const char* name, SimdLevel* out) {
  if (name == nullptr) return false;
  for (int i = 0; i < kSimdLevelCount; ++i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    if (std::strcmp(name, simd_level_name(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

SimdLevel detect_simd_level() {
  static const SimdLevel level = [] {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    // Each rung needs every feature its kernels may emit. AVX-512: the F
    // foundation plus DQ/VL (GCC uses them freely at -mavx512dq -mavx512vl)
    // and FMA. AVX2 implies AVX; FMA is checked separately (early AVX2-less
    // FMA parts and vice versa exist).
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("fma"))
      return SimdLevel::kAvx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return SimdLevel::kAvx2;
    return SimdLevel::kSse2;  // part of the x86-64 baseline, always present
#else
    return SimdLevel::kScalar;
#endif
  }();
  return level;
}

SimdLevel resolve_simd_level(const char* env_value, SimdLevel detected,
                             std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (env_value == nullptr) return detected;
  SimdLevel requested;
  if (!simd_level_from_name(env_value, &requested)) {
    if (warning != nullptr)
      *warning = std::string("unrecognised G6_SIMD_LEVEL '") + env_value +
                 "' (accepted: scalar, sse2, avx2, avx512); using detected '" +
                 simd_level_name(detected) + "'";
    return detected;
  }
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    if (warning != nullptr)
      *warning = std::string("G6_SIMD_LEVEL=") + env_value +
                 " is not supported by this CPU; clamping to detected '" +
                 simd_level_name(detected) + "'";
    return detected;
  }
  return requested;
}

SimdLevel active_simd_level() {
  static const SimdLevel level = [] {
    std::string warning;
    const SimdLevel resolved =
        resolve_simd_level(std::getenv("G6_SIMD_LEVEL"), detect_simd_level(), &warning);
    if (!warning.empty()) G6_LOG_WARN(warning);
    return resolved;
  }();
  return level;
}

CacheInfo probe_cache_info() {
  CacheInfo info;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long l1 = ::sysconf(_SC_LEVEL1_DCACHE_SIZE);
  if (l1 > 0) info.l1d_bytes = static_cast<std::size_t>(l1);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) info.l2_bytes = static_cast<std::size_t>(l2);
#endif
  if (info.l1d_bytes == 0) info.l1d_bytes = 32 * 1024;
  if (info.l2_bytes == 0) info.l2_bytes = 1024 * 1024;
  return info;
}

BlockGeometry derive_block_geometry(const CacheInfo& cache) {
  // 7 streamed double columns = 56 bytes per j. Half of L1d for the j-block
  // keeps the block resident while the i-states and accumulators (~104 B
  // per i, capped at a quarter of L1d) cycle over it.
  constexpr std::size_t kBytesPerJ = 7 * sizeof(double);
  constexpr std::size_t kBytesPerI = 104;
  BlockGeometry geom;
  geom.j_block = (cache.l1d_bytes / 2) / kBytesPerJ;
  geom.j_block = (geom.j_block / 64) * 64;              // vector-friendly
  geom.j_block = std::clamp<std::size_t>(geom.j_block, 64, 8192);
  geom.i_block = (cache.l1d_bytes / 4) / kBytesPerI;
  geom.i_block = (geom.i_block / 8) * 8;
  geom.i_block = std::clamp<std::size_t>(geom.i_block, 8, 1024);
  return geom;
}

namespace {

/// One env override for the geometry: positive integer, else one-shot warn.
std::size_t geometry_override(const char* var, std::size_t fallback) {
  const char* env = std::getenv(var);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) {
    G6_LOG_WARN("ignoring invalid " << var << "='" << env
                                    << "' (expected a positive integer)");
    return fallback;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

BlockGeometry active_block_geometry() {
  static const BlockGeometry geom = [] {
    BlockGeometry g = derive_block_geometry(probe_cache_info());
    g.i_block = geometry_override("G6_BLOCK_I", g.i_block);
    g.j_block = geometry_override("G6_BLOCK_J", g.j_block);
    return g;
  }();
  return geom;
}

const KernelTable& kernel_table(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512: return kernels_avx512::table();
    case SimdLevel::kAvx2: return kernels_avx2::table();
    case SimdLevel::kSse2: return kernels_sse2::table();
    case SimdLevel::kScalar: return kernels_scalar::table();
  }
  return kernels_scalar::table();
}

const KernelTable& active_kernel_table() {
  static const KernelTable& t = kernel_table(active_simd_level());
  return t;
}

void publish_kernel_metrics(g6::obs::MetricsRegistry& reg) {
  const KernelTable& t = active_kernel_table();
  const BlockGeometry geom = active_block_geometry();
  const CacheInfo cache = probe_cache_info();
  reg.gauge("g6.kernel.simd_level").set(static_cast<double>(t.level));
  for (int i = 0; i < kSimdLevelCount; ++i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    reg.gauge(std::string("g6.kernel.level.") + simd_level_name(level))
        .set(level == t.level ? 1.0 : 0.0);
  }
  reg.gauge("g6.kernel.simd_width").set(static_cast<double>(t.width));
  reg.gauge("g6.kernel.block_i").set(static_cast<double>(geom.i_block));
  reg.gauge("g6.kernel.block_j").set(static_cast<double>(geom.j_block));
  reg.gauge("g6.kernel.l1d_bytes").set(static_cast<double>(cache.l1d_bytes));
  reg.gauge("g6.kernel.l2_bytes").set(static_cast<double>(cache.l2_bytes));
}

}  // namespace g6::nbody
