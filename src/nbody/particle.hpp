#pragma once
/// \file particle.hpp
/// \brief Structure-of-arrays particle storage for the Hermite/block-timestep
///        engine.
///
/// Each particle carries the full 4th-order Hermite state: position, velocity,
/// acceleration and jerk evaluated at its *individual* time `t`, plus its
/// individual timestep `dt` (a power of two under the block scheme). The
/// layout is SoA because the force kernels and the GRAPE j-particle memory
/// both stream per-component arrays.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/vec3.hpp"

namespace g6::nbody {

using g6::util::Vec3;

/// Result of one force evaluation on one particle.
struct Force {
  Vec3 acc;     ///< acceleration
  Vec3 jerk;    ///< time derivative of acceleration
  double pot = 0.0;  ///< potential (per unit mass, negative-definite part)
};

/// SoA particle container.
class ParticleSystem {
 public:
  ParticleSystem() = default;

  /// Construct with \p n zero-initialised particles.
  explicit ParticleSystem(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    mass_.resize(n, 0.0);
    pos_.resize(n);
    vel_.resize(n);
    acc_.resize(n);
    jerk_.resize(n);
    pot_.resize(n, 0.0);
    time_.resize(n, 0.0);
    dt_.resize(n, 0.0);
    id_.resize(n);
    for (std::size_t i = 0; i < n; ++i) id_[i] = static_cast<std::uint32_t>(i);
  }

  /// Append one particle at time 0; returns its index.
  std::size_t add(double m, const Vec3& x, const Vec3& v) {
    mass_.push_back(m);
    pos_.push_back(x);
    vel_.push_back(v);
    acc_.push_back({});
    jerk_.push_back({});
    pot_.push_back(0.0);
    time_.push_back(0.0);
    dt_.push_back(0.0);
    id_.push_back(static_cast<std::uint32_t>(id_.size()));
    return mass_.size() - 1;
  }

  std::size_t size() const { return mass_.size(); }
  bool empty() const { return mass_.empty(); }

  // Mutable / const field access.
  double& mass(std::size_t i) { return mass_[i]; }
  double mass(std::size_t i) const { return mass_[i]; }
  Vec3& pos(std::size_t i) { return pos_[i]; }
  const Vec3& pos(std::size_t i) const { return pos_[i]; }
  Vec3& vel(std::size_t i) { return vel_[i]; }
  const Vec3& vel(std::size_t i) const { return vel_[i]; }
  Vec3& acc(std::size_t i) { return acc_[i]; }
  const Vec3& acc(std::size_t i) const { return acc_[i]; }
  Vec3& jerk(std::size_t i) { return jerk_[i]; }
  const Vec3& jerk(std::size_t i) const { return jerk_[i]; }
  double& pot(std::size_t i) { return pot_[i]; }
  double pot(std::size_t i) const { return pot_[i]; }
  double& time(std::size_t i) { return time_[i]; }
  double time(std::size_t i) const { return time_[i]; }
  double& dt(std::size_t i) { return dt_[i]; }
  double dt(std::size_t i) const { return dt_[i]; }
  std::uint32_t id(std::size_t i) const { return id_[i]; }

  /// Overwrite a particle's identity. add() assigns sequential ids; loaders
  /// that must preserve external identities (snapshots, checkpoints) restore
  /// them with this after add().
  void set_id(std::size_t i, std::uint32_t id) { id_[i] = id; }

  // Whole-array views (for kernels and the hardware model).
  std::span<const double> masses() const { return mass_; }
  std::span<const Vec3> positions() const { return pos_; }
  std::span<const Vec3> velocities() const { return vel_; }
  std::span<const Vec3> accelerations() const { return acc_; }
  std::span<const Vec3> jerks() const { return jerk_; }
  std::span<const double> times() const { return time_; }
  std::span<const double> dts() const { return dt_; }

  /// Total mass of all particles.
  double total_mass() const {
    double m = 0.0;
    for (double mi : mass_) m += mi;
    return m;
  }

 private:
  std::vector<double> mass_;
  std::vector<Vec3> pos_, vel_, acc_, jerk_;
  std::vector<double> pot_;
  std::vector<double> time_;  ///< individual time of validity of the state
  std::vector<double> dt_;    ///< individual timestep (power of two)
  std::vector<std::uint32_t> id_;
};

}  // namespace g6::nbody
