#pragma once
/// \file blockstep.hpp
/// \brief The block individual timestep scheduler (McMillan 1986, Makino
///        1991) — the algorithm named by the paper as the key to extracting
///        parallelism from individual timesteps.
///
/// Timesteps are forced to powers of two, so at any system time the set of
/// particles due for integration ("the block") share exactly the same update
/// time and can be integrated in parallel. The scheduler maintains a binary
/// heap of (next update time, particle) pairs with lazy invalidation.

#include <cmath>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace g6::nbody {

/// Largest power of two that is <= dt_req, clamped to [dt_min, dt_max].
/// dt_max and dt_min must themselves be powers of two.
double quantize_dt(double dt_req, double dt_max, double dt_min);

/// True iff \p t is an integer multiple of \p dt (dt a power of two).
/// Powers of two are exact in binary floating point, so this is exact.
bool is_commensurate(double t, double dt);

/// Block-timestep update rule for a particle that has just been corrected at
/// time \p t_new with previous step \p dt_old and a desired (Aarseth) step
/// \p dt_req:
///  - shrinking: halve as many times as needed (always allowed);
///  - growing: at most double, and only if t_new is commensurate with 2*dt_old.
double next_block_dt(double t_new, double dt_old, double dt_req, double dt_max,
                     double dt_min);

/// True iff \p dt is a power of two (2^k for integer k, possibly negative).
bool is_power_of_two_step(double dt);

/// Min-heap scheduler over particle update times.
class BlockScheduler {
 public:
  BlockScheduler() = default;

  /// Initialise for \p n particles, all with next update time time[i]+dt[i].
  void reset(std::span<const double> times, std::span<const double> dts);

  /// Number of scheduled particles.
  std::size_t size() const { return t_next_.size(); }

  /// The earliest pending update time. Requires a non-empty schedule.
  double next_time() const;

  /// Extract the full block due at next_time() into \p block (overwritten).
  /// Returns the block time.
  double pop_block(std::vector<std::uint32_t>& block);

  /// Re-schedule particle \p i for update at \p t_next (call after its
  /// corrector step assigned a new time and dt).
  void push(std::uint32_t i, double t_next);

 private:
  struct Entry {
    double t;
    std::uint32_t idx;
    bool operator>(const Entry& o) const {
      return t > o.t || (t == o.t && idx > o.idx);
    }
  };

  void drop_stale() const;

  // Lazy heap: entries whose time no longer matches t_next_ are stale.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<double> t_next_;
};

}  // namespace g6::nbody
