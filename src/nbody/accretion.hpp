#pragma once
/// \file accretion.hpp
/// \brief Collisional accretion: physical radii, overlap detection and
///        perfect merging.
///
/// The paper's scientific context is planetary accretion — "planetesimals
/// accrete to form terrestrial and uranian planets" (§2). The SC2002 run
/// itself used purely softened gravity, but the production planetesimal
/// codes of the same group (Kokubo & Ida) merge physically colliding bodies.
/// This module provides that capability as an optional layer over the
/// integrator: radii from an internal density (with the customary
/// radius-enhancement factor used to accelerate accretion at small N),
/// O(N^2) overlap detection on a synchronised system, and momentum-
/// conserving perfect mergers.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nbody/force.hpp"
#include "nbody/integrator.hpp"
#include "nbody/particle.hpp"

namespace g6::nbody {

/// Physical-size model for planetesimals.
struct CollisionConfig {
  /// Internal density in code units (M_sun / AU^3). 2 g/cm^3 (icy bodies)
  /// is ~3.4e6 in these units.
  double density = 3.4e6;

  /// Radius enhancement factor f: radii are scaled by f to shorten the
  /// accretion timescale in small-N runs (Kokubo & Ida used f ~ a few).
  double radius_enhancement = 1.0;
};

/// Physical radius of a body of mass \p m: f * (3m / 4 pi rho)^(1/3).
double physical_radius(double mass, const CollisionConfig& cfg);

/// A detected collision (indices into the particle system, i < j).
struct Overlap {
  std::size_t i = 0;
  std::size_t j = 0;
  double separation = 0.0;  ///< |x_i - x_j| at detection
};

/// Find all overlapping pairs (separation < R_i + R_j) in a synchronised
/// system. O(N^2).
std::vector<Overlap> find_overlaps(const ParticleSystem& ps,
                                   const CollisionConfig& cfg);

/// Result of applying a set of mergers.
struct MergeReport {
  std::size_t mergers = 0;
  ParticleSystem system;  ///< the compacted post-merge system
};

/// Apply perfect mergers for the given overlaps: each connected group of
/// overlapping bodies becomes one body at its centre of mass with the summed
/// mass and conserved momentum. Particles keep the common time of \p ps.
MergeReport apply_mergers(const ParticleSystem& ps,
                          const std::vector<Overlap>& overlaps);

/// Driver that interleaves block-timestep integration with collision sweeps.
/// After every \p check_interval of simulation time the system is
/// synchronised, overlaps are merged, and the integrator/backend are rebuilt
/// on the compacted system.
class AccretionDriver {
 public:
  /// The factory builds a fresh force backend for a given softening (called
  /// after every merge sweep since particle count changes).
  using BackendFactory = std::function<std::unique_ptr<ForceBackend>(double eps)>;

  AccretionDriver(ParticleSystem initial, CollisionConfig ccfg,
                  IntegratorConfig icfg, double eps, BackendFactory factory);

  /// Evolve to \p t_end, sweeping for collisions every \p check_interval.
  void evolve(double t_end, double check_interval);

  const ParticleSystem& system() const { return ps_; }
  std::uint64_t total_mergers() const { return mergers_; }
  double current_time() const { return t_; }

  /// Mass of the largest body (the growing protoplanet).
  double largest_mass() const;

  /// The live integrator (checkpointing reads its stats/t_sys between
  /// sweeps; only valid after construction or restore()).
  const HermiteIntegrator& integrator() const { return *integ_; }

  /// Called after every collision sweep (merges applied, system coherent at
  /// the sweep time) — the only points where driver state is checkpointable,
  /// since mergers rebuild integrator and backend from scratch.
  std::function<void(const AccretionDriver&)> on_sweep;

  /// Resume a driver checkpointed at a sweep boundary: \p ps replaces the
  /// system (full Hermite state at individual times), \p t and \p mergers
  /// restore the driver counters, and the integrator is rebuilt WITHOUT
  /// initialize() — it continues from (t_sys, stats) bit-identically to a
  /// driver that never stopped.
  void restore(ParticleSystem ps, double t, std::uint64_t mergers,
               double t_sys, IntegratorStats stats);

 private:
  void rebuild();

  ParticleSystem ps_;
  CollisionConfig ccfg_;
  IntegratorConfig icfg_;
  double eps_;
  BackendFactory factory_;
  std::unique_ptr<ForceBackend> backend_;
  std::unique_ptr<HermiteIntegrator> integ_;
  double t_ = 0.0;
  std::uint64_t mergers_ = 0;
};

}  // namespace g6::nbody
