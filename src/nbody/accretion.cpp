#include "nbody/accretion.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "util/check.hpp"

namespace g6::nbody {

double physical_radius(double mass, const CollisionConfig& cfg) {
  G6_CHECK(mass > 0.0 && cfg.density > 0.0, "mass and density must be positive");
  return cfg.radius_enhancement *
         std::cbrt(3.0 * mass / (4.0 * std::numbers::pi * cfg.density));
}

std::vector<Overlap> find_overlaps(const ParticleSystem& ps,
                                   const CollisionConfig& cfg) {
  const std::size_t n = ps.size();
  std::vector<double> radius(n);
  for (std::size_t i = 0; i < n; ++i) radius[i] = physical_radius(ps.mass(i), cfg);

  std::vector<Overlap> hits;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double rsum = radius[i] + radius[j];
      const double d2 = norm2(ps.pos(j) - ps.pos(i));
      if (d2 < rsum * rsum) hits.push_back({i, j, std::sqrt(d2)});
    }
  }
  return hits;
}

MergeReport apply_mergers(const ParticleSystem& ps,
                          const std::vector<Overlap>& overlaps) {
  const std::size_t n = ps.size();
  // Union-find over the overlap graph: simultaneous multi-body contacts
  // collapse into one body.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Overlap& o : overlaps) {
    G6_CHECK(o.i < n && o.j < n && o.i < o.j, "bad overlap pair");
    parent[find(o.j)] = find(o.i);
  }

  // Accumulate mass / momentum / mass-weighted position per group root.
  std::vector<double> mass(n, 0.0);
  std::vector<Vec3> mom(n), mx(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find(i);
    mass[r] += ps.mass(i);
    mom[r] += ps.mass(i) * ps.vel(i);
    mx[r] += ps.mass(i) * ps.pos(i);
  }

  MergeReport rep;
  const double t = ps.empty() ? 0.0 : ps.time(0);
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) != i) {
      ++rep.mergers;
      continue;  // absorbed into its root
    }
    const std::size_t k = rep.system.add(mass[i], mx[i] / mass[i], mom[i] / mass[i]);
    rep.system.time(k) = t;
  }
  return rep;
}

AccretionDriver::AccretionDriver(ParticleSystem initial, CollisionConfig ccfg,
                                 IntegratorConfig icfg, double eps,
                                 BackendFactory factory)
    : ps_(std::move(initial)), ccfg_(ccfg), icfg_(icfg), eps_(eps),
      factory_(std::move(factory)) {
  G6_CHECK(static_cast<bool>(factory_), "backend factory required");
  t_ = ps_.empty() ? 0.0 : ps_.time(0);
  rebuild();
}

void AccretionDriver::rebuild() {
  backend_ = factory_(eps_);
  integ_ = std::make_unique<HermiteIntegrator>(ps_, *backend_, icfg_);
  integ_->initialize();
}

void AccretionDriver::evolve(double t_end, double check_interval) {
  G6_CHECK(check_interval > 0.0, "check interval must be positive");
  while (t_ < t_end) {
    const double t_next = std::min(t_end, t_ + check_interval);
    integ_->evolve(t_next);
    t_ = t_next;
    const auto overlaps = find_overlaps(ps_, ccfg_);
    if (!overlaps.empty()) {
      MergeReport rep = apply_mergers(ps_, overlaps);
      mergers_ += rep.mergers;
      ps_ = std::move(rep.system);
      rebuild();
    }
    if (on_sweep) on_sweep(*this);
  }
}

void AccretionDriver::restore(ParticleSystem ps, double t, std::uint64_t mergers,
                              double t_sys, IntegratorStats stats) {
  ps_ = std::move(ps);
  t_ = t;
  mergers_ = mergers;
  backend_ = factory_(eps_);
  integ_ = std::make_unique<HermiteIntegrator>(ps_, *backend_, icfg_);
  integ_->restore(t_sys, std::move(stats));
}

double AccretionDriver::largest_mass() const {
  double m = 0.0;
  for (std::size_t i = 0; i < ps_.size(); ++i) m = std::max(m, ps_.mass(i));
  return m;
}

}  // namespace g6::nbody
