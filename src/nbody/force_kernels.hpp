#pragma once
/// \file force_kernels.hpp
/// \brief Structure-of-arrays force kernels for the CPU direct-summation
///        backend (docs/PERFORMANCE.md).
///
/// The backend keeps its predicted j-particle store as seven contiguous
/// double arrays (x, y, z, vx, vy, vz, m) instead of arrays of Vec3, so the
/// inner force loop streams unit-stride and vectorizes. Six kernels share
/// that layout:
///
///   kReference — the seed's scalar loop (pairwise_force per j). The oracle.
///   kTiled     — plain-C tiled loop: per j-tile, contributions go to small
///                stack arrays (auto-vectorizable, check with -fopt-info-vec)
///                and are then accumulated in j-order. Bit-identical to
///                kReference.
///   kSimd      — explicit G6_SIMD kernel (util/simd.hpp): the contribution
///                arithmetic runs at vector width, the accumulation replays
///                in strict j-order. Bit-identical to kReference; this is the
///                default.
///   kBlocked   — the kSimd inner loop tiled over BOTH i and j to the cache
///                geometry probed at startup (simd_dispatch.hpp): each
///                L1-sized j-block is streamed once per i-block instead of
///                once per i-particle. Bit-identical to kReference (per-i
///                j-order is unchanged; only the traversal order of the
///                (i, j-block) plane changes, and each i has independent
///                accumulators).
///   kFast      — opt-in approximate kernel: double rsqrt estimate + two
///                Newton–Raphson steps, FMA contraction, vector-lane
///                accumulators. Not bit-identical (relative error ~1e-15).
///                Needs AVX-512's vrsqrt14pd; elsewhere it degrades to kSimd.
///   kMixed     — opt-in GRAPE-6-mirror kernel: j-positions quantised to an
///                int32 fixed-point grid (position differences are exact, as
///                in the hardware), float32 pair arithmetic with a hardware
///                rsqrt estimate + one Newton step, float64 fixed-order
///                accumulation in short chunks. Max relative acceleration
///                error bounded by kMixedMaxRelErr vs kReference (test- and
///                CI-enforced). Works at every ISA level incl. SSE2.
///
/// All kernels except kReference are runtime-dispatched: the same binary
/// carries scalar/SSE2/AVX2/AVX-512 instantiations and picks one at startup
/// via CPUID (see nbody/simd_dispatch.hpp, overridable with G6_SIMD_LEVEL).
///
/// Bit-identity of kTiled/kSimd/kBlocked holds because (a) every per-pair
/// expression is evaluated in the seed's association order with no FMA
/// contraction, and (b) the per-accumulator additions happen in exactly the
/// seed's j-order — at any vector width, which is what makes cross-ISA
/// dispatch invisible to results.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nbody/particle.hpp"

namespace g6::nbody {

/// Inner-kernel selector for CpuDirectBackend. Runtime-selectable so the
/// benches and conformance tests can pin any variant against the reference.
enum class CpuKernel { kReference, kTiled, kSimd, kBlocked, kFast, kMixed };

inline constexpr int kCpuKernelCount = 6;

/// Kernel requested by the G6_CPU_KERNEL environment variable
/// (reference|tiled|simd|blocked|fast|mixed); kSimd when unset. An
/// unrecognised value logs a one-shot warning naming the accepted values and
/// falls back to kSimd.
CpuKernel cpu_kernel_from_env();

/// Parse one kernel name; returns false (and leaves \p out untouched) when
/// the name is not recognised. The pure core of cpu_kernel_from_env().
bool cpu_kernel_from_name(const char* name, CpuKernel* out);

/// Display name ("reference", "tiled", "simd", "blocked", "fast", "mixed").
const char* cpu_kernel_name(CpuKernel k);

/// Documented error contracts of the approximate kernels: max |da|/|a| vs
/// kReference over any i-particle, enforced by tests/test_force_kernels.cpp
/// and bench/check_perf_floor.py across clustered/Plummer/disk systems.
///
/// kFast: rsqrt14 + two double Newton steps leaves ~1-ulp error per pair;
/// the vector-lane accumulators reassociate the sum. Bound dominated by
/// cancellation amplification, measured <= ~1e-13 in practice.
inline constexpr double kFastMaxRelErr = 1e-12;
/// kMixed: float pair arithmetic (~2^-22 after one Newton step) plus int32
/// position quantisation (grid lsb = 2^ceil(log2(max|coord|)) / 2^30, so the
/// relative position error is <= ~2^-30 of the system span; it only matters
/// for very close pairs) plus short-chunk float accumulation (<= 32 same-sign
/// adds before widening to double). Measured <= ~3e-6; bound with headroom:
inline constexpr double kMixedMaxRelErr = 2e-5;

/// The SoA predicted j-particle store.
struct SoAPredicted {
  std::vector<double> x, y, z;     ///< predicted positions
  std::vector<double> vx, vy, vz;  ///< predicted velocities
  std::vector<double> m;           ///< masses

  // Reduced-precision mirror for kMixed, rebuilt lazily from the arrays
  // above (ensure_mixed): int32 fixed-point positions on a power-of-two grid
  // (mirroring GRAPE-6's j-memory format — position *differences* are exact)
  // plus float32 velocities and masses. `mutable` because building the
  // mirror is a cache fill, not a logical mutation.
  mutable std::vector<std::int32_t> qx, qy, qz;  ///< positions / mixed_lsb
  mutable std::vector<float> fvx, fvy, fvz;      ///< float32 velocities
  mutable std::vector<float> fm3;  ///< mass / mixed_lsb^3 (exact: lsb = 2^k)
  mutable double mixed_lsb = 0.0;  ///< grid spacing of qx/qy/qz (power of 2)
  mutable bool mixed_valid = false;

  /// Build (or reuse) the reduced-precision mirror. Called by the kMixed
  /// kernel itself and, once per force sweep, by CpuDirectBackend so the
  /// parallel per-i loop never races on the fill.
  void ensure_mixed() const;

  void resize(std::size_t n) {
    x.resize(n); y.resize(n); z.resize(n);
    vx.resize(n); vy.resize(n); vz.resize(n);
    m.resize(n);
    mixed_valid = false;
  }
  std::size_t size() const { return m.size(); }
};

/// Index value meaning "no self-particle in the j-range".
inline constexpr std::size_t kNoSelf = static_cast<std::size_t>(-1);
/// 32-bit spelling of kNoSelf for the blocked kernel's self-index array.
inline constexpr std::uint32_t kNoSelf32 = static_cast<std::uint32_t>(-1);

/// The seed's scalar loop over j in [b, e) — the bit-exactness oracle. One
/// shared compiled copy (force_kernels.cpp): the per-ISA kernel TUs call it
/// for self-tiles and tails, so "the oracle" is literally one function.
void reference_force_range(const SoAPredicted& js, std::size_t b, std::size_t e,
                           const Vec3& xi, const Vec3& vi, std::size_t self,
                           double eps2, Force& f);

/// Force of all j-particles in \p js (except index \p self) on the i-particle
/// at (xi, vi), accumulated into \p out exactly like the seed loop. Routes
/// through the active ISA dispatch table (simd_dispatch.hpp).
void force_on_i(CpuKernel kernel, const SoAPredicted& js, const Vec3& xi,
                const Vec3& vi, std::size_t self, double eps2, Force& out);

/// Force on a block of \p ni i-particles (positions \p xis, velocities
/// \p vis, self-indices \p selves — kNoSelf32 for none), accumulated into
/// \p out[0..ni). For kBlocked this is the real entry point (the i×j tiling
/// needs the whole i-block); every other kernel just loops force_on_i.
void force_on_block(CpuKernel kernel, const SoAPredicted& js, const Vec3* xis,
                    const Vec3* vis, const std::uint32_t* selves, std::size_t ni,
                    double eps2, Force* out);

}  // namespace g6::nbody
