#pragma once
/// \file force_kernels.hpp
/// \brief Structure-of-arrays force kernels for the CPU direct-summation
///        backend (docs/PERFORMANCE.md).
///
/// The backend keeps its predicted j-particle store as seven contiguous
/// double arrays (x, y, z, vx, vy, vz, m) instead of arrays of Vec3, so the
/// inner force loop streams unit-stride and vectorizes. Four kernels share
/// that layout:
///
///   kReference — the seed's scalar loop (pairwise_force per j). The oracle.
///   kTiled     — plain-C tiled loop: per j-tile, contributions go to small
///                stack arrays (auto-vectorizable, check with -fopt-info-vec)
///                and are then accumulated in j-order. Bit-identical to
///                kReference.
///   kSimd      — explicit G6_SIMD kernel (util/simd.hpp): the contribution
///                arithmetic runs at vector width, the accumulation replays
///                in strict j-order. Bit-identical to kReference; this is the
///                default.
///   kFast      — opt-in approximate kernel: rsqrt estimate + two
///                Newton–Raphson steps, FMA contraction, vector-lane
///                accumulators. Not bit-identical (relative error ~1e-15);
///                mirrors the spirit of the GRAPE pipeline's shortened
///                arithmetic. Selected only via G6_CPU_KERNEL=fast.
///
/// Bit-identity of kTiled/kSimd holds because (a) every per-pair expression
/// is evaluated in the seed's association order with no FMA contraction, and
/// (b) the per-accumulator additions happen in exactly the seed's j-order.

#include <cstddef>
#include <vector>

#include "nbody/particle.hpp"

namespace g6::nbody {

/// Inner-kernel selector for CpuDirectBackend. Runtime-selectable so the
/// benches and conformance tests can pin any variant against the reference.
enum class CpuKernel { kReference, kTiled, kSimd, kFast };

/// Kernel requested by the G6_CPU_KERNEL environment variable
/// (reference|tiled|simd|fast); kSimd when unset or unrecognised.
CpuKernel cpu_kernel_from_env();

/// Display name ("reference", "tiled", "simd", "fast").
const char* cpu_kernel_name(CpuKernel k);

/// The SoA predicted j-particle store.
struct SoAPredicted {
  std::vector<double> x, y, z;     ///< predicted positions
  std::vector<double> vx, vy, vz;  ///< predicted velocities
  std::vector<double> m;           ///< masses

  void resize(std::size_t n) {
    x.resize(n); y.resize(n); z.resize(n);
    vx.resize(n); vy.resize(n); vz.resize(n);
    m.resize(n);
  }
  std::size_t size() const { return m.size(); }
};

/// Index value meaning "no self-particle in the j-range".
inline constexpr std::size_t kNoSelf = static_cast<std::size_t>(-1);

/// Force of all j-particles in \p js (except index \p self) on the i-particle
/// at (xi, vi), accumulated into \p out exactly like the seed loop.
void force_on_i(CpuKernel kernel, const SoAPredicted& js, const Vec3& xi,
                const Vec3& vi, std::size_t self, double eps2, Force& out);

}  // namespace g6::nbody
