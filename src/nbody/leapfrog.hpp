#pragma once
/// \file leapfrog.hpp
/// \brief Shared-timestep kick-drift-kick leapfrog — the baseline scheme for
///        systems whose particles share similar timescales (paper §3). Used
///        by the tree-vs-direct bench and as a sanity reference in tests.

#include <cstdint>
#include <functional>

#include "nbody/external_potential.hpp"
#include "nbody/particle.hpp"
#include "util/thread_pool.hpp"

namespace g6::nbody {

/// Acceleration-only force engine for leapfrog: fills out[i] with the
/// acceleration (and potential) on every particle of the system.
/// Implementations: direct summation (below) or the Barnes–Hut tree.
class AccelBackend {
 public:
  virtual ~AccelBackend() = default;
  virtual std::string name() const = 0;
  /// Compute acceleration + potential for all particles of \p ps.
  virtual void compute_all(const ParticleSystem& ps, std::span<Force> out) = 0;
  virtual std::uint64_t interaction_count() const = 0;
};

/// Direct-summation O(N^2) acceleration backend.
class DirectAccelBackend final : public AccelBackend {
 public:
  explicit DirectAccelBackend(double eps, g6::util::ThreadPool* pool = nullptr)
      : eps_(eps), pool_(pool) {}

  std::string name() const override { return "direct-accel"; }
  void compute_all(const ParticleSystem& ps, std::span<Force> out) override;
  std::uint64_t interaction_count() const override { return interactions_; }

 private:
  double eps_;
  g6::util::ThreadPool* pool_;
  std::uint64_t interactions_ = 0;
};

/// Fixed shared-timestep KDK leapfrog integrator.
class LeapfrogIntegrator {
 public:
  LeapfrogIntegrator(ParticleSystem& ps, AccelBackend& backend, double dt,
                     double solar_gm = 0.0);

  /// Evaluate initial accelerations (call once before stepping).
  void initialize();

  /// One KDK step of length dt.
  void step();

  /// Step until the system time reaches (at least) t_end.
  void evolve(double t_end);

  double current_time() const { return t_; }
  std::uint64_t steps() const { return steps_; }

 private:
  void apply_solar(std::span<Force> f) const;

  ParticleSystem& ps_;
  AccelBackend& backend_;
  double dt_;
  SolarPotential solar_;
  double t_ = 0.0;
  std::uint64_t steps_ = 0;
  std::vector<Force> forces_;
  bool initialized_ = false;
};

}  // namespace g6::nbody
