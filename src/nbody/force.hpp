#pragma once
/// \file force.hpp
/// \brief The pluggable force-calculation interface.
///
/// The paper's division of labour — "the PC cluster performs the time
/// integration and GRAPE-6 boards perform the force calculation" — maps onto
/// this interface: the integrator never computes gravity itself, it talks to
/// a ForceBackend. Implementations:
///   - CpuDirectBackend   (src/nbody)  : double-precision direct summation
///   - Grape6Backend      (src/grape6) : the GRAPE-6 hardware simulator
///   - ClusterBackend     (src/cluster): multi-host j-decomposition
///   - TreeBackend        (src/tree)   : Barnes–Hut baseline (§3 comparison)

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nbody/particle.hpp"
#include "obs/blockstep_record.hpp"

namespace g6::nbody {

/// Abstract gravity engine operating on a mirrored set of "j-particles".
///
/// Protocol (mirrors the real GRAPE-6 host library):
///   1. load(ps)            — write every particle into j-memory.
///   2. compute(t, ilist)   — predict all j-particles to time t and return
///                            force, jerk and potential on each i-particle.
///   3. update(indices, ps) — after the host corrects a block, refresh those
///                            particles' j-memory images.
/// Self-interaction is excluded by particle identity, not by distance.
class ForceBackend {
 public:
  virtual ~ForceBackend() = default;

  /// Human-readable backend name for bench output.
  virtual std::string name() const = 0;

  /// Load (or reload) all particles of \p ps into j-memory.
  virtual void load(const ParticleSystem& ps) = 0;

  /// Refresh the j-memory images of the listed particles from \p ps.
  virtual void update(std::span<const std::uint32_t> indices,
                      const ParticleSystem& ps) = 0;

  /// Evaluate gravity at time \p t on the particles listed in \p ilist.
  /// The i-particle states are taken from j-memory predictions (identical
  /// polynomials to what the host would send). \p out must have ilist.size()
  /// entries; out[k] receives the force on particle ilist[k].
  virtual void compute(double t, std::span<const std::uint32_t> ilist,
                       std::span<Force> out) = 0;

  /// Same as compute(), but with the i-particle phase-space states supplied
  /// explicitly (pos[k], vel[k] for particle ilist[k]) instead of predicted
  /// from j-memory. This is the entry point of iterated (time-symmetric)
  /// Hermite correctors (Kokubo, Yoshinaga & Makino 1998): the second and
  /// later corrector passes evaluate the force at the *corrected* state.
  /// Self-interaction is still excluded via the ids in \p ilist.
  virtual void compute_states(double t, std::span<const std::uint32_t> ilist,
                              std::span<const Vec3> pos, std::span<const Vec3> vel,
                              std::span<Force> out) = 0;

  /// Total particle–particle interactions evaluated so far.
  virtual std::uint64_t interaction_count() const = 0;

  /// Gravitational softening length used by this backend.
  virtual double softening() const = 0;

  /// Attach (or detach, with nullptr) a blockstep recorder. Backends that
  /// model hardware charge their phase times (predict/pipeline/comm/
  /// j-update) into it; the integrator charges the host-side phases.
  virtual void set_step_recorder(g6::obs::BlockstepRecorder* rec) {
    recorder_ = rec;
  }
  g6::obs::BlockstepRecorder* step_recorder() const { return recorder_; }

  /// True when the backend attributes its own compute()/update() time to
  /// recorder phases. False (the default) makes the integrator charge the
  /// wall time of compute() to the pipeline phase and of update() to the
  /// j-update phase.
  virtual bool records_phases() const { return false; }

  /// Opaque backend-private state for checkpoints. Backends whose force
  /// answers depend on internal history beyond the j-particle images (e.g.
  /// the P3T hybrid's epoch snapshot: tree + neighbor lists are rebuilt from
  /// positions frozen at the last rebuild time) serialize that history here
  /// so kill-and-resume reproduces the uninterrupted run bit for bit. The
  /// blob is stored verbatim in the G6CKPT1 stream (docs/CHECKPOINTING.md)
  /// and handed back through load_checkpoint_state() on resume, after the
  /// particle system has been restored and load() has been called. Stateless
  /// backends keep the defaults (empty blob, ignore on restore).
  virtual std::vector<std::uint8_t> save_checkpoint_state() const { return {}; }
  virtual void load_checkpoint_state(std::span<const std::uint8_t> blob) {
    (void)blob;
  }

 protected:
  g6::obs::BlockstepRecorder* recorder_ = nullptr;
};

}  // namespace g6::nbody
