#include "nbody/hermite6.hpp"

#include <cmath>

#include "util/check.hpp"

namespace g6::nbody {

namespace {

/// Pairwise acc/jerk/snap of a source of mass \p m at relative position
/// \p dx, relative velocity \p dv and relative acceleration \p da
/// (Nitadori & Makino 2008, eqs. 8-12, with Plummer softening).
void pair_force6(const Vec3& dx, const Vec3& dv, const Vec3& da, double m,
                 double eps2, Force6& f) {
  const double r2 = norm2(dx) + eps2;
  const double rinv2 = 1.0 / r2;
  const double rinv = std::sqrt(rinv2);
  const double mr3 = m * rinv * rinv2;

  const double alpha = dot(dx, dv) * rinv2;
  const double beta = (norm2(dv) + dot(dx, da)) * rinv2 + alpha * alpha;

  const Vec3 a = mr3 * dx;
  const Vec3 j = mr3 * dv - 3.0 * alpha * a;
  const Vec3 s = mr3 * da - 6.0 * alpha * j - 3.0 * beta * a;

  f.acc += a;
  f.jerk += j;
  f.snap += s;
  f.pot -= m * rinv;
}

}  // namespace

void compute_force6(const ParticleSystem& ps, double eps, const SolarPotential& solar,
                    std::vector<Force6>& out) {
  const std::size_t n = ps.size();
  out.assign(n, Force6{});
  const double eps2 = eps * eps;

  // Pass 1: Newtonian accelerations (mutual + solar) — needed for the
  // relative-acceleration term of the snap.
  std::vector<Vec3> acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 ai{};
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      const Vec3 dx = ps.pos(k) - ps.pos(i);
      const double r2 = norm2(dx) + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      ai += (ps.mass(k) * rinv * rinv * rinv) * dx;
    }
    if (solar.gm != 0.0) {
      const double r2 = norm2(ps.pos(i));
      const double rinv = 1.0 / std::sqrt(r2);
      ai -= (solar.gm * rinv * rinv * rinv) * ps.pos(i);
    }
    acc[i] = ai;
  }

  // Pass 2: acc/jerk/snap with the full relative accelerations.
  for (std::size_t i = 0; i < n; ++i) {
    Force6 f{};
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      pair_force6(ps.pos(k) - ps.pos(i), ps.vel(k) - ps.vel(i), acc[k] - acc[i],
                  ps.mass(k), eps2, f);
    }
    if (solar.gm != 0.0) {
      // The Sun: a fixed source at the origin (dx = -x, dv = -v, da = -a_i),
      // unsoftened.
      pair_force6(-ps.pos(i), -ps.vel(i), -acc[i], solar.gm, 0.0, f);
    }
    out[i] = f;
  }
}

Hermite6Integrator::Hermite6Integrator(ParticleSystem& ps, double dt, double eps,
                                       double solar_gm, int iterations)
    : ps_(ps), dt_(dt), eps_(eps), iterations_(iterations) {
  G6_CHECK(dt > 0.0, "timestep must be positive");
  G6_CHECK(eps >= 0.0, "softening must be non-negative");
  G6_CHECK(iterations >= 1, "need at least one corrector pass");
  solar_.gm = solar_gm;
}

void Hermite6Integrator::initialize() {
  G6_CHECK(!ps_.empty(), "cannot integrate an empty system");
  compute_force6(ps_, eps_, solar_, f0_);
  ++force_evals_;
  t_ = ps_.time(0);
  initialized_ = true;
}

void Hermite6Integrator::step() {
  G6_CHECK(initialized_, "call initialize() first");
  const std::size_t n = ps_.size();
  const double dt = dt_;

  x0_.resize(n);
  v0_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x0_[i] = ps_.pos(i);
    v0_[i] = ps_.vel(i);
  }

  // Predictor: Taylor series through the snap.
  for (std::size_t i = 0; i < n; ++i) {
    const Force6& f = f0_[i];
    ps_.pos(i) = x0_[i] + v0_[i] * dt + f.acc * (dt * dt / 2.0) +
                 f.jerk * (dt * dt * dt / 6.0) + f.snap * (dt * dt * dt * dt / 24.0);
    ps_.vel(i) = v0_[i] + f.acc * dt + f.jerk * (dt * dt / 2.0) +
                 f.snap * (dt * dt * dt / 6.0);
  }

  // Iterated corrector: evaluate at the current end state, apply the
  // two-point quintic Hermite rule, repeat.
  for (int pass = 0; pass < iterations_; ++pass) {
    compute_force6(ps_, eps_, solar_, f1_);
    ++force_evals_;
    for (std::size_t i = 0; i < n; ++i) {
      const Force6& a0 = f0_[i];
      const Force6& a1 = f1_[i];
      const Vec3 v1 = v0_[i] + (a0.acc + a1.acc) * (dt / 2.0) +
                      (a0.jerk - a1.jerk) * (dt * dt / 10.0) +
                      (a0.snap + a1.snap) * (dt * dt * dt / 120.0);
      const Vec3 x1 = x0_[i] + (v0_[i] + v1) * (dt / 2.0) +
                      (a0.acc - a1.acc) * (dt * dt / 10.0) +
                      (a0.jerk + a1.jerk) * (dt * dt * dt / 120.0);
      ps_.pos(i) = x1;
      ps_.vel(i) = v1;
    }
  }

  // Final evaluation at the accepted state seeds the next step.
  compute_force6(ps_, eps_, solar_, f0_);
  ++force_evals_;

  t_ += dt;
  ++steps_;
  for (std::size_t i = 0; i < n; ++i) {
    ps_.time(i) = t_;
    ps_.acc(i) = f0_[i].acc;
    ps_.jerk(i) = f0_[i].jerk;
    ps_.pot(i) = f0_[i].pot;
  }
}

void Hermite6Integrator::evolve(double t_end) {
  while (t_ + 0.5 * dt_ < t_end) step();
}

}  // namespace g6::nbody
