#include "nbody/leapfrog.hpp"

#include <cmath>

#include "nbody/force_direct.hpp"
#include "util/check.hpp"

namespace g6::nbody {

void DirectAccelBackend::compute_all(const ParticleSystem& ps, std::span<Force> out) {
  const std::size_t n = ps.size();
  G6_CHECK(out.size() == n, "output span size mismatch");
  const double eps2 = eps_ * eps_;
  auto body = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Force f{};
      const Vec3 xi = ps.pos(i);
      const Vec3 vi = ps.vel(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        pairwise_force(xi, vi, ps.pos(j), ps.vel(j), ps.mass(j), eps2, f);
      }
      f.jerk = {};  // leapfrog does not use the jerk
      out[i] = f;
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, body);
  } else {
    body(0, n);
  }
  interactions_ += static_cast<std::uint64_t>(n) * (n - 1);
}

LeapfrogIntegrator::LeapfrogIntegrator(ParticleSystem& ps, AccelBackend& backend,
                                       double dt, double solar_gm)
    : ps_(ps), backend_(backend), dt_(dt) {
  G6_CHECK(dt > 0.0, "leapfrog timestep must be positive");
  solar_.gm = solar_gm;
}

void LeapfrogIntegrator::apply_solar(std::span<Force> f) const {
  for (std::size_t i = 0; i < ps_.size(); ++i)
    solar_.apply(ps_.pos(i), ps_.vel(i), f[i]);
}

void LeapfrogIntegrator::initialize() {
  forces_.assign(ps_.size(), Force{});
  backend_.compute_all(ps_, forces_);
  apply_solar(forces_);
  for (std::size_t i = 0; i < ps_.size(); ++i) {
    ps_.acc(i) = forces_[i].acc;
    ps_.pot(i) = forces_[i].pot;
  }
  t_ = ps_.size() > 0 ? ps_.time(0) : 0.0;
  initialized_ = true;
}

void LeapfrogIntegrator::step() {
  G6_CHECK(initialized_, "call initialize() first");
  const double half = 0.5 * dt_;
  // Kick.
  for (std::size_t i = 0; i < ps_.size(); ++i) ps_.vel(i) += half * ps_.acc(i);
  // Drift.
  for (std::size_t i = 0; i < ps_.size(); ++i) ps_.pos(i) += dt_ * ps_.vel(i);
  // Force at the new positions.
  backend_.compute_all(ps_, forces_);
  apply_solar(forces_);
  for (std::size_t i = 0; i < ps_.size(); ++i) {
    ps_.acc(i) = forces_[i].acc;
    ps_.pot(i) = forces_[i].pot;
  }
  // Kick.
  for (std::size_t i = 0; i < ps_.size(); ++i) ps_.vel(i) += half * ps_.acc(i);
  t_ += dt_;
  ++steps_;
  for (std::size_t i = 0; i < ps_.size(); ++i) ps_.time(i) = t_;
}

void LeapfrogIntegrator::evolve(double t_end) {
  while (t_ + 0.5 * dt_ < t_end) step();
}

}  // namespace g6::nbody
