/// SSE2 rung of the dispatch ladder: 2 double / 4 float lanes, no FMA.
/// Compiled for baseline x86-64 (which includes SSE2) — see CMakeLists.txt.
#define G6_KERNEL_IMPL_NS kernels_sse2
#define G6_KERNEL_LEVEL ::g6::nbody::SimdLevel::kSse2
#include "nbody/kernels_impl.hpp"
