/// \file kernels_impl.hpp
/// \brief The force-kernel bodies, instantiated once per ISA level.
///
/// NOT a normal header: no include guard on purpose. Each per-ISA
/// translation unit (kernels_scalar.cpp, kernels_sse2.cpp, kernels_avx2.cpp,
/// kernels_avx512.cpp) defines
///
///   G6_KERNEL_IMPL_NS  — the namespace the instantiation lives in
///   G6_KERNEL_LEVEL    — the SimdLevel enumerator it implements
///   (G6_SIMD_FORCE_SCALAR, scalar TU only, before any include)
///
/// and includes this file exactly once; CMake compiles each TU with that
/// level's ISA flags (see src/nbody/CMakeLists.txt), so the same source
/// yields scalar, SSE2, AVX2+FMA and AVX-512 kernels in one binary. The
/// kernel bodies sit in an anonymous namespace (the dispatch table escapes
/// only function pointers), so nothing here can collide across TUs or be
/// substituted by the linker with a copy compiled for the wrong ISA.
///
/// Everything routed through util/simd.hpp inherits the including TU's
/// vector width; scalar self-tiles and tails call the single shared
/// reference_force_range() oracle in force_kernels.cpp.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "nbody/force_kernels.hpp"
#include "nbody/simd_dispatch.hpp"
#include "util/simd.hpp"

#if !defined(G6_KERNEL_IMPL_NS) || !defined(G6_KERNEL_LEVEL)
#error "kernels_impl.hpp must be included by a per-ISA kernel TU"
#endif

namespace g6::nbody::G6_KERNEL_IMPL_NS {
namespace {

namespace s = g6::util::simd;

/// The seven running sums of one i-particle, held in scalar locals so the
/// optimizer keeps them in registers: accumulating straight into a Force&
/// would alias (in the compiler's view) the js arrays and force a
/// load-add-store round trip per term. The add sequence is unchanged, so
/// values stay bit-identical to accumulating in the struct.
struct Sums {
  double ax, ay, az, jx, jy, jz, po;

  explicit Sums(const Force& f)
      : ax(f.acc.x), ay(f.acc.y), az(f.acc.z),
        jx(f.jerk.x), jy(f.jerk.y), jz(f.jerk.z), po(f.pot) {}

  void flush(Force& f) const {
    f.acc = {ax, ay, az};
    f.jerk = {jx, jy, jz};
    f.pot = po;
  }
};

/// Plain-C tiled kernel: the contribution loop below carries no loop-carried
/// dependence and auto-vectorizes at this TU's -march (inspect with
/// -fopt-info-vec); the ordered accumulation loop replays the seed's
/// summation order.
void force_tiled(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                 std::size_t self, double eps2, Force& f) {
  constexpr std::size_t kTile = 64;
  const std::size_t n = js.size();
  double ax[kTile], ay[kTile], az[kTile];
  double jx[kTile], jy[kTile], jz[kTile], po[kTile];
  Sums acc(f);
  for (std::size_t b = 0; b < n; b += kTile) {
    const std::size_t len = std::min(kTile, n - b);
    if (self - b < len) {  // tile holds the self-particle: scalar path
      acc.flush(f);
      reference_force_range(js, b, b + len, xi, vi, self, eps2, f);
      acc = Sums(f);
      continue;
    }
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t j = b + k;
      const double drx = js.x[j] - xi.x;
      const double dry = js.y[j] - xi.y;
      const double drz = js.z[j] - xi.z;
      const double dvx = js.vx[j] - vi.x;
      const double dvy = js.vy[j] - vi.y;
      const double dvz = js.vz[j] - vi.z;
      const double r2 = ((drx * drx + dry * dry) + drz * drz) + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv2 = rinv * rinv;
      const double mr = js.m[j] * rinv;
      const double mr3 = mr * rinv2;
      const double rv = (drx * dvx + dry * dvy) + drz * dvz;
      const double c = 3.0 * (rv * rinv2);
      ax[k] = mr3 * drx;
      ay[k] = mr3 * dry;
      az[k] = mr3 * drz;
      jx[k] = mr3 * (dvx - c * drx);
      jy[k] = mr3 * (dvy - c * dry);
      jz[k] = mr3 * (dvz - c * drz);
      po[k] = mr;
    }
    for (std::size_t k = 0; k < len; ++k) {
      acc.ax += ax[k];
      acc.ay += ay[k];
      acc.az += az[k];
      acc.jx += jx[k];
      acc.jy += jy[k];
      acc.jz += jz[k];
      acc.po -= po[k];
    }
  }
  acc.flush(f);
}

/// One W-wide block of the explicit kernel: the seven contribution vectors of
/// j-particles [j0, j0+W), computed in vector registers in the seed's
/// expression order and staged column-wise into \p b.
template <std::size_t W>
inline void simd_fill_block(const double* gx, const double* gy, const double* gz,
                            const double* gvx, const double* gvy, const double* gvz,
                            const double* gm, std::size_t j0,
                            const s::VecD xiv, const s::VecD yiv,
                            const s::VecD ziv, const s::VecD vxiv,
                            const s::VecD vyiv, const s::VecD vziv,
                            const s::VecD eps2v, const s::VecD one,
                            const s::VecD three, double (*b)[W]) {
  const s::VecD drx = s::load(gx + j0) - xiv;
  const s::VecD dry = s::load(gy + j0) - yiv;
  const s::VecD drz = s::load(gz + j0) - ziv;
  const s::VecD dvx = s::load(gvx + j0) - vxiv;
  const s::VecD dvy = s::load(gvy + j0) - vyiv;
  const s::VecD dvz = s::load(gvz + j0) - vziv;
  const s::VecD mj = s::load(gm + j0);
  const s::VecD r2 = ((drx * drx + dry * dry) + drz * drz) + eps2v;
  const s::VecD rinv = one / s::vsqrt(r2);
  const s::VecD rinv2 = rinv * rinv;
  const s::VecD mr = mj * rinv;
  const s::VecD mr3 = mr * rinv2;
  const s::VecD rv = (drx * dvx + dry * dvy) + drz * dvz;
  const s::VecD c = three * (rv * rinv2);
  s::store(b[0], mr3 * drx);
  s::store(b[1], mr3 * dry);
  s::store(b[2], mr3 * drz);
  s::store(b[3], mr3 * (dvx - c * drx));
  s::store(b[4], mr3 * (dvy - c * dry));
  s::store(b[5], mr3 * (dvz - c * drz));
  s::store(b[6], mr);
}

/// Explicit G6_SIMD kernel over j in [jb, je): per W-wide j-block the
/// contributions are computed in vector registers (the divider works on a
/// whole block at once), staged through a double-buffered stack staging
/// area, and accumulated in strict j-order one block behind the vector fill.
/// The one-block lag lets the out-of-order core run block b+1's sqrt/div
/// under block b's serial ordered-summation chain, which is the kernel's
/// other latency floor. Bit-identity is independent of [jb, je): per-i
/// contributions always land in ascending-j order, so the blocked kernel can
/// replay this over any partition of [0, n).
void simd_range(const SoAPredicted& js, std::size_t jb, std::size_t je,
                const Vec3& xi, const Vec3& vi, std::size_t self, double eps2,
                Force& f) {
  constexpr std::size_t W = s::kWidth;
  const double* const gx = js.x.data();
  const double* const gy = js.y.data();
  const double* const gz = js.z.data();
  const double* const gvx = js.vx.data();
  const double* const gvy = js.vy.data();
  const double* const gvz = js.vz.data();
  const double* const gm = js.m.data();
  const s::VecD xiv = s::broadcast(xi.x), yiv = s::broadcast(xi.y),
                ziv = s::broadcast(xi.z);
  const s::VecD vxiv = s::broadcast(vi.x), vyiv = s::broadcast(vi.y),
                vziv = s::broadcast(vi.z);
  const s::VecD eps2v = s::broadcast(eps2);
  const s::VecD one = s::broadcast(1.0);
  const s::VecD three = s::broadcast(3.0);
  alignas(64) double buf[2][7][W];
  Sums acc(f);
  int cur = 0;
  bool pending = false;  // buf[cur ^ 1] holds a filled, not-yet-summed block
  std::size_t j0 = jb;
  auto drain = [&] {
    if (!pending) return;
    double(*b)[W] = buf[cur ^ 1];
    for (std::size_t k = 0; k < W; ++k) {
      acc.ax += b[0][k];
      acc.ay += b[1][k];
      acc.az += b[2][k];
      acc.jx += b[3][k];
      acc.jy += b[4][k];
      acc.jz += b[5][k];
      acc.po -= b[6][k];
    }
    pending = false;
  };
  for (; j0 + W <= je; j0 += W) {
    if (self - j0 < W) {  // block holds the self-particle: scalar path
      drain();
      acc.flush(f);
      reference_force_range(js, j0, j0 + W, xi, vi, self, eps2, f);
      acc = Sums(f);
      continue;
    }
    simd_fill_block<W>(gx, gy, gz, gvx, gvy, gvz, gm, j0, xiv, yiv, ziv, vxiv,
                       vyiv, vziv, eps2v, one, three, buf[cur]);
#if defined(__GNUC__)
    // Keep the staging stores real. Without this barrier GCC forwards the
    // vector stores straight into the ordered-sum loads via ~50 cross-lane
    // shuffles per block, which serialize on the shuffle port and run ~3x
    // slower than store-forwarding through the stack buffer.
    asm volatile("" : "+m"(buf));
#endif
    drain();  // sum the previous block while this block's vectors retire
    pending = true;
    cur ^= 1;  // the just-filled block is now buf[cur ^ 1]
  }
  drain();
  acc.flush(f);
  reference_force_range(js, j0, je, xi, vi, self, eps2, f);
}

void force_simd(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                std::size_t self, double eps2, Force& f) {
  simd_range(js, 0, js.size(), xi, vi, self, eps2, f);
}

/// i×j cache-blocked kernel: the j-store is walked in L1-sized column blocks
/// (outer), each served to a whole i-block (inner), so every j-column is
/// streamed from memory once per i_block i-particles instead of once per
/// i-particle. Each i keeps its own accumulator and still sees its j-terms
/// in ascending order, so the result is bit-identical to force_simd — only
/// the traversal order of the (i, j-block) plane changes.
void force_blocked(const SoAPredicted& js, const Vec3* xis, const Vec3* vis,
                   const std::uint32_t* selves, std::size_t ni, double eps2,
                   const BlockGeometry& geom, Force* out) {
  const std::size_t n = js.size();
  const std::size_t ib = std::max<std::size_t>(geom.i_block, 1);
  const std::size_t jb = std::max<std::size_t>(geom.j_block, s::kWidth);
  for (std::size_t i0 = 0; i0 < ni; i0 += ib) {
    const std::size_t in = std::min(ib, ni - i0);
    for (std::size_t b = 0; b < n; b += jb) {
      const std::size_t e = std::min(n, b + jb);
      for (std::size_t k = i0; k < i0 + in; ++k) {
        const std::size_t self =
            selves[k] == kNoSelf32 ? kNoSelf : static_cast<std::size_t>(selves[k]);
        simd_range(js, b, e, xis[k], vis[k], self, eps2, out[k]);
      }
    }
  }
}

/// Opt-in approximate kernel: double reciprocal-sqrt estimate + two Newton
/// steps, FMA everywhere, vector-lane accumulators (no ordering constraint).
/// Real only where the hardware has a double rsqrt (AVX-512); elsewhere it
/// degrades to the exact kernel.
void force_fast(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                std::size_t self, double eps2, Force& f) {
  if constexpr (!s::kHasFastRsqrt) {
    force_simd(js, xi, vi, self, eps2, f);
    return;
  } else {
    constexpr std::size_t W = s::kWidth;
    const std::size_t n = js.size();
    const s::VecD xiv = s::broadcast(xi.x), yiv = s::broadcast(xi.y),
                  ziv = s::broadcast(xi.z);
    const s::VecD vxiv = s::broadcast(vi.x), vyiv = s::broadcast(vi.y),
                  vziv = s::broadcast(vi.z);
    const s::VecD eps2v = s::broadcast(eps2);
    const s::VecD half = s::broadcast(0.5);
    const s::VecD c15 = s::broadcast(1.5);
    const s::VecD three = s::broadcast(3.0);
    s::VecD accx = s::broadcast(0.0), accy = accx, accz = accx;
    s::VecD jkx = accx, jky = accx, jkz = accx, pot = accx;
    std::size_t j0 = 0;
    for (; j0 + W <= n; j0 += W) {
      if (self - j0 < W) {
        reference_force_range(js, j0, j0 + W, xi, vi, self, eps2, f);
        continue;
      }
      const s::VecD drx = s::load(js.x.data() + j0) - xiv;
      const s::VecD dry = s::load(js.y.data() + j0) - yiv;
      const s::VecD drz = s::load(js.z.data() + j0) - ziv;
      const s::VecD dvx = s::load(js.vx.data() + j0) - vxiv;
      const s::VecD dvy = s::load(js.vy.data() + j0) - vyiv;
      const s::VecD dvz = s::load(js.vz.data() + j0) - vziv;
      const s::VecD mj = s::load(js.m.data() + j0);
      const s::VecD r2 = s::fmadd(drz, drz, s::fmadd(dry, dry, s::fmadd(drx, drx, eps2v)));
      s::VecD y = s::rsqrt_approx(r2);
      const s::VecD h = half * r2;
      y = y * s::fnmadd(h * y, y, c15);  // Newton: y (1.5 - r2/2 y^2)
      y = y * s::fnmadd(h * y, y, c15);
      const s::VecD rinv2 = y * y;
      const s::VecD mr = mj * y;
      const s::VecD mr3 = mr * rinv2;
      const s::VecD rv = s::fmadd(drz, dvz, s::fmadd(dry, dvy, drx * dvx));
      const s::VecD c = three * (rv * rinv2);
      accx = s::fmadd(mr3, drx, accx);
      accy = s::fmadd(mr3, dry, accy);
      accz = s::fmadd(mr3, drz, accz);
      jkx = s::fmadd(mr3, s::fnmadd(c, drx, dvx), jkx);
      jky = s::fmadd(mr3, s::fnmadd(c, dry, dvy), jky);
      jkz = s::fmadd(mr3, s::fnmadd(c, drz, dvz), jkz);
      pot = pot - mr;
    }
    reference_force_range(js, j0, n, xi, vi, self, eps2, f);
    f.acc.x += s::reduce_add(accx);
    f.acc.y += s::reduce_add(accy);
    f.acc.z += s::reduce_add(accz);
    f.jerk.x += s::reduce_add(jkx);
    f.jerk.y += s::reduce_add(jky);
    f.jerk.z += s::reduce_add(jkz);
    f.pot += s::reduce_add(pot);
  }
}

/// Number of float j-blocks accumulated in float32 before the running sums
/// are widened into the per-lane double accumulators. Bounds the same-sign
/// float summation chain (error <= kMixedChunk adds of float epsilon each,
/// folded into the kMixedMaxRelErr contract) while keeping the widening cost
/// off the per-pair critical path (~1/kMixedChunk of it per j-block).
inline constexpr int kMixedChunk = 32;

/// Fixed-order pairwise (log-depth) sum of N doubles. Deterministic — the
/// tree shape depends only on N — but unlike a left fold the partial sums
/// are independent, so the adds pipeline instead of serialising on the
/// 4-cycle FP-add latency (N serial adds per accumulator per i-particle was
/// a measurable share of kMixed's per-i cost at small n).
template <std::size_t N>
inline double pairwise_sum(const double* v) {
  if constexpr (N == 1) {
    return v[0];
  } else {
    return pairwise_sum<N / 2>(v) + pairwise_sum<N - N / 2>(v + N / 2);
  }
}

/// GRAPE-6-mirror mixed-precision kernel. The j-store's reduced-precision
/// image (SoAPredicted::ensure_mixed) holds positions as int32 multiples of
/// a power-of-two lsb — like the hardware's fixed-point j-memory — so the
/// position *difference* below is exact integer arithmetic and converting it
/// to float32 keeps full relative precision for close pairs (where a plain
/// float32 absolute position would have cancelled catastrophically). The
/// pair arithmetic is float32 with a hardware rsqrt estimate + one Newton
/// step (the hardware's shortened arithmetic), and the accumulation is
/// float64 fixed-order (the hardware's wide accumulators), reached via short
/// float32 chunks. Self-blocks and tails use the exact scalar oracle.
void force_mixed(const SoAPredicted& js, const Vec3& xi, const Vec3& vi,
                 std::size_t self, double eps2, Force& f) {
  constexpr std::size_t W = s::kWidthF;
  const std::size_t n = js.size();
  js.ensure_mixed();
  const double inv = 1.0 / js.mixed_lsb;
  // Quantise the i-particle onto the j-grid. An i far outside the j-cloud
  // (|coord| beyond twice the span) would overflow the int32 grid; fall back
  // to the exact kernel for that (pathological) i instead of wrapping. An
  // unsoftened potential would likewise break the self-lane trick below
  // (r2 = 0 makes the rsqrt estimate infinite).
  const double sx = xi.x * inv, sy = xi.y * inv, sz = xi.z * inv;
  constexpr double kQMax = 2147483000.0;
  if (!(std::fabs(sx) < kQMax && std::fabs(sy) < kQMax && std::fabs(sz) < kQMax) ||
      !(eps2 > 0.0)) {
    force_simd(js, xi, vi, self, eps2, f);
    return;
  }
  const s::VecI qxi = s::broadcasti(static_cast<std::int32_t>(std::lrint(sx)));
  const s::VecI qyi = s::broadcasti(static_cast<std::int32_t>(std::lrint(sy)));
  const s::VecI qzi = s::broadcasti(static_cast<std::int32_t>(std::lrint(sz)));
  // The i-side quantisation rounds xi to the grid; account for it exactly by
  // using the rounded i-position nowhere else (dr comes only from the grid).
  //
  // The whole pair computation runs in grid units — dr stays the raw int32
  // difference converted to float, never rescaled by the lsb. With the
  // masses pre-divided by lsb^3 (ensure_mixed) the per-pair terms come out
  // as acc/lsb, jerk exactly, and pot/lsb^2; the two rescalings are applied
  // once per i-particle to the final double sums, and because the lsb is a
  // power of two they are exact. Saves three vector multiplies per j-block.
  const s::VecF vxiv = s::broadcastf(static_cast<float>(vi.x));
  const s::VecF vyiv = s::broadcastf(static_cast<float>(vi.y));
  const s::VecF vziv = s::broadcastf(static_cast<float>(vi.z));
  const s::VecF eps2v = s::broadcastf(static_cast<float>(eps2 * inv * inv));
  const s::VecF half = s::broadcastf(0.5f);
  const s::VecF c15 = s::broadcastf(1.5f);
  const s::VecF three = s::broadcastf(3.0f);
  const std::int32_t* const gqx = js.qx.data();
  const std::int32_t* const gqy = js.qy.data();
  const std::int32_t* const gqz = js.qz.data();
  const float* const gvx = js.fvx.data();
  const float* const gvy = js.fvy.data();
  const float* const gvz = js.fvz.data();
  const float* const gm = js.fm3.data();
  // Seven float32 running sums, widened into per-lane double accumulators
  // every kMixedChunk j-blocks (fixed order: chunk by chunk, lane by lane).
  // The float sums live in chunk-local named variables — an array indexed
  // from a widening helper keeps them pinned in memory (each j-block then
  // pays a load+fma+store round trip per accumulator, measured ~1.5x slower).
  // The vector loop runs over the WHOLE vectorised region with no self test:
  // the i-particle quantises onto the same grid cell as its own j-image
  // (identical lrint) and its float velocity converts identically, so the
  // self lane's dr and dv are exactly zero and it contributes exactly zero
  // acc and jerk. The one spurious term — its softened pot, fm3*y(eps2g) —
  // is recomputed lane-identically below and subtracted. This removes both
  // the per-block branch and a ~50x-costlier scalar detour block per i.
  // (Callers pass the particle's own predicted state as (xi, vi) whenever
  // self is a real index, which is what makes the zero-lane argument hold.)
  double dacc[7][W] = {};
  std::size_t j0 = 0;
  const std::size_t nw = n - n % W;  // vectorised region; tail is scalar
  while (j0 < nw) {
    const std::size_t chunk_end = std::min(nw, j0 + kMixedChunk * W);
    s::VecF a0{}, a1{}, a2{}, a3{}, a4{}, a5{}, a6{};
    for (; j0 < chunk_end; j0 += W) {
      const s::VecF drx = s::to_float(s::loadi(gqx + j0) - qxi);
      const s::VecF dry = s::to_float(s::loadi(gqy + j0) - qyi);
      const s::VecF drz = s::to_float(s::loadi(gqz + j0) - qzi);
      const s::VecF dvx = s::loadf(gvx + j0) - vxiv;
      const s::VecF dvy = s::loadf(gvy + j0) - vyiv;
      const s::VecF dvz = s::loadf(gvz + j0) - vziv;
      const s::VecF mj = s::loadf(gm + j0);
      const s::VecF r2 = s::fmaddf(drz, drz, s::fmaddf(dry, dry, s::fmaddf(drx, drx, eps2v)));
      s::VecF y = s::rsqrt_approx_f(r2);
      const s::VecF h = half * r2;
      y = y * s::fnmaddf(h * y, y, c15);  // one Newton step saturates float32
      const s::VecF rinv2 = y * y;
      const s::VecF mr = mj * y;
      const s::VecF mr3 = mr * rinv2;
      const s::VecF rv = s::fmaddf(drz, dvz, s::fmaddf(dry, dvy, drx * dvx));
      const s::VecF c = three * (rv * rinv2);
      a0 = s::fmaddf(mr3, drx, a0);
      a1 = s::fmaddf(mr3, dry, a1);
      a2 = s::fmaddf(mr3, drz, a2);
      a3 = s::fmaddf(mr3, s::fnmaddf(c, drx, dvx), a3);
      a4 = s::fmaddf(mr3, s::fnmaddf(c, dry, dvy), a4);
      a5 = s::fmaddf(mr3, s::fnmaddf(c, drz, dvz), a5);
      a6 = a6 + mr;  // potential accumulates positive, negated below
    }
    alignas(64) float tmp[7][W];
    s::storef(tmp[0], a0);
    s::storef(tmp[1], a1);
    s::storef(tmp[2], a2);
    s::storef(tmp[3], a3);
    s::storef(tmp[4], a4);
    s::storef(tmp[5], a5);
    s::storef(tmp[6], a6);
    for (int cmp = 0; cmp < 7; ++cmp)
      for (std::size_t k = 0; k < W; ++k)
        dacc[cmp][k] += static_cast<double>(tmp[cmp][k]);
  }
  reference_force_range(js, j0, n, xi, vi, self, eps2, f);
  // Final fixed-order lane reduction (pairwise) of the double accumulators,
  // then the exact power-of-two undo of the grid units: the sums carry
  // acc/lsb, jerk as-is, and pot/lsb^2.
  const double lsb = js.mixed_lsb;
  double pot_g = pairwise_sum<W>(dacc[6]);
  if (self < nw) {
    // Remove the self lane's spurious softened-pot term, replaying the exact
    // float sequence the vector lane ran on r2 = eps2g.
    s::VecF y = s::rsqrt_approx_f(eps2v);
    y = y * s::fnmaddf((half * eps2v) * y, y, c15);
    alignas(64) float ylane[W];
    s::storef(ylane, y);
    pot_g -= static_cast<double>(js.fm3[self] * ylane[0]);
  }
  f.acc.x += pairwise_sum<W>(dacc[0]) * lsb;
  f.acc.y += pairwise_sum<W>(dacc[1]) * lsb;
  f.acc.z += pairwise_sum<W>(dacc[2]) * lsb;
  f.jerk.x += pairwise_sum<W>(dacc[3]);
  f.jerk.y += pairwise_sum<W>(dacc[4]);
  f.jerk.z += pairwise_sum<W>(dacc[5]);
  f.pot -= pot_g * (lsb * lsb);
}

/// Two-i-row variant of the kMixed inner loop: both i-particles consume each
/// j-block's seven loads (positions, velocities, mass) once, so the loop does
/// the same vector arithmetic per (i, j) pair but half the memory traffic —
/// the j-stream is the only memory the loop touches, and it was the largest
/// non-arithmetic cost left in the one-row kernel. Everything numerical is
/// the one-row kernel run twice in lockstep: same chunking, same per-i
/// accumulation order, so results are bit-identical to force_mixed per i.
/// Returns false (without touching \p out) when either i-particle needs the
/// out-of-grid / unsoftened fallback — the caller then runs the one-row
/// kernel, which handles the fallback per i.
bool force_mixed_pair(const SoAPredicted& js, const Vec3* xis, const Vec3* vis,
                      const std::uint32_t* selves, double eps2, Force* out) {
  constexpr std::size_t W = s::kWidthF;
  const std::size_t n = js.size();
  js.ensure_mixed();
  const double inv = 1.0 / js.mixed_lsb;
  constexpr double kQMax = 2147483000.0;
  double sq[2][3];
  for (int r = 0; r < 2; ++r) {
    sq[r][0] = xis[r].x * inv;
    sq[r][1] = xis[r].y * inv;
    sq[r][2] = xis[r].z * inv;
    if (!(std::fabs(sq[r][0]) < kQMax && std::fabs(sq[r][1]) < kQMax &&
          std::fabs(sq[r][2]) < kQMax))
      return false;
  }
  if (!(eps2 > 0.0)) return false;
  const s::VecI qxi0 = s::broadcasti(static_cast<std::int32_t>(std::lrint(sq[0][0])));
  const s::VecI qyi0 = s::broadcasti(static_cast<std::int32_t>(std::lrint(sq[0][1])));
  const s::VecI qzi0 = s::broadcasti(static_cast<std::int32_t>(std::lrint(sq[0][2])));
  const s::VecI qxi1 = s::broadcasti(static_cast<std::int32_t>(std::lrint(sq[1][0])));
  const s::VecI qyi1 = s::broadcasti(static_cast<std::int32_t>(std::lrint(sq[1][1])));
  const s::VecI qzi1 = s::broadcasti(static_cast<std::int32_t>(std::lrint(sq[1][2])));
  const s::VecF vxi0 = s::broadcastf(static_cast<float>(vis[0].x));
  const s::VecF vyi0 = s::broadcastf(static_cast<float>(vis[0].y));
  const s::VecF vzi0 = s::broadcastf(static_cast<float>(vis[0].z));
  const s::VecF vxi1 = s::broadcastf(static_cast<float>(vis[1].x));
  const s::VecF vyi1 = s::broadcastf(static_cast<float>(vis[1].y));
  const s::VecF vzi1 = s::broadcastf(static_cast<float>(vis[1].z));
  const s::VecF eps2v = s::broadcastf(static_cast<float>(eps2 * inv * inv));
  const s::VecF half = s::broadcastf(0.5f);
  const s::VecF c15 = s::broadcastf(1.5f);
  const s::VecF three = s::broadcastf(3.0f);
  const std::int32_t* const gqx = js.qx.data();
  const std::int32_t* const gqy = js.qy.data();
  const std::int32_t* const gqz = js.qz.data();
  const float* const gvx = js.fvx.data();
  const float* const gvy = js.fvy.data();
  const float* const gvz = js.fvz.data();
  const float* const gm = js.fm3.data();
  double dacc0[7][W] = {};
  double dacc1[7][W] = {};
  std::size_t j0 = 0;
  const std::size_t nw = n - n % W;
  while (j0 < nw) {
    const std::size_t chunk_end = std::min(nw, j0 + kMixedChunk * W);
    s::VecF a0{}, a1{}, a2{}, a3{}, a4{}, a5{}, a6{};
    s::VecF b0{}, b1{}, b2{}, b3{}, b4{}, b5{}, b6{};
    for (; j0 < chunk_end; j0 += W) {
      const s::VecI jqx = s::loadi(gqx + j0);
      const s::VecI jqy = s::loadi(gqy + j0);
      const s::VecI jqz = s::loadi(gqz + j0);
      const s::VecF jvx = s::loadf(gvx + j0);
      const s::VecF jvy = s::loadf(gvy + j0);
      const s::VecF jvz = s::loadf(gvz + j0);
      const s::VecF mj = s::loadf(gm + j0);
// One i-row of the pair body — textually the force_mixed inner block with the
// j loads hoisted out. A macro (not a lambda) so the accumulators stay plain
// named locals: capturing them by reference pins them to memory (see the
// force_mixed comment), costing a load+fma+store round trip per j-block.
#define G6_MIXED_ROW(QXI, QYI, QZI, VXI, VYI, VZI, A0, A1, A2, A3, A4, A5, A6) \
  {                                                                            \
    const s::VecF drx = s::to_float(jqx - QXI);                                \
    const s::VecF dry = s::to_float(jqy - QYI);                                \
    const s::VecF drz = s::to_float(jqz - QZI);                                \
    const s::VecF dvx = jvx - VXI;                                             \
    const s::VecF dvy = jvy - VYI;                                             \
    const s::VecF dvz = jvz - VZI;                                             \
    const s::VecF r2 =                                                         \
        s::fmaddf(drz, drz, s::fmaddf(dry, dry, s::fmaddf(drx, drx, eps2v))); \
    s::VecF y = s::rsqrt_approx_f(r2);                                         \
    const s::VecF h = half * r2;                                               \
    y = y * s::fnmaddf(h * y, y, c15);                                         \
    const s::VecF rinv2 = y * y;                                               \
    const s::VecF mr = mj * y;                                                 \
    const s::VecF mr3 = mr * rinv2;                                            \
    const s::VecF rv = s::fmaddf(drz, dvz, s::fmaddf(dry, dvy, drx * dvx));    \
    const s::VecF c = three * (rv * rinv2);                                    \
    A0 = s::fmaddf(mr3, drx, A0);                                              \
    A1 = s::fmaddf(mr3, dry, A1);                                              \
    A2 = s::fmaddf(mr3, drz, A2);                                              \
    A3 = s::fmaddf(mr3, s::fnmaddf(c, drx, dvx), A3);                          \
    A4 = s::fmaddf(mr3, s::fnmaddf(c, dry, dvy), A4);                          \
    A5 = s::fmaddf(mr3, s::fnmaddf(c, drz, dvz), A5);                          \
    A6 = A6 + mr;                                                              \
  }
      G6_MIXED_ROW(qxi0, qyi0, qzi0, vxi0, vyi0, vzi0, a0, a1, a2, a3, a4, a5, a6)
      G6_MIXED_ROW(qxi1, qyi1, qzi1, vxi1, vyi1, vzi1, b0, b1, b2, b3, b4, b5, b6)
#undef G6_MIXED_ROW
    }
    alignas(64) float tmp[14][W];
    s::storef(tmp[0], a0);
    s::storef(tmp[1], a1);
    s::storef(tmp[2], a2);
    s::storef(tmp[3], a3);
    s::storef(tmp[4], a4);
    s::storef(tmp[5], a5);
    s::storef(tmp[6], a6);
    s::storef(tmp[7], b0);
    s::storef(tmp[8], b1);
    s::storef(tmp[9], b2);
    s::storef(tmp[10], b3);
    s::storef(tmp[11], b4);
    s::storef(tmp[12], b5);
    s::storef(tmp[13], b6);
    for (int cmp = 0; cmp < 7; ++cmp)
      for (std::size_t k = 0; k < W; ++k) {
        dacc0[cmp][k] += static_cast<double>(tmp[cmp][k]);
        dacc1[cmp][k] += static_cast<double>(tmp[7 + cmp][k]);
      }
  }
  const double lsb = js.mixed_lsb;
  const double(*daccs[2])[W] = {dacc0, dacc1};
  for (int r = 0; r < 2; ++r) {
    const std::size_t self =
        selves[r] == kNoSelf32 ? kNoSelf : static_cast<std::size_t>(selves[r]);
    Force& f = out[r];
    reference_force_range(js, j0, n, xis[r], vis[r], self, eps2, f);
    const double(*dacc)[W] = daccs[r];
    double pot_g = pairwise_sum<W>(dacc[6]);
    if (self < nw) {
      s::VecF y = s::rsqrt_approx_f(eps2v);
      y = y * s::fnmaddf((half * eps2v) * y, y, c15);
      alignas(64) float ylane[W];
      s::storef(ylane, y);
      pot_g -= static_cast<double>(js.fm3[self] * ylane[0]);
    }
    f.acc.x += pairwise_sum<W>(dacc[0]) * lsb;
    f.acc.y += pairwise_sum<W>(dacc[1]) * lsb;
    f.acc.z += pairwise_sum<W>(dacc[2]) * lsb;
    f.jerk.x += pairwise_sum<W>(dacc[3]);
    f.jerk.y += pairwise_sum<W>(dacc[4]);
    f.jerk.z += pairwise_sum<W>(dacc[5]);
    f.pot -= pot_g * (lsb * lsb);
  }
  return true;
}

/// kMixed over a block of i-particles: pairs of i-rows share the j-stream
/// (force_mixed_pair); the odd tail and any row needing the exact fallback
/// drop to the one-row kernel. This is the entry force_on_block routes
/// CpuKernel::kMixed through — the backend's per-sweep i-blocks all take it.
void force_mixed_block(const SoAPredicted& js, const Vec3* xis, const Vec3* vis,
                       const std::uint32_t* selves, std::size_t ni, double eps2,
                       const BlockGeometry& /*geom*/, Force* out) {
  std::size_t k = 0;
  for (; k + 1 < ni; k += 2) {
    if (force_mixed_pair(js, xis + k, vis + k, selves + k, eps2, out + k))
      continue;
    for (int r = 0; r < 2; ++r) {
      const std::size_t self = selves[k + r] == kNoSelf32
                                   ? kNoSelf
                                   : static_cast<std::size_t>(selves[k + r]);
      force_mixed(js, xis[k + r], vis[k + r], self, eps2, out[k + r]);
    }
  }
  for (; k < ni; ++k) {
    const std::size_t self =
        selves[k] == kNoSelf32 ? kNoSelf : static_cast<std::size_t>(selves[k]);
    force_mixed(js, xis[k], vis[k], self, eps2, out[k]);
  }
}

}  // namespace

const KernelTable& table() {
  static const KernelTable t = [] {
    KernelTable kt;
    kt.level = G6_KERNEL_LEVEL;
    kt.name = simd_level_name(G6_KERNEL_LEVEL);
    kt.width = s::kWidth;
    kt.width_f = s::kWidthF;
    kt.has_fast_rsqrt = s::kHasFastRsqrt;
    kt.tiled = &force_tiled;
    kt.simd = &force_simd;
    kt.fast = &force_fast;
    kt.mixed = &force_mixed;
    kt.mixed_block = &force_mixed_block;
    kt.blocked = &force_blocked;
    return kt;
  }();
  return t;
}

}  // namespace g6::nbody::G6_KERNEL_IMPL_NS
