#include "cluster/cluster_backend.hpp"

#include <algorithm>
#include <cmath>

#include "nbody/hermite.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace g6::cluster {

using g6::nbody::ParticleSystem;

ClusterBackend::ClusterBackend(int n_hosts, HostMode mode, FormatSpec fmt,
                               double eps, LinkSpec ethernet,
                               g6::util::ThreadPool* pool)
    : fmt_(fmt), eps_(eps), mode_(mode),
      pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(eps >= 0.0, "softening must be non-negative");
  sys_ = std::make_unique<ParallelHostSystem>(n_hosts, mode, fmt, eps, ethernet,
                                              pool_);
}

void ClusterBackend::set_fault_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  sys_->set_fault_injector(injector);
}

void ClusterBackend::set_transport_options(bool aggregated, bool deferred,
                                           bool overlap) {
  aggregated_ = aggregated;
  deferred_ = deferred;
  overlap_ = overlap;
  sys_->set_aggregation(aggregated_);
  sys_->set_deferred_updates(deferred_);
  sys_->set_overlap(overlap_);
}

std::string ClusterBackend::name() const {
  return std::string("cluster/") + host_mode_name(mode_);
}

JParticle ClusterBackend::format_j(std::uint32_t i, const ParticleSystem& ps) const {
  return g6::hw::make_j_particle(i, ps.mass(i), ps.time(i), ps.pos(i), ps.vel(i),
                                 ps.acc(i), ps.jerk(i), fmt_);
}

void ClusterBackend::load(const ParticleSystem& ps) {
  const std::size_t n = ps.size();
  std::vector<JParticle> js(n);
  t0_.resize(n);
  x0_.resize(n);
  v0_.resize(n);
  a0_.resize(n);
  j0_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i] = format_j(static_cast<std::uint32_t>(i), ps);
    t0_[i] = ps.time(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  // Rebuild the host system so a re-load starts from empty j-stores; the
  // attached injector (if any) must survive the rebuild.
  sys_ = std::make_unique<ParallelHostSystem>(sys_->hosts(), mode_, fmt_, eps_,
                                              sys_->transport().link(), pool_);
  sys_->set_fault_injector(injector_);
  sys_->set_aggregation(aggregated_);
  sys_->set_deferred_updates(deferred_);
  sys_->set_overlap(overlap_);
  sys_->load(js);
}

void ClusterBackend::update(std::span<const std::uint32_t> indices,
                            const ParticleSystem& ps) {
  std::vector<JParticle> corrected;
  corrected.reserve(indices.size());
  for (std::uint32_t i : indices) {
    G6_CHECK(i < t0_.size(), "update index out of range");
    corrected.push_back(format_j(i, ps));
    t0_[i] = ps.time(i);
    x0_[i] = ps.pos(i);
    v0_[i] = ps.vel(i);
    a0_[i] = ps.acc(i);
    j0_[i] = ps.jerk(i);
  }
  G6_TRACE_SPAN_CAT("j-update", "cluster");
  const double link_before = sys_->transport().total_stats().modeled_seconds;
  sys_->update(corrected);
  if (recorder_ != nullptr) {
    recorder_->add(g6::obs::Phase::kJUpdate,
                   sys_->transport().total_stats().modeled_seconds - link_before);
  }
}

void ClusterBackend::compute(double t, std::span<const std::uint32_t> ilist,
                             std::span<g6::nbody::Force> out) {
  std::vector<g6::util::Vec3> pos(ilist.size()), vel(ilist.size());
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    const std::uint32_t i = ilist[k];
    G6_CHECK(i < t0_.size(), "i-particle index out of range");
    const auto pred =
        g6::nbody::hermite_predict(x0_[i], v0_[i], a0_[i], j0_[i], t - t0_[i]);
    pos[k] = pred.pos;
    vel[k] = pred.vel;
  }
  compute_states(t, ilist, pos, vel, out);
}

void ClusterBackend::compute_states(double t, std::span<const std::uint32_t> ilist,
                                    std::span<const g6::util::Vec3> pos,
                                    std::span<const g6::util::Vec3> vel,
                                    std::span<g6::nbody::Force> out) {
  G6_CHECK(out.size() == ilist.size() && pos.size() == ilist.size() &&
               vel.size() == ilist.size(),
           "i-state span size mismatch");
  batch_.resize(ilist.size());
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    G6_CHECK(ilist[k] < t0_.size(), "i-particle index out of range");
    batch_[k] = g6::hw::make_i_particle(ilist[k], pos[k], vel[k], fmt_);
  }
  {
    G6_TRACE_SPAN_CAT("compute", "cluster");
    const double link_before = sys_->transport().total_stats().modeled_seconds;
    const double hidden_before = sys_->net_stats().overlap_saved_seconds;
    g6::util::Timer timer;
    sys_->compute(t, batch_, accum_);
    if (recorder_ != nullptr) {
      const double link =
          sys_->transport().total_stats().modeled_seconds - link_before;
      // A deferred update flush lands at compute entry: its link time belongs
      // to the j-update phase. Collective legs that flew under the overlap
      // pipeline's compute barrier are hidden in the overlapped timeline and
      // are not charged to the communication phases.
      const double flush = sys_->last_flush_seconds();
      const double hidden = sys_->net_stats().overlap_saved_seconds - hidden_before;
      const double comm = std::max(0.0, link - flush - hidden);
      recorder_->add(g6::obs::Phase::kPipeline, timer.seconds());
      if (flush > 0.0) recorder_->add(g6::obs::Phase::kJUpdate, flush);
      recorder_->add(g6::obs::Phase::kIComm, 0.5 * comm);
      recorder_->add(g6::obs::Phase::kResultComm, 0.5 * comm);
    }
    if (metrics_ != nullptr) publish_net_metrics(sys_->net_stats(), *metrics_);
  }
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    out[k].acc = accum_[k].acc.to_vec3();
    out[k].jerk = accum_[k].jerk.to_vec3();
    out[k].pot = accum_[k].pot.to_double();
    // Last-line detection: corruption that slipped past CRC/self-test would
    // surface here as a non-finite acceleration.
    if (!std::isfinite(out[k].acc.x) || !std::isfinite(out[k].acc.y) ||
        !std::isfinite(out[k].acc.z) || !std::isfinite(out[k].pot)) {
      if (injector_ != nullptr)
        injector_->stats().range_guard_trips.fetch_add(1, std::memory_order_relaxed);
      g6::util::raise("non-finite acceleration returned for i-particle " +
                      std::to_string(ilist[k]));
    }
  }
  interactions_ += ilist.size() * t0_.size();
}

}  // namespace g6::cluster
