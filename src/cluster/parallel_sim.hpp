#pragma once
/// \file parallel_sim.hpp
/// \brief Functional simulation of the three multi-host organisations the
///        paper discusses (§4.3):
///
///   kNaive       (figure 3) — every host keeps a full particle replica on
///                 its own GRAPE; after every step all corrected particles
///                 must be exchanged between all hosts over Ethernet. The
///                 communication volume does not shrink with host count.
///   kHardwareNet (figures 4–5) — j-space is divided across hosts; the
///                 GRAPE network boards broadcast i-particles and reduce
///                 partial forces in hardware. Hosts exchange no particle
///                 data at all ("they still have to synchronize at the
///                 beginning of each timestep, but no further communication
///                 is necessary").
///   kMatrix2D    (figure 6) — hosts form an r x c matrix; one row acts as
///                 real hosts and the rest emulate network boards, with
///                 i-broadcast and force-reduction travelling over Ethernet
///                 along rows and columns.
///
/// All three modes compute bit-identical forces (fixed-point accumulation is
/// exact under any summation order); what differs — and what the benches
/// measure — is where the bytes flow: the Transport (Ethernet) counters vs
/// the hardware (PCI/LVDS) counters.
///
/// The simulated hosts step concurrently, like the real cluster: every
/// compute() is organised as barrier-separated phases where the embarrass-
/// ingly parallel part — each host running its software GRAPE over its own
/// j-store — fans out over a ThreadPool, while the Transport exchanges (the
/// modeled wire) stay on the driving thread between barriers. Fixed-point
/// merging keeps the result bit-identical to the serial host loop at any
/// thread count.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/aggregator.hpp"
#include "cluster/transport.hpp"
#include "grape6/pipeline.hpp"
#include "nbody/force.hpp"
#include "util/thread_pool.hpp"

namespace g6::cluster {

using g6::hw::ForceAccumulator;
using g6::hw::FormatSpec;
using g6::hw::IParticle;
using g6::hw::JParticle;

/// Host organisation (paper §4.3).
enum class HostMode { kNaive, kHardwareNet, kMatrix2D };

const char* host_mode_name(HostMode mode);

/// Bytes moved over the GRAPE hardware paths (PCI + LVDS), as opposed to
/// host-to-host Ethernet which the Transport counts.
struct HardwareBytes {
  std::uint64_t pci = 0;
  std::uint64_t lvds = 0;
};

/// One simulated host: its j-store (replica or slice) plus its software
/// GRAPE (the pipeline functional model applied to the local j-particles).
class SimHost {
 public:
  SimHost(int rank, FormatSpec fmt) : rank_(rank), fmt_(fmt) {}

  int rank() const { return rank_; }
  std::size_t j_count() const { return jstore_.size(); }
  const std::vector<JParticle>& jstore() const { return jstore_; }

  /// Insert/overwrite the image of global particle \p gid.
  void write_j(std::uint32_t gid, const JParticle& p);
  bool has_j(std::uint32_t gid) const;
  const JParticle& read_j(std::uint32_t gid) const;

  /// Compute this host's partial forces on the i-batch from its local
  /// j-store (predicting to time t), in exact fixed-point accumulators.
  void partial_forces(double t, const std::vector<IParticle>& i_batch, double eps2,
                      std::vector<ForceAccumulator>& out) const;

 private:
  int rank_;
  FormatSpec fmt_;
  std::vector<JParticle> jstore_;
  std::vector<std::int64_t> index_;  ///< gid -> local slot (-1 when absent)
  /// Predicted-j scratch reused across partial_forces calls (grow-only). One
  /// host is stepped by at most one worker at a time, so no synchronisation.
  mutable std::vector<g6::hw::JPredicted> pred_;
};

/// The multi-host force engine.
class ParallelHostSystem {
 public:
  /// \p n_hosts total simulated hosts. For kMatrix2D, n_hosts must be a
  /// perfect square and the first row are the "real" hosts. \p pool steps
  /// the hosts concurrently (nullptr = the process-wide shared pool).
  ParallelHostSystem(int n_hosts, HostMode mode, FormatSpec fmt, double eps,
                     LinkSpec ethernet = {}, g6::util::ThreadPool* pool = nullptr);

  int hosts() const { return static_cast<int>(hosts_.size()); }
  HostMode mode() const { return mode_; }

  /// Number of hosts that perform time integration (all of them, except in
  /// matrix mode where it is one row).
  int real_hosts() const;

  /// Which real host integrates (owns) global particle \p gid.
  int owner_of(std::uint32_t gid) const;

  /// Load all particles (distributes / replicates according to the mode).
  void load(std::span<const JParticle> particles);

  /// Propagate corrected particles to every j-image that holds them,
  /// moving bytes the way the mode prescribes.
  void update(std::span<const JParticle> particles);

  /// Compute total forces on the i-batch at time \p t. out[k] is the exact
  /// fixed-point total for i_batch[k] — identical across modes.
  void compute(double t, const std::vector<IParticle>& i_batch,
               std::vector<ForceAccumulator>& out);

  const Transport& transport() const { return *transport_; }
  Transport& transport() { return *transport_; }
  const HardwareBytes& hardware_bytes() const { return hw_bytes_; }

  /// Aggregated Ethernet transport (default on): j-update records bound for
  /// the same destination coalesce into per-destination frames (capacity +
  /// step-boundary flushes, destination-id flush order) and the matrix
  /// collective legs ride the same frame format. Turning it off restores the
  /// one-message-per-record wire of PR 3; forces are bit-identical either way.
  void set_aggregation(bool on) { aggregate_ = on; }
  bool aggregation() const { return aggregate_; }

  /// Defer the step-boundary flush of staged j-updates to the next compute()
  /// entry: the frames are modeled as in flight during the host's integration
  /// work and are guaranteed delivered before any force is evaluated (and
  /// before host-drop events fire). Requires aggregation.
  void set_deferred_updates(bool on) { deferred_ = on; }
  bool deferred_updates() const { return deferred_; }

  /// Matrix-mode compute/comm overlap: the i-batch is split into two blocks
  /// double-buffered through the column collectives, so the broadcast of
  /// block k+1 and the reduction of block k-1 are in flight on the shared
  /// ThreadPool while every host computes block k. All transport operations
  /// stay totally ordered inside one comm task, so fault injection and wire
  /// content remain deterministic at any thread count. No-op for the naive
  /// and hardware-network modes (no Ethernet inside compute).
  void set_overlap(bool on) { overlap_ = on; }
  bool overlap() const { return overlap_; }

  /// Flush staged aggregated j-updates now. Runs automatically at the end of
  /// update() (unless deferred) and at compute() entry; callers only need it
  /// to force a boundary mid-step.
  void flush_updates();

  /// Aggregation counters (the g6.net.* metrics).
  const NetStats& net_stats() const { return agg_->stats(); }
  NetStats& net_stats() { return agg_->stats(); }

  /// Modeled link seconds charged by the most recent update flush (what a
  /// deferred flush hides under the host's integration window).
  double last_flush_seconds() const { return last_flush_seconds_; }

  /// Total Ethernet bytes sent by all hosts so far.
  std::uint64_t ethernet_bytes() const;

  /// Attach (or detach with nullptr) a fault injector. Forwarded to the
  /// Transport; host-drop events fire at each compute() entry (the serial
  /// driver point), and exchanges gain retry/resend recovery. While an
  /// injector is attached the driver keeps a shadow of every loaded
  /// j-particle so a dead host's images can be re-replicated.
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() const { return injector_; }

  bool host_alive(int h) const { return alive_[static_cast<std::size_t>(h)] != 0; }
  int alive_host_count() const;

  /// Kill host \p h (host 0 is the driver and cannot die): its j-images are
  /// re-replicated onto surviving hosts from the shadow and its integration
  /// ownership remaps over the alive real hosts. Requires an attached
  /// injector (the shadow) — normally driven by a kHostDrop plan event.
  void drop_host(int h);

 private:
  void compute_hardware_net(double t, const std::vector<IParticle>& i_batch,
                            std::vector<ForceAccumulator>& out);
  void compute_naive(double t, const std::vector<IParticle>& i_batch,
                     std::vector<ForceAccumulator>& out);
  void compute_matrix(double t, const std::vector<IParticle>& i_batch,
                      std::vector<ForceAccumulator>& out);
  /// The double-buffered two-block pipeline behind set_overlap(true).
  void compute_matrix_overlap(double t, const std::vector<IParticle>& i_batch,
                              std::vector<ForceAccumulator>& out);

  /// Aggregated update() path: stage records instead of sending per particle.
  void update_aggregated(std::span<const JParticle> particles);
  /// PR 3 wire: one message per record per hop.
  void update_per_record(std::span<const JParticle> particles);

  /// Sink for direct (src -> dst) update frames: reliable exchange + apply
  /// every j-update record at the destination host.
  MessageAggregator::Sink update_sink();
  /// Apply the records addressed to \p host; returns the frame of records
  /// still to forward (empty when all were delivered). \p records tracks the
  /// remaining count.
  std::vector<std::byte> deliver_matrix_frame(int host,
                                              const std::vector<std::byte>& frame,
                                              std::size_t& records);
  /// Send one staged matrix update frame down \p col: enter at the column
  /// root when the owner sits in another column, then store-and-forward hop
  /// by hop, each alive host extracting its own records.
  void route_matrix_update_frame(int owner, int col, FrameBuilder& fb);
  /// Messages the per-record wire would need for owner -> target (baseline
  /// for the messages-saved counter).
  std::uint64_t matrix_update_hops(int owner, int target) const;
  void flush_matrix_updates();
  bool has_pending_updates() const;
  double total_modeled_seconds() const;

  /// Column reduction of one i-block from per-parity partial buffers
  /// (overlap pipeline phase 3b). Returns the per-column totals.
  std::vector<std::vector<ForceAccumulator>> reduce_block(int parity,
                                                          std::size_t block_size);
  /// One collective leg: under aggregation the payload rides as a framed
  /// record (returned unwrapped), otherwise it goes raw — the PR 3 wire.
  Message exchange_leg(int src, int dst, int tag, const std::vector<std::byte>& raw,
                       RecordKind kind);

  int grid_side() const;  ///< matrix mode: sqrt(n_hosts)

  /// Barrier-separated parallel phase: every alive host in [0, n) runs its
  /// software GRAPE on \p batch into host_partial_[h]. Returns after all
  /// hosts finished (the BSP barrier).
  void parallel_partials(double t, const std::vector<IParticle>& batch,
                         std::size_t n_hosts_active);

  /// Reliable send+recv of one BSP message: retries with bounded backoff on
  /// a downed link and resends on drop/CRC-corrupt deliveries, charging the
  /// recovery time to the model. With no faults this is exactly one send and
  /// one receive. Throws when the retry budget is exhausted.
  Message exchange(int src, int dst, int tag, const std::vector<std::byte>& payload);

  /// Matrix mode: the host currently holding gid's j-image.
  int matrix_holder(std::uint32_t gid) const;
  /// Matrix mode: first alive host of column \p col (-1 if the column died).
  int col_root(int col) const;
  /// First alive host in the dead host's column (matrix) or overall.
  int replacement_host(int dead) const;

  HostMode mode_;
  FormatSpec fmt_;
  double eps2_;
  g6::util::ThreadPool* pool_;
  std::vector<SimHost> hosts_;
  std::unique_ptr<Transport> transport_;
  HardwareBytes hw_bytes_;
  std::size_t n_particles_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  std::vector<char> alive_;       ///< per-host liveness (1 = alive)
  std::vector<int> alive_real_;   ///< alive hosts among [0, real_hosts)
  /// Driver-side shadow of every loaded j-particle (indexed by gid), kept
  /// only while an injector is attached; the re-replication source when a
  /// host drops.
  std::vector<JParticle> shadow_;
  std::vector<char> shadow_valid_;
  /// Per-host partial-force buffers, persistent across compute() calls so
  /// the hot path does not reallocate (grow-only, value-reset in place).
  std::vector<std::vector<ForceAccumulator>> host_partial_;
  std::vector<std::vector<IParticle>> host_batch_;        ///< naive mode i-slices
  std::vector<std::vector<std::size_t>> host_batch_idx_;  ///< slice -> batch index

  // --- aggregated transport state ---
  bool aggregate_ = true;
  bool deferred_ = false;
  bool overlap_ = false;
  std::unique_ptr<MessageAggregator> agg_;  ///< direct (src, dst) staging + NetStats
  std::vector<FrameBuilder> matrix_stage_;  ///< matrix buckets: owner * side + col
  double last_flush_seconds_ = 0.0;
  /// Per-parity partial buffers of the overlap pipeline: the comm task
  /// reduces parity k while the hosts fill parity 1-k.
  std::array<std::vector<std::vector<ForceAccumulator>>, 2> host_partial_ovl_;
};

/// Serialize a JParticle / accumulator batch into transport payloads.
std::vector<std::byte> pack_j(const JParticle& p);
JParticle unpack_j(const std::vector<std::byte>& buf, std::size_t& offset);

}  // namespace g6::cluster
