#pragma once
/// \file collectives.hpp
/// \brief Collective operations over the host Transport — the message
///        patterns the paper's 2-D host matrix (figure 6) executes in
///        software to emulate the network boards: broadcast of i-particles,
///        all-gather of block membership, and tree reduction of partial
///        forces. Built from point-to-point sends so the Transport's byte
///        and time accounting reflects the real traffic.

#include <vector>

#include "cluster/transport.hpp"
#include "grape6/g6_types.hpp"

namespace g6::cluster {

/// Binomial-tree broadcast of \p payload from \p root to every rank.
/// Returns the payload as received by each rank (index = rank). Total bytes
/// on the wire: (ranks-1) * payload size; modeled critical path:
/// ceil(log2(ranks)) link transfers.
std::vector<std::vector<std::byte>> tree_broadcast(
    Transport& transport, int root, const std::vector<std::byte>& payload,
    int tag);

/// Ring all-gather: every rank contributes inputs[rank]; every rank ends
/// with the concatenation (in rank order). Returns the per-rank results
/// (identical contents, one per rank).
std::vector<std::vector<std::byte>> ring_all_gather(
    Transport& transport, const std::vector<std::vector<std::byte>>& inputs,
    int tag);

/// Binomial-tree reduction of per-rank force-accumulator batches to \p root.
/// Fixed-point merging makes the result independent of the tree shape.
std::vector<g6::hw::ForceAccumulator> tree_reduce(
    Transport& transport, int root,
    std::vector<std::vector<g6::hw::ForceAccumulator>> batches,
    const g6::hw::FormatSpec& fmt, int tag);

}  // namespace g6::cluster
