#include "cluster/transport.hpp"

#include <cstring>

namespace g6::cluster {

Transport::Transport(int n_ranks, LinkSpec link) : n_ranks_(n_ranks), link_(link) {
  G6_CHECK(n_ranks > 0, "transport needs at least one rank");
  queues_.resize(static_cast<std::size_t>(n_ranks) * n_ranks);
  failed_.assign(static_cast<std::size_t>(n_ranks) * n_ranks, false);
  stats_.resize(static_cast<std::size_t>(n_ranks));
}

std::size_t Transport::link_index(int src, int dst) const {
  G6_CHECK(src >= 0 && src < n_ranks_ && dst >= 0 && dst < n_ranks_,
           "rank out of range");
  return static_cast<std::size_t>(src) * n_ranks_ + dst;
}

void Transport::send(int src, int dst, int tag, std::vector<std::byte> payload) {
  const std::size_t li = link_index(src, dst);
  G6_CHECK(!failed_[li], "link " + std::to_string(src) + "->" + std::to_string(dst) +
                             " has failed");
  auto& st = stats_[static_cast<std::size_t>(src)];
  st.bytes_sent += payload.size();
  st.messages_sent += 1;
  st.modeled_seconds += link_.time(payload.size());
  stats_[static_cast<std::size_t>(dst)].bytes_received += payload.size();
  queues_[static_cast<std::size_t>(dst) * n_ranks_ + src].push_back(
      Message{src, tag, std::move(payload)});
}

Message Transport::recv(int dst, int src, int tag) {
  auto& q = queues_[link_index(dst, src) /* dst*n+src */];
  G6_CHECK(!q.empty(), "no pending message from " + std::to_string(src) + " to " +
                           std::to_string(dst));
  G6_CHECK(q.front().tag == tag, "message tag mismatch (protocol error)");
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::size_t Transport::pending(int dst) const {
  std::size_t n = 0;
  for (int src = 0; src < n_ranks_; ++src)
    n += queues_[static_cast<std::size_t>(dst) * n_ranks_ + src].size();
  return n;
}

void Transport::fail_link(int src, int dst) { failed_[link_index(src, dst)] = true; }
void Transport::restore_link(int src, int dst) { failed_[link_index(src, dst)] = false; }

const TransportStats& Transport::stats(int rank) const {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

double Transport::charge(int rank, std::size_t bytes) {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  const double t = link_.time(bytes);
  stats_[static_cast<std::size_t>(rank)].modeled_seconds += t;
  return t;
}

}  // namespace g6::cluster
