#include "cluster/transport.hpp"

#include <cstring>

#include "util/crc.hpp"

namespace g6::cluster {

const char* send_status_name(SendStatus s) {
  switch (s) {
    case SendStatus::kOk: return "ok";
    case SendStatus::kLinkDown: return "link-down";
  }
  return "?";
}

const char* recv_status_name(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kEmpty: return "empty";
    case RecvStatus::kTagMismatch: return "tag-mismatch";
    case RecvStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

Transport::Transport(int n_ranks, LinkSpec link) : n_ranks_(n_ranks), link_(link) {
  G6_CHECK(n_ranks > 0, "transport needs at least one rank");
  queues_.resize(static_cast<std::size_t>(n_ranks) * n_ranks);
  failed_.assign(static_cast<std::size_t>(n_ranks) * n_ranks, false);
  fail_window_.assign(static_cast<std::size_t>(n_ranks) * n_ranks, 0);
  stats_.resize(static_cast<std::size_t>(n_ranks));
}

std::size_t Transport::link_index(int src, int dst) const {
  G6_CHECK(src >= 0 && src < n_ranks_ && dst >= 0 && dst < n_ranks_,
           "rank out of range");
  return static_cast<std::size_t>(src) * n_ranks_ + dst;
}

bool Transport::apply_event(const fault::FaultEvent& event, int src, int dst,
                            std::vector<std::byte>& payload) {
  auto& stats = injector_->stats();
  stats.injected[static_cast<int>(event.kind)].fetch_add(1, std::memory_order_relaxed);
  switch (event.kind) {
    case fault::FaultKind::kLinkDrop:
      return true;  // message lost in flight
    case fault::FaultKind::kLinkCorrupt:
      fault::flip_bit(payload.data(), payload.size(), event.bit);
      return false;
    case fault::FaultKind::kLinkDelay:
      // Extra in-flight latency, charged to the sender's model.
      stats_[static_cast<std::size_t>(src)].modeled_seconds +=
          static_cast<double>(event.param) * 1e-6;
      return false;
    case fault::FaultKind::kLinkFail: {
      // Arm a link-down window on the event's target link (which need not be
      // the link of the current message).
      const int fs = event.a >= 0 ? event.a : src;
      const int fd = event.b >= 0 ? event.b : dst;
      fail_link(fs, fd, event.param);
      return false;
    }
    default:
      g6::util::raise("non-link fault event routed to the link domain");
  }
  return false;
}

SendStatus Transport::send(int src, int dst, int tag, std::vector<std::byte> payload) {
  const std::size_t li = link_index(src, dst);

  const bool armed = injector_ != nullptr && injector_->armed();
  bool framed = false;
  if (armed) {
    // CRC-32 frame the payload before the in-flight corruption hook so a
    // flipped bit (anywhere in data or trailer) is caught at the receiver.
    const std::uint32_t crc = g6::util::crc32(payload.data(), payload.size());
    append_pod(payload, crc);
    framed = true;
  }

  bool drop = false;
  if (armed) {
    for (const fault::FaultEvent& event : injector_->link_op())
      drop = apply_event(event, src, dst, payload) || drop;
  }

  if (failed_[li]) {
    // One failed attempt counts against a transient window; the link resets
    // itself once the window is exhausted.
    if (fail_window_[li] > 0 && --fail_window_[li] == 0) failed_[li] = false;
    return SendStatus::kLinkDown;
  }

  auto& st = stats_[static_cast<std::size_t>(src)];
  st.bytes_sent += payload.size();
  st.messages_sent += 1;
  st.modeled_seconds += link_.time(payload.size());
  // A message dropped in flight still costs the sender wire time, but the
  // receiver never sees the bytes — don't count them as delivered.
  if (!drop) {
    stats_[static_cast<std::size_t>(dst)].bytes_received += payload.size();
    queues_[static_cast<std::size_t>(dst) * n_ranks_ + src].push_back(
        Message{src, tag, framed, std::move(payload)});
  }
  return SendStatus::kOk;
}

RecvStatus Transport::try_recv(int dst, int src, int tag, Message& out) {
  auto& q = queues_[link_index(dst, src) /* dst*n+src */];
  if (q.empty()) return RecvStatus::kEmpty;
  if (q.front().tag != tag) return RecvStatus::kTagMismatch;
  Message m = std::move(q.front());
  q.pop_front();
  if (m.framed) {
    G6_CHECK(m.payload.size() >= sizeof(std::uint32_t), "framed message too short");
    std::size_t off = m.payload.size() - sizeof(std::uint32_t);
    const auto stored = read_pod<std::uint32_t>(m.payload, off);
    m.payload.resize(m.payload.size() - sizeof(std::uint32_t));
    const std::uint32_t actual = g6::util::crc32(m.payload.data(), m.payload.size());
    if (stored != actual) {
      if (injector_ != nullptr)
        injector_->stats().crc_payload_mismatches.fetch_add(1,
                                                            std::memory_order_relaxed);
      return RecvStatus::kCorrupt;  // consumed; caller should arrange a resend
    }
    m.framed = false;
  }
  out = std::move(m);
  return RecvStatus::kOk;
}

Message Transport::recv(int dst, int src, int tag) {
  Message m;
  const RecvStatus status = try_recv(dst, src, tag, m);
  G6_CHECK(status == RecvStatus::kOk,
           std::string("recv from ") + std::to_string(src) + " to " +
               std::to_string(dst) + " failed: " + recv_status_name(status));
  return m;
}

std::size_t Transport::pending(int dst) const {
  std::size_t n = 0;
  for (int src = 0; src < n_ranks_; ++src)
    n += queues_[static_cast<std::size_t>(dst) * n_ranks_ + src].size();
  return n;
}

void Transport::fail_link(int src, int dst, std::uint64_t window) {
  const std::size_t li = link_index(src, dst);
  failed_[li] = true;
  fail_window_[li] = window;
}

void Transport::restore_link(int src, int dst) {
  const std::size_t li = link_index(src, dst);
  failed_[li] = false;
  fail_window_[li] = 0;
}

bool Transport::link_failed(int src, int dst) const {
  return failed_[link_index(src, dst)];
}

const TransportStats& Transport::stats(int rank) const {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

double Transport::charge(int rank, std::size_t bytes) {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  const double t = link_.time(bytes);
  stats_[static_cast<std::size_t>(rank)].modeled_seconds += t;
  return t;
}

void Transport::charge_seconds(int rank, double seconds) {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  stats_[static_cast<std::size_t>(rank)].modeled_seconds += seconds;
}

TransportStats Transport::total_stats() const {
  TransportStats total;
  for (const TransportStats& st : stats_) {
    total.bytes_sent += st.bytes_sent;
    total.bytes_received += st.bytes_received;
    total.messages_sent += st.messages_sent;
    total.modeled_seconds += st.modeled_seconds;
  }
  return total;
}

void publish_metrics(const Transport& transport, g6::obs::MetricsRegistry& registry) {
  const TransportStats total = transport.total_stats();
  registry.counter("g6.cluster.bytes_sent").set(total.bytes_sent);
  registry.counter("g6.cluster.bytes_received").set(total.bytes_received);
  registry.counter("g6.cluster.messages_sent").set(total.messages_sent);
  registry.gauge("g6.cluster.modeled_link_seconds").set(total.modeled_seconds);
}

}  // namespace g6::cluster
