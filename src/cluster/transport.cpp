#include "cluster/transport.hpp"

#include <cstring>

namespace g6::cluster {

Transport::Transport(int n_ranks, LinkSpec link) : n_ranks_(n_ranks), link_(link) {
  G6_CHECK(n_ranks > 0, "transport needs at least one rank");
  queues_.resize(static_cast<std::size_t>(n_ranks) * n_ranks);
  failed_.assign(static_cast<std::size_t>(n_ranks) * n_ranks, false);
  stats_.resize(static_cast<std::size_t>(n_ranks));
}

std::size_t Transport::link_index(int src, int dst) const {
  G6_CHECK(src >= 0 && src < n_ranks_ && dst >= 0 && dst < n_ranks_,
           "rank out of range");
  return static_cast<std::size_t>(src) * n_ranks_ + dst;
}

void Transport::send(int src, int dst, int tag, std::vector<std::byte> payload) {
  const std::size_t li = link_index(src, dst);
  G6_CHECK(!failed_[li], "link " + std::to_string(src) + "->" + std::to_string(dst) +
                             " has failed");
  auto& st = stats_[static_cast<std::size_t>(src)];
  st.bytes_sent += payload.size();
  st.messages_sent += 1;
  st.modeled_seconds += link_.time(payload.size());
  stats_[static_cast<std::size_t>(dst)].bytes_received += payload.size();
  queues_[static_cast<std::size_t>(dst) * n_ranks_ + src].push_back(
      Message{src, tag, std::move(payload)});
}

Message Transport::recv(int dst, int src, int tag) {
  auto& q = queues_[link_index(dst, src) /* dst*n+src */];
  G6_CHECK(!q.empty(), "no pending message from " + std::to_string(src) + " to " +
                           std::to_string(dst));
  G6_CHECK(q.front().tag == tag, "message tag mismatch (protocol error)");
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::size_t Transport::pending(int dst) const {
  std::size_t n = 0;
  for (int src = 0; src < n_ranks_; ++src)
    n += queues_[static_cast<std::size_t>(dst) * n_ranks_ + src].size();
  return n;
}

void Transport::fail_link(int src, int dst) { failed_[link_index(src, dst)] = true; }
void Transport::restore_link(int src, int dst) { failed_[link_index(src, dst)] = false; }

const TransportStats& Transport::stats(int rank) const {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

double Transport::charge(int rank, std::size_t bytes) {
  G6_CHECK(rank >= 0 && rank < n_ranks_, "rank out of range");
  const double t = link_.time(bytes);
  stats_[static_cast<std::size_t>(rank)].modeled_seconds += t;
  return t;
}

TransportStats Transport::total_stats() const {
  TransportStats total;
  for (const TransportStats& st : stats_) {
    total.bytes_sent += st.bytes_sent;
    total.bytes_received += st.bytes_received;
    total.messages_sent += st.messages_sent;
    total.modeled_seconds += st.modeled_seconds;
  }
  return total;
}

void publish_metrics(const Transport& transport, g6::obs::MetricsRegistry& registry) {
  const TransportStats total = transport.total_stats();
  registry.counter("g6.cluster.bytes_sent").set(total.bytes_sent);
  registry.counter("g6.cluster.bytes_received").set(total.bytes_received);
  registry.counter("g6.cluster.messages_sent").set(total.messages_sent);
  registry.gauge("g6.cluster.modeled_link_seconds").set(total.modeled_seconds);
}

}  // namespace g6::cluster
