#pragma once
/// \file transport.hpp
/// \brief In-process message-passing substrate standing in for the paper's
///        physical interconnects (PCI, LVDS board links, Gigabit Ethernet).
///
/// The parallel-host simulation is bulk-synchronous, so the transport is a
/// deterministic mailbox fabric: FIFO queues per (src, dst) pair with
/// per-link byte counters and a bandwidth/latency cost model.
///
/// Reliability layer: send() returns a typed SendStatus instead of throwing
/// on a downed link, links can fail transiently (a bounded window of failed
/// attempts) or permanently, and — with a fault::FaultInjector attached —
/// payloads are framed with a CRC-32 trailer so in-flight corruption is
/// detected at try_recv() rather than folded into the physics. All injection
/// decisions happen inside send() on the driving thread (the BSP schedule
/// serializes sends), so fault sequences are deterministic at any thread
/// count. With no injector armed every hook is one pointer test.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <type_traits>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::cluster {

/// Bandwidth/latency description of one link class.
struct LinkSpec {
  double bytes_per_sec = 125.0e6;  ///< GbE default
  double latency_sec = 60.0e-6;

  double time(std::size_t bytes) const {
    return latency_sec + static_cast<double>(bytes) / bytes_per_sec;
  }
};

/// A message in flight (opaque payload + size used for cost accounting).
struct Message {
  int src = 0;
  int tag = 0;
  bool framed = false;  ///< payload carries a CRC-32 trailer
  std::vector<std::byte> payload;
};

/// Result of a send attempt. A downed link is the only error the *sender*
/// can observe; drops and corruption happen silently in flight and surface
/// at the receiver (kEmpty / kCorrupt from try_recv).
enum class SendStatus {
  kOk = 0,
  kLinkDown,  ///< link failed (transient window or permanent); retry or reroute
};

/// Result of a non-throwing receive.
enum class RecvStatus {
  kOk = 0,
  kEmpty,        ///< nothing pending from (src, tag) — e.g. message dropped
  kTagMismatch,  ///< head-of-queue tag differs (protocol error; msg left queued)
  kCorrupt,      ///< CRC mismatch — message consumed, caller should trigger resend
};

const char* send_status_name(SendStatus s);
const char* recv_status_name(RecvStatus s);

/// Per-rank transport statistics.
struct TransportStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  double modeled_seconds = 0.0;  ///< accumulated link time charged to the rank
};

/// Deterministic mailbox transport between \p n_ranks simulated hosts.
class Transport {
 public:
  Transport(int n_ranks, LinkSpec link);

  int ranks() const { return n_ranks_; }
  const LinkSpec& link() const { return link_; }

  /// Attach (or detach with nullptr) a fault injector. While an armed
  /// injector is attached, each send polls the link fault domain and
  /// payloads are CRC-framed.
  void set_fault_injector(fault::FaultInjector* injector) { injector_ = injector; }
  fault::FaultInjector* fault_injector() const { return injector_; }

  /// Enqueue a message from \p src to \p dst. Returns kLinkDown (without
  /// enqueuing) when the link is failed — one failed attempt is counted
  /// against a transient failure window. Charges the sender the modeled link
  /// time for every attempt that reaches the wire.
  [[nodiscard]] SendStatus send(int src, int dst, int tag,
                                std::vector<std::byte> payload);

  /// Dequeue the oldest message for \p dst from \p src with \p tag.
  /// Throws if none is pending, on tag mismatch, or on CRC mismatch — use
  /// try_recv for the recoverable paths.
  Message recv(int dst, int src, int tag);

  /// Non-throwing receive: kOk fills \p out (CRC verified and stripped when
  /// framed); kEmpty when nothing is pending; kCorrupt when the frame CRC
  /// failed (the corrupt message is consumed so a resend can replace it).
  [[nodiscard]] RecvStatus try_recv(int dst, int src, int tag, Message& out);

  /// Number of pending messages for \p dst (any source).
  std::size_t pending(int dst) const;

  /// Fail the (src -> dst) link. \p window > 0 makes the failure transient:
  /// the link auto-restores after \p window failed send attempts (modelling
  /// a link reset); window == 0 fails it permanently until restore_link.
  void fail_link(int src, int dst, std::uint64_t window = 0);
  /// Restore a failed link.
  void restore_link(int src, int dst);
  /// Is the (src -> dst) link currently down?
  bool link_failed(int src, int dst) const;

  const TransportStats& stats(int rank) const;

  /// Sum of the per-rank statistics over the whole fabric.
  TransportStats total_stats() const;

  /// Convenience cost helpers (no data movement): charge a broadcast /
  /// all-gather pattern to the model only.
  double charge(int rank, std::size_t bytes);
  /// Charge raw modeled seconds (retry backoff, recovery work) to a rank.
  void charge_seconds(int rank, double seconds);

 private:
  std::size_t link_index(int src, int dst) const;
  /// Apply one link-domain fault event in the context of the current send.
  /// Returns true when the current message must be dropped.
  bool apply_event(const fault::FaultEvent& event, int src, int dst,
                   std::vector<std::byte>& payload);

  int n_ranks_;
  LinkSpec link_;
  std::vector<std::deque<Message>> queues_;  ///< indexed dst * n + src
  std::vector<bool> failed_;                 ///< indexed src * n + dst
  std::vector<std::uint64_t> fail_window_;   ///< remaining failed attempts; 0 = permanent
  std::vector<TransportStats> stats_;
  fault::FaultInjector* injector_ = nullptr;
};

/// Publish the fabric-wide transport counters into a metrics registry under
/// `g6.cluster.*` (docs/OBSERVABILITY.md naming convention).
void publish_metrics(const Transport& transport, g6::obs::MetricsRegistry& registry);

/// Serialize helpers: POD in/out of byte vectors.
template <typename T>
void append_pod(std::vector<std::byte>& buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::byte>& buf, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  G6_CHECK(offset + sizeof(T) <= buf.size(), "message payload truncated");
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace g6::cluster
