#pragma once
/// \file transport.hpp
/// \brief In-process message-passing substrate standing in for the paper's
///        physical interconnects (PCI, LVDS board links, Gigabit Ethernet).
///
/// The parallel-host simulation is bulk-synchronous, so the transport is a
/// deterministic mailbox fabric: FIFO queues per (src, dst) pair with
/// per-link byte counters and a bandwidth/latency cost model. Link failure
/// injection lets tests exercise the error paths.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::cluster {

/// Bandwidth/latency description of one link class.
struct LinkSpec {
  double bytes_per_sec = 125.0e6;  ///< GbE default
  double latency_sec = 60.0e-6;

  double time(std::size_t bytes) const {
    return latency_sec + static_cast<double>(bytes) / bytes_per_sec;
  }
};

/// A message in flight (opaque payload + size used for cost accounting).
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-rank transport statistics.
struct TransportStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  double modeled_seconds = 0.0;  ///< accumulated link time charged to the rank
};

/// Deterministic mailbox transport between \p n_ranks simulated hosts.
class Transport {
 public:
  Transport(int n_ranks, LinkSpec link);

  int ranks() const { return n_ranks_; }
  const LinkSpec& link() const { return link_; }

  /// Enqueue a message from \p src to \p dst. Throws g6::util::Error if the
  /// link has been failed. Charges the sender the modeled link time.
  void send(int src, int dst, int tag, std::vector<std::byte> payload);

  /// Dequeue the oldest message for \p dst from \p src with \p tag.
  /// Throws if none is pending (the BSP schedule guarantees arrival order).
  Message recv(int dst, int src, int tag);

  /// Number of pending messages for \p dst (any source).
  std::size_t pending(int dst) const;

  /// Mark the (src -> dst) link as failed; subsequent sends throw.
  void fail_link(int src, int dst);
  /// Restore a failed link.
  void restore_link(int src, int dst);

  const TransportStats& stats(int rank) const;

  /// Sum of the per-rank statistics over the whole fabric.
  TransportStats total_stats() const;

  /// Convenience cost helpers (no data movement): charge a broadcast /
  /// all-gather pattern to the model only.
  double charge(int rank, std::size_t bytes);

 private:
  std::size_t link_index(int src, int dst) const;

  int n_ranks_;
  LinkSpec link_;
  std::vector<std::deque<Message>> queues_;  ///< indexed dst * n + src
  std::vector<bool> failed_;                 ///< indexed src * n + dst
  std::vector<TransportStats> stats_;
};

/// Publish the fabric-wide transport counters into a metrics registry under
/// `g6.cluster.*` (docs/OBSERVABILITY.md naming convention).
void publish_metrics(const Transport& transport, g6::obs::MetricsRegistry& registry);

/// Serialize helpers: POD in/out of byte vectors.
template <typename T>
void append_pod(std::vector<std::byte>& buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::byte>& buf, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  G6_CHECK(offset + sizeof(T) <= buf.size(), "message payload truncated");
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace g6::cluster
