#pragma once
/// \file cluster_backend.hpp
/// \brief ClusterBackend — the multi-host simulation as a ForceBackend, so
///        the integrator can run the paper's algorithm over any of the three
///        host organisations of §4.3 and the benches can account the real
///        message traffic of a full dynamical integration.
///
/// Forces are bit-identical across host modes (fixed-point accumulation), so
/// the same trajectory is produced by every organisation — only the byte
/// counters differ. That is precisely the paper's argument for the network
/// boards: the organisation changes the communication pattern, not the
/// physics.

#include <memory>
#include <vector>

#include "cluster/parallel_sim.hpp"
#include "nbody/force.hpp"

namespace g6::cluster {

/// ForceBackend over ParallelHostSystem.
class ClusterBackend final : public g6::nbody::ForceBackend {
 public:
  /// \p pool steps the simulated hosts concurrently (nullptr = the
  /// process-wide shared pool); share it with the integrator.
  ClusterBackend(int n_hosts, HostMode mode, FormatSpec fmt, double eps,
                 LinkSpec ethernet = {}, g6::util::ThreadPool* pool = nullptr);

  std::string name() const override;
  void load(const g6::nbody::ParticleSystem& ps) override;
  void update(std::span<const std::uint32_t> indices,
              const g6::nbody::ParticleSystem& ps) override;
  void compute(double t, std::span<const std::uint32_t> ilist,
               std::span<g6::nbody::Force> out) override;
  void compute_states(double t, std::span<const std::uint32_t> ilist,
                      std::span<const g6::util::Vec3> pos,
                      std::span<const g6::util::Vec3> vel,
                      std::span<g6::nbody::Force> out) override;
  std::uint64_t interaction_count() const override { return interactions_; }
  double softening() const override { return eps_; }

  /// The cluster backend charges its own phases: host partial-force wall
  /// time to the pipeline phase and the transport's modeled link time to the
  /// communication phases (split evenly between the i-particle and result
  /// directions — the BSP exchange is symmetric).
  bool records_phases() const override { return true; }

  ParallelHostSystem& system() { return *sys_; }
  const ParallelHostSystem& system() const { return *sys_; }

  /// Attach (or detach with nullptr) a fault injector; survives the host-
  /// system rebuild load() performs. Also arms the NaN/overflow guard
  /// accounting on returned accelerations.
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() const { return injector_; }

  /// Transport tuning, preserved across the load() rebuild. \p aggregated
  /// coalesces j-updates into per-destination frames (default on);
  /// \p deferred stages the update flush until the next compute entry, where
  /// its modeled link time is charged to the j-update phase instead of the
  /// update call; \p overlap double-buffers the matrix collectives so their
  /// legs fly while hosts compute, with the hidden link time subtracted from
  /// the recorded communication phases.
  void set_transport_options(bool aggregated, bool deferred, bool overlap);

  /// Publish the transport's g6.net.* counters into \p registry after every
  /// force computation (nullptr detaches — the default). A monitored run
  /// attaches the global registry so the live /metrics endpoint exposes the
  /// aggregation behavior; see docs/OBSERVABILITY.md.
  void set_metrics_registry(g6::obs::MetricsRegistry* registry) {
    metrics_ = registry;
  }

 private:
  JParticle format_j(std::uint32_t i, const g6::nbody::ParticleSystem& ps) const;

  FormatSpec fmt_;
  double eps_;
  HostMode mode_;
  g6::util::ThreadPool* pool_;
  std::unique_ptr<ParallelHostSystem> sys_;

  // Host-side mirror for i-particle prediction.
  std::vector<double> t0_;
  std::vector<g6::util::Vec3> x0_, v0_, a0_, j0_;

  std::uint64_t interactions_ = 0;
  std::vector<IParticle> batch_;
  std::vector<ForceAccumulator> accum_;
  fault::FaultInjector* injector_ = nullptr;
  g6::obs::MetricsRegistry* metrics_ = nullptr;
  bool aggregated_ = true;
  bool deferred_ = false;
  bool overlap_ = false;
};

}  // namespace g6::cluster
