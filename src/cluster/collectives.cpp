#include "cluster/collectives.hpp"

#include "util/check.hpp"

namespace g6::cluster {

namespace {

/// Serialize / deserialize accumulator batches (register-level).
std::vector<std::byte> pack_batch(const std::vector<g6::hw::ForceAccumulator>& a) {
  std::vector<std::byte> buf;
  buf.reserve(a.size() * 7 * sizeof(std::int64_t));
  for (const auto& f : a) {
    append_pod(buf, f.acc.x().raw());
    append_pod(buf, f.acc.y().raw());
    append_pod(buf, f.acc.z().raw());
    append_pod(buf, f.jerk.x().raw());
    append_pod(buf, f.jerk.y().raw());
    append_pod(buf, f.jerk.z().raw());
    append_pod(buf, f.pot.raw());
  }
  return buf;
}

std::vector<g6::hw::ForceAccumulator> unpack_batch(const std::vector<std::byte>& buf,
                                                   const g6::hw::FormatSpec& fmt) {
  std::vector<g6::hw::ForceAccumulator> out;
  std::size_t off = 0;
  while (off < buf.size()) {
    g6::hw::ForceAccumulator f(fmt);
    const auto ax = read_pod<std::int64_t>(buf, off);
    const auto ay = read_pod<std::int64_t>(buf, off);
    const auto az = read_pod<std::int64_t>(buf, off);
    const auto jx = read_pod<std::int64_t>(buf, off);
    const auto jy = read_pod<std::int64_t>(buf, off);
    const auto jz = read_pod<std::int64_t>(buf, off);
    const auto pr = read_pod<std::int64_t>(buf, off);
    f.acc = g6::util::FixedVec3::from_raw(ax, ay, az, fmt.acc_lsb);
    f.jerk = g6::util::FixedVec3::from_raw(jx, jy, jz, fmt.jerk_lsb);
    f.pot = g6::util::Fixed64::from_raw(pr, fmt.pot_lsb);
    out.push_back(f);
  }
  return out;
}

}  // namespace

std::vector<std::vector<std::byte>> tree_broadcast(Transport& transport, int root,
                                                   const std::vector<std::byte>& payload,
                                                   int tag) {
  const int p = transport.ranks();
  G6_CHECK(root >= 0 && root < p, "broadcast root out of range");
  std::vector<std::vector<std::byte>> received(static_cast<std::size_t>(p));
  received[static_cast<std::size_t>(root)] = payload;

  // Binomial tree in root-relative rank space: at distance d, every rank
  // that already holds the data forwards it d ranks ahead.
  for (int d = 1; d < p; d *= 2) {
    for (int rel = 0; rel < d && rel + d < p; ++rel) {
      const int src = (root + rel) % p;
      const int dst = (root + rel + d) % p;
      G6_CHECK(transport.send(src, dst, tag,
                              received[static_cast<std::size_t>(src)]) ==
                   SendStatus::kOk,
               "broadcast link down");
      received[static_cast<std::size_t>(dst)] =
          transport.recv(dst, src, tag).payload;
    }
  }
  return received;
}

std::vector<std::vector<std::byte>> ring_all_gather(
    Transport& transport, const std::vector<std::vector<std::byte>>& inputs,
    int tag) {
  const int p = transport.ranks();
  G6_CHECK(static_cast<int>(inputs.size()) == p, "one input per rank required");

  // blocks[r][k] = rank k's contribution as known to rank r.
  std::vector<std::vector<std::vector<std::byte>>> blocks(
      static_cast<std::size_t>(p),
      std::vector<std::vector<std::byte>>(static_cast<std::size_t>(p)));
  for (int r = 0; r < p; ++r)
    blocks[static_cast<std::size_t>(r)][static_cast<std::size_t>(r)] =
        inputs[static_cast<std::size_t>(r)];

  // p-1 ring steps: in step s, rank r forwards block (r - s) to rank r+1.
  for (int s = 0; s < p - 1; ++s) {
    for (int r = 0; r < p; ++r) {
      const int dst = (r + 1) % p;
      const int block = ((r - s) % p + p) % p;
      G6_CHECK(transport.send(
                   r, dst, tag,
                   blocks[static_cast<std::size_t>(r)][static_cast<std::size_t>(block)]) ==
                   SendStatus::kOk,
               "all-gather link down");
    }
    for (int r = 0; r < p; ++r) {
      const int src = ((r - 1) % p + p) % p;
      const int block = ((src - s) % p + p) % p;
      blocks[static_cast<std::size_t>(r)][static_cast<std::size_t>(block)] =
          transport.recv(r, src, tag).payload;
    }
  }

  // Concatenate in rank order.
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (int k = 0; k < p; ++k) {
      const auto& b = blocks[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)];
      out[static_cast<std::size_t>(r)].insert(out[static_cast<std::size_t>(r)].end(),
                                              b.begin(), b.end());
    }
  }
  return out;
}

std::vector<g6::hw::ForceAccumulator> tree_reduce(
    Transport& transport, int root,
    std::vector<std::vector<g6::hw::ForceAccumulator>> batches,
    const g6::hw::FormatSpec& fmt, int tag) {
  const int p = transport.ranks();
  G6_CHECK(root >= 0 && root < p, "reduce root out of range");
  G6_CHECK(static_cast<int>(batches.size()) == p, "one batch per rank required");
  const std::size_t len = batches[0].size();
  for (const auto& b : batches)
    G6_CHECK(b.size() == len, "all batches must have equal length");

  // Mirror of the broadcast tree: at distance d (descending), rank rel+d
  // sends its partial to rank rel, which merges (exact fixed-point adds).
  int top = 1;
  while (top < p) top *= 2;
  for (int d = top / 2; d >= 1; d /= 2) {
    for (int rel = 0; rel < d && rel + d < p; ++rel) {
      const int src = (root + rel + d) % p;
      const int dst = (root + rel) % p;
      G6_CHECK(transport.send(src, dst, tag,
                              pack_batch(batches[static_cast<std::size_t>(src)])) ==
                   SendStatus::kOk,
               "reduce link down");
      const auto received =
          unpack_batch(transport.recv(dst, src, tag).payload, fmt);
      auto& acc = batches[static_cast<std::size_t>(dst)];
      for (std::size_t k = 0; k < len; ++k) acc[k] += received[k];
    }
  }
  return batches[static_cast<std::size_t>(root)];
}

}  // namespace g6::cluster
