#pragma once
/// \file aggregator.hpp
/// \brief Per-destination message aggregation for the cluster Ethernet.
///
/// PR 3's BSP transport ships every j-particle update as its own Transport
/// message, so the modeled per-message overhead (Ethernet latency) dominates
/// long before the paper's 16-host matrix. Following the RDMAAggregator
/// design from the Grappa runtime, records bound for the same destination are
/// staged into a per-(src, dst) frame and flushed as one bulk message:
///
///   frame   := magic:u32 record_count:u32 record*
///   record  := kind:u32 payload_bytes:u32 payload
///
/// Flush rules (the determinism contract, see docs/PERFORMANCE.md):
///   - capacity flush: staging a record that would push a pair's frame past
///     the capacity sends the full frame first, on the staging (driving)
///     thread;
///   - step-boundary flush: every pending frame goes out in ascending
///     (destination, source) host-id order — never arrival order — so the
///     wire content is a pure function of the staged records.
///
/// The CRC-32 framing from PR 4 applies to the aggregate frame (one
/// Transport payload), with the per-record offsets recovered by
/// parse_frame(); corruption therefore costs one frame resend, not one
/// resend per record.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::cluster {

/// What a frame record carries.
enum class RecordKind : std::uint32_t {
  kJUpdate = 1,  ///< one corrected j-particle (pack_j serialization)
  kIBatch = 2,   ///< an i-particle block (collective broadcast leg)
  kPartial = 3,  ///< partial-force accumulators (collective reduction leg)
};

const char* record_kind_name(RecordKind kind);

inline constexpr std::uint32_t kFrameMagic = 0x47364147u;  // "GA6G" on the wire
inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::size_t kRecordHeaderBytes = 8;

/// Serialized pack_j() record size (id + mass + t0 + fixed-point position +
/// lsb + v0/a0/j0); pinned by test_aggregator so the PerfModel byte terms
/// cannot drift from the wire format.
inline constexpr std::size_t kJUpdateRecordBytes = 124;

/// Modeled per-message wire overhead of one GbE message (preamble + Ethernet
/// header + FCS + interframe gap + IP + UDP): what every coalesced record
/// avoids paying.
inline constexpr std::size_t kPerMessageWireBytes = 78;

/// Default capacity flush threshold (frame bytes).
inline constexpr std::size_t kDefaultAggregationCapacity = 4096;

/// Incrementally builds one frame.
class FrameBuilder {
 public:
  void add(RecordKind kind, std::span<const std::byte> payload);

  std::size_t records() const { return records_; }
  bool empty() const { return records_ == 0; }
  /// Frame bytes as they would appear on the wire (header included).
  std::size_t bytes() const { return buf_.empty() ? kFrameHeaderBytes : buf_.size(); }
  /// Would adding a payload of \p payload_bytes exceed \p capacity?
  bool would_exceed(std::size_t payload_bytes, std::size_t capacity) const {
    return !empty() && bytes() + kRecordHeaderBytes + payload_bytes > capacity;
  }

  /// Finalize and return the frame; the builder resets to empty.
  std::vector<std::byte> take();

 private:
  std::vector<std::byte> buf_;
  std::size_t records_ = 0;
};

/// One parsed record: where its payload sits inside the frame.
struct FrameRecordView {
  RecordKind kind = RecordKind::kJUpdate;
  std::size_t offset = 0;  ///< payload start within the frame
  std::size_t size = 0;    ///< payload bytes
};

/// Parse a frame built by FrameBuilder (raises on malformed framing).
std::vector<FrameRecordView> parse_frame(std::span<const std::byte> frame);

/// Copy one record's payload out of a frame.
std::vector<std::byte> record_payload(std::span<const std::byte> frame,
                                      const FrameRecordView& rec);

/// Convenience: a frame holding exactly one record.
std::vector<std::byte> wrap_record(RecordKind kind, std::span<const std::byte> payload);

/// Inverse of wrap_record: checks the frame holds exactly one record of
/// \p kind and returns its payload.
std::vector<std::byte> unwrap_record(std::span<const std::byte> frame, RecordKind kind);

/// Aggregation counters (the g6.net.* metrics). Mutated only from the
/// serial driver points of the BSP schedule (or the single comm task of the
/// overlap pipeline, which the parallel_for barrier orders against readers),
/// so plain integers suffice.
struct NetStats {
  std::uint64_t frames_sent = 0;        ///< aggregate messages on the wire
  std::uint64_t records_sent = 0;       ///< records carried by those frames
  std::uint64_t capacity_flushes = 0;   ///< frames forced out by capacity
  std::uint64_t boundary_flushes = 0;   ///< step-boundary flush sweeps
  std::uint64_t deferred_flushes = 0;   ///< flushes deferred to compute() entry
  std::uint64_t record_bytes = 0;       ///< payload bytes inside sent frames
  std::uint64_t frame_bytes = 0;        ///< total framed bytes on the wire
  std::uint64_t baseline_messages = 0;  ///< messages per-record sends would cost
  double flush_seconds = 0.0;           ///< modeled link time of update flushes
  double overlap_saved_seconds = 0.0;   ///< modeled comm hidden under compute

  /// Book one frame handed to the transport.
  void count_frame(std::size_t frame_size, std::size_t n_records) {
    frames_sent += 1;
    records_sent += n_records;
    frame_bytes += frame_size;
    record_bytes += frame_size - kFrameHeaderBytes - n_records * kRecordHeaderBytes;
  }

  std::uint64_t messages_saved() const {
    return baseline_messages > frames_sent ? baseline_messages - frames_sent : 0;
  }

  /// Wire bytes avoided: the per-message overhead of every saved message
  /// minus the framing bytes aggregation itself adds.
  std::int64_t bytes_saved() const {
    const std::int64_t framing = static_cast<std::int64_t>(
        frames_sent * kFrameHeaderBytes + records_sent * kRecordHeaderBytes);
    return static_cast<std::int64_t>(messages_saved() * kPerMessageWireBytes) - framing;
  }

  double aggregation_factor() const {
    return frames_sent > 0
               ? static_cast<double>(records_sent) / static_cast<double>(frames_sent)
               : 1.0;
  }
};

/// Per-destination staging buffers over an n-rank fabric. The aggregator
/// never touches the Transport itself: the owner passes a sink (typically
/// the reliable BSP exchange) that moves a finished frame, which keeps every
/// fault-injection decision on the existing serialized send path.
class MessageAggregator {
 public:
  /// Called with a finished frame to put on the wire.
  using Sink = std::function<void(int src, int dst, std::vector<std::byte> frame)>;

  explicit MessageAggregator(int n_ranks,
                             std::size_t capacity = kDefaultAggregationCapacity);

  std::size_t capacity() const { return capacity_; }

  /// Stage one record from \p src to \p dst; runs a capacity flush of that
  /// pair first when the record would not fit.
  void stage(int src, int dst, RecordKind kind, std::span<const std::byte> record,
             const Sink& sink);

  /// Step-boundary flush: send every pending frame in ascending
  /// (destination, source) order.
  void flush(const Sink& sink);

  bool pending() const;

  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

 private:
  void send_pair(int src, int dst, const Sink& sink);

  int n_ranks_;
  std::size_t capacity_;
  std::vector<FrameBuilder> pair_;  ///< indexed dst * n_ranks + src
  NetStats stats_;
};

/// Publish aggregation counters under `g6.net.*` (docs/OBSERVABILITY.md).
void publish_net_metrics(const NetStats& s, g6::obs::MetricsRegistry& registry);

}  // namespace g6::cluster
