#pragma once
/// \file perf_model.hpp
/// \brief Analytic wall-clock model of one block step on the GRAPE-6
///        installation — the machinery behind the paper's headline numbers
///        (63.4 Tflops peak, 29.5 Tflops sustained).
///
/// The model follows the classic GRAPE accounting (Makino & Taiji 1998):
/// per block step with n_act active particles out of N, time is the sum of
///   - predictor sweep over the per-chip j-memory,
///   - pipeline passes: ceil(n_act / 48) passes of (8 * n_j + latency)
///     cycles on the fullest chip,
///   - i-particle transfers (PCI from the host, LVDS into the boards,
///     Gigabit Ethernet between clusters),
///   - force-result returns along the reverse path,
///   - j-memory updates for the corrected particles,
///   - host-side integration work, and
///   - the inter-host synchronisation.
/// Sustained speed is 57 * N * n_act operations divided by that time,
/// averaged over the block-size distribution of the run.

#include <array>
#include <cstdint>
#include <span>

#include "cluster/parallel_sim.hpp"  // HostMode
#include "fault/fault.hpp"
#include "grape6/machine.hpp"
#include "obs/blockstep_record.hpp"

namespace g6::cluster {

/// Model inputs: machine topology plus link/host characteristics.
struct PerfParams {
  g6::hw::MachineConfig machine = g6::hw::MachineConfig::full_system();

  double pci_bytes_per_sec = g6::hw::kPciBytesPerSec;
  double lvds_bytes_per_sec = g6::hw::kLvdsBytesPerSec;
  double gbe_bytes_per_sec = g6::hw::kGbeBytesPerSec;
  double gbe_latency_sec = g6::hw::kGbeLatencySec;
  double lvds_latency_sec = g6::hw::kLvdsLatencySec;

  /// Effective host scalar speed (Athlon XP class) and the host work per
  /// particle step (prediction bookkeeping, corrector, timestep, scheduler).
  double host_flops = 400.0e6;
  double host_ops_per_step = 600.0;

  /// When true, i-particle/result streaming overlaps pipeline execution
  /// (the hardware can stream while computing); when false the terms are
  /// summed. The paper-era driver overlapped only partially — the default
  /// (false) reproduces the measured efficiency band.
  bool overlap_comm = false;

  /// Fixed software/NIC overhead of one Ethernet message, charged per frame
  /// by the message-count model below (distinct from gbe_latency_sec, which
  /// the classic blockstep() terms keep using unchanged).
  double gbe_per_message_sec = g6::hw::kGbeLatencySec;

  /// Aggregator capacity mirrored by the message-count model; must match the
  /// MessageAggregator the run actually used for the counts to line up.
  std::size_t aggregation_capacity_bytes = kDefaultAggregationCapacity;
};

/// Ethernet traffic of one phase, predicted by counting loops that mirror
/// ParallelHostSystem's wire protocol exactly (fault-free links, corrected /
/// active ids taken as the contiguous block 0..n-1). Validated against the
/// measured NetStats / Transport counters in bench_network_modes.
struct CommEstimate {
  std::uint64_t messages = 0;  ///< Ethernet messages (frames when aggregated)
  std::uint64_t bytes = 0;     ///< payload bytes handed to the transport
  double seconds = 0.0;        ///< messages * per-message + bytes / bandwidth

  CommEstimate& operator+=(const CommEstimate& o) {
    messages += o.messages;
    bytes += o.bytes;
    seconds += o.seconds;
    return *this;
  }
};

/// Per-term breakdown of one block step (seconds).
struct StepBreakdown {
  double predict = 0.0;
  double pipeline = 0.0;
  double i_comm = 0.0;       ///< i-particle distribution (PCI + LVDS + GbE)
  double result_comm = 0.0;  ///< force return path
  double j_update = 0.0;     ///< corrected-particle writeback
  double host = 0.0;         ///< host integration work
  double sync = 0.0;         ///< inter-host barrier

  double total(bool overlap_comm = false) const {
    const double comm = i_comm + result_comm;
    const double core = overlap_comm ? (pipeline > comm ? pipeline : comm)
                                     : pipeline + comm;
    return predict + core + j_update + host + sync;
  }
};

/// A (block size, occurrence count) pair of a measured run.
struct BlockCount {
  std::size_t n_act = 0;
  std::uint64_t count = 0;
};

/// Aggregate estimate over a whole run.
struct RunEstimate {
  double seconds = 0.0;
  double operations = 0.0;       ///< 57 * N * sum(n_act)
  double sustained_flops = 0.0;  ///< operations / seconds
  double efficiency = 0.0;       ///< sustained / peak
};

/// Hardware excluded by the reliability layer plus its modeled repair time —
/// the coupling from fault recovery into the analytic model. A degraded run
/// is slower for two reasons: the surviving chips hold more j-particles
/// (stretching the predictor/pipeline terms), and every repair action costs
/// modeled wall time.
struct Degradation {
  int dead_chips = 0;   ///< chips excluded (boards counted below overlap; see
                        ///< alive_chip_fraction, which clamps)
  int dead_boards = 0;  ///< whole boards excluded
  int dead_hosts = 0;   ///< hosts dropped from the cluster
  double recovery_seconds = 0.0;  ///< total modeled repair time of the run

  /// Fraction of the machine's chips still computing (clamped to at least
  /// one alive chip).
  double alive_chip_fraction(const g6::hw::MachineConfig& m) const;

  /// Build from the fault layer's counters after a campaign.
  static Degradation from_stats(const g6::fault::FaultStatsSnapshot& s);
};

/// The analytic model.
class PerfModel {
 public:
  explicit PerfModel(PerfParams params);

  const PerfParams& params() const { return p_; }

  /// Peak speed of the modeled machine (57-op convention).
  double peak_flops() const { return p_.machine.peak_flops(); }

  /// Time breakdown of one block step with \p n_act active particles out of
  /// \p n_total, for the given host organisation.
  StepBreakdown blockstep(std::size_t n_total, std::size_t n_act,
                          HostMode mode = HostMode::kHardwareNet) const;

  /// Seconds for one block step (applying the overlap setting).
  double blockstep_seconds(std::size_t n_total, std::size_t n_act,
                           HostMode mode = HostMode::kHardwareNet) const {
    return blockstep(n_total, n_act, mode).total(p_.overlap_comm);
  }

  /// Ethernet traffic of one update() over \p n_corrected particles
  /// (contiguous ids 0..n_corrected-1) on \p n_hosts in \p mode, with or
  /// without frame aggregation. Message counts are exact; byte counts mirror
  /// the wire serialization (pack_j records, frame headers).
  CommEstimate update_comm(int n_hosts, HostMode mode, std::size_t n_corrected,
                           bool aggregated) const;

  /// Ethernet traffic of one compute() over a block of \p n_act i-particles
  /// (contiguous ids) — the matrix collectives; naive and hardware-net
  /// compute put nothing on the Ethernet. \p overlap counts the
  /// double-buffered two-block pipeline's legs.
  CommEstimate compute_comm(int n_hosts, HostMode mode, std::size_t n_act,
                            bool aggregated, bool overlap) const;

  /// Aggregate a run from a block-size distribution.
  RunEstimate run(std::size_t n_total, std::span<const BlockCount> blocks,
                  HostMode mode = HostMode::kHardwareNet) const;

  /// The same aggregation on a machine degraded by excluded hardware, with
  /// the modeled recovery time added once to the run. Efficiency is still
  /// reported against the *pristine* peak, so degradation shows up as a
  /// lower sustained fraction — the honest operations view.
  RunEstimate run_degraded(std::size_t n_total,
                           std::span<const BlockCount> blocks,
                           const Degradation& deg,
                           HostMode mode = HostMode::kHardwareNet) const;

  /// Gordon Bell operation count of one block step: 57 * N * n_act.
  static double step_operations(std::size_t n_total, std::size_t n_act) {
    return static_cast<double>(g6::hw::kOpsPerInteraction) *
           static_cast<double>(n_total) * static_cast<double>(n_act);
  }

 private:
  PerfParams p_;
};

/// Adapter for the observability layer: the breakdown's terms in
/// obs::Phase order, so a PerfModel plugs straight into
/// obs::compare_to_model:
///   auto fn = [&](std::size_t n_act) {
///     return to_phase_array(model.blockstep(n_total, n_act)); };
std::array<double, g6::obs::kPhaseCount> to_phase_array(const StepBreakdown& bd);

}  // namespace g6::cluster
