#include "cluster/parallel_sim.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace g6::cluster {

namespace {
// Message tags of the mini-protocol.
constexpr int kTagJUpdate = 1;
constexpr int kTagIBatch = 2;
constexpr int kTagPartial = 3;

std::vector<std::byte> pack_i_batch(const std::vector<IParticle>& batch) {
  std::vector<std::byte> buf;
  buf.reserve(batch.size() * sizeof(IParticle));
  for (const IParticle& p : batch) append_pod(buf, p);
  return buf;
}

std::vector<std::byte> pack_accumulators(const std::vector<ForceAccumulator>& a) {
  std::vector<std::byte> buf;
  buf.reserve(a.size() * 7 * sizeof(std::int64_t));
  for (const ForceAccumulator& f : a) {
    append_pod(buf, f.acc.x().raw());
    append_pod(buf, f.acc.y().raw());
    append_pod(buf, f.acc.z().raw());
    append_pod(buf, f.jerk.x().raw());
    append_pod(buf, f.jerk.y().raw());
    append_pod(buf, f.jerk.z().raw());
    append_pod(buf, f.pot.raw());
  }
  return buf;
}

std::vector<ForceAccumulator> unpack_accumulators(const std::vector<std::byte>& buf,
                                                  const FormatSpec& fmt) {
  std::vector<ForceAccumulator> out;
  std::size_t off = 0;
  while (off < buf.size()) {
    ForceAccumulator f(fmt);
    const auto ax = read_pod<std::int64_t>(buf, off);
    const auto ay = read_pod<std::int64_t>(buf, off);
    const auto az = read_pod<std::int64_t>(buf, off);
    const auto jx = read_pod<std::int64_t>(buf, off);
    const auto jy = read_pod<std::int64_t>(buf, off);
    const auto jz = read_pod<std::int64_t>(buf, off);
    const auto pr = read_pod<std::int64_t>(buf, off);
    f.acc = g6::util::FixedVec3::from_raw(ax, ay, az, fmt.acc_lsb);
    f.jerk = g6::util::FixedVec3::from_raw(jx, jy, jz, fmt.jerk_lsb);
    f.pot = g6::util::Fixed64::from_raw(pr, fmt.pot_lsb);
    out.push_back(f);
  }
  return out;
}
}  // namespace

const char* host_mode_name(HostMode mode) {
  switch (mode) {
    case HostMode::kNaive: return "naive (fig. 3)";
    case HostMode::kHardwareNet: return "hardware-network (figs. 4-5)";
    case HostMode::kMatrix2D: return "2-D host matrix (fig. 6)";
  }
  return "?";
}

std::vector<std::byte> pack_j(const JParticle& p) {
  std::vector<std::byte> buf;
  append_pod(buf, p.id);
  append_pod(buf, p.mass);
  append_pod(buf, p.t0);
  append_pod(buf, p.x0.x().raw());
  append_pod(buf, p.x0.y().raw());
  append_pod(buf, p.x0.z().raw());
  append_pod(buf, p.x0.lsb());
  append_pod(buf, p.v0);
  append_pod(buf, p.a0);
  append_pod(buf, p.j0);
  return buf;
}

JParticle unpack_j(const std::vector<std::byte>& buf, std::size_t& offset) {
  JParticle p;
  p.id = read_pod<std::uint32_t>(buf, offset);
  p.mass = read_pod<double>(buf, offset);
  p.t0 = read_pod<double>(buf, offset);
  const auto rx = read_pod<std::int64_t>(buf, offset);
  const auto ry = read_pod<std::int64_t>(buf, offset);
  const auto rz = read_pod<std::int64_t>(buf, offset);
  const auto lsb = read_pod<double>(buf, offset);
  p.x0 = g6::util::FixedVec3::from_raw(rx, ry, rz, lsb);
  p.v0 = read_pod<g6::util::Vec3>(buf, offset);
  p.a0 = read_pod<g6::util::Vec3>(buf, offset);
  p.j0 = read_pod<g6::util::Vec3>(buf, offset);
  return p;
}

// --- SimHost ---------------------------------------------------------------

void SimHost::write_j(std::uint32_t gid, const JParticle& p) {
  if (index_.size() <= gid) index_.resize(gid + 1, -1);
  if (index_[gid] < 0) {
    index_[gid] = static_cast<std::int64_t>(jstore_.size());
    jstore_.push_back(p);
  } else {
    jstore_[static_cast<std::size_t>(index_[gid])] = p;
  }
}

bool SimHost::has_j(std::uint32_t gid) const {
  return gid < index_.size() && index_[gid] >= 0;
}

const JParticle& SimHost::read_j(std::uint32_t gid) const {
  G6_CHECK(has_j(gid), "host " + std::to_string(rank_) + " has no j-image of " +
                           std::to_string(gid));
  return jstore_[static_cast<std::size_t>(index_[gid])];
}

void SimHost::partial_forces(double t, const std::vector<IParticle>& i_batch,
                             double eps2, std::vector<ForceAccumulator>& out) const {
  // Grow-only scratch: resize never shrinks capacity, the value reset is in
  // place, so steady-state calls do not touch the allocator.
  out.resize(i_batch.size(), ForceAccumulator(fmt_));
  for (auto& f : out) f = ForceAccumulator(fmt_);
  pred_.resize(jstore_.size());
  for (std::size_t j = 0; j < jstore_.size(); ++j)
    pred_[j] = g6::hw::predict_j(jstore_[j], t, fmt_);
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    for (const auto& jp : pred_)
      g6::hw::pipeline_interact(i_batch[k], jp, eps2, fmt_, out[k]);
  }
}

// --- ParallelHostSystem ------------------------------------------------------

ParallelHostSystem::ParallelHostSystem(int n_hosts, HostMode mode, FormatSpec fmt,
                                       double eps, LinkSpec ethernet,
                                       g6::util::ThreadPool* pool)
    : mode_(mode), fmt_(fmt), eps2_(eps * eps),
      pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(n_hosts > 0, "need at least one host");
  if (mode == HostMode::kMatrix2D) {
    const int side = static_cast<int>(std::lround(std::sqrt(double(n_hosts))));
    G6_CHECK(side * side == n_hosts, "matrix mode needs a square host count");
  }
  hosts_.reserve(static_cast<std::size_t>(n_hosts));
  for (int h = 0; h < n_hosts; ++h) hosts_.emplace_back(h, fmt);
  transport_ = std::make_unique<Transport>(n_hosts, ethernet);
  host_partial_.resize(static_cast<std::size_t>(n_hosts));
  host_batch_.resize(static_cast<std::size_t>(n_hosts));
  host_batch_idx_.resize(static_cast<std::size_t>(n_hosts));
}

void ParallelHostSystem::parallel_partials(double t, const std::vector<IParticle>& batch,
                                           std::size_t n_hosts_active) {
  // The barrier-separated compute phase of the BSP timeline: every simulated
  // host runs its software GRAPE concurrently, writing only its own partial
  // buffer and per-host scratch. parallel_for returns when all hosts are
  // done — the synchronisation point the paper's hosts hit before the next
  // exchange phase.
  pool_->parallel_for(
      n_hosts_active,
      [&](std::size_t h0, std::size_t h1) {
        for (std::size_t h = h0; h < h1; ++h) {
          G6_TRACE_SPAN_CAT("host-partial", "cluster");
          hosts_[h].partial_forces(t, batch, eps2_, host_partial_[h]);
        }
      },
      /*grain=*/1);
}

int ParallelHostSystem::grid_side() const {
  return static_cast<int>(std::lround(std::sqrt(double(hosts_.size()))));
}

int ParallelHostSystem::real_hosts() const {
  return mode_ == HostMode::kMatrix2D ? grid_side() : hosts();
}

int ParallelHostSystem::owner_of(std::uint32_t gid) const {
  return static_cast<int>(gid % static_cast<std::uint32_t>(real_hosts()));
}

void ParallelHostSystem::load(std::span<const JParticle> particles) {
  n_particles_ = particles.size();
  for (const JParticle& p : particles) {
    switch (mode_) {
      case HostMode::kNaive:
        for (auto& h : hosts_) h.write_j(p.id, p);
        break;
      case HostMode::kHardwareNet:
        hosts_[static_cast<std::size_t>(owner_of(p.id))].write_j(p.id, p);
        break;
      case HostMode::kMatrix2D: {
        const int side = grid_side();
        const int col = owner_of(p.id);
        const int row = static_cast<int>((p.id / static_cast<std::uint32_t>(side)) %
                                         static_cast<std::uint32_t>(side));
        hosts_[static_cast<std::size_t>(row * side + col)].write_j(p.id, p);
        break;
      }
    }
  }
}

void ParallelHostSystem::update(std::span<const JParticle> particles) {
  for (const JParticle& p : particles) {
    const int owner = owner_of(p.id);
    switch (mode_) {
      case HostMode::kNaive: {
        // The owner corrects the particle, then every other host needs the
        // new state for its full replica: all-to-all over Ethernet. This is
        // the non-scaling traffic of figure 3.
        hosts_[static_cast<std::size_t>(owner)].write_j(p.id, p);
        for (int h = 0; h < hosts(); ++h) {
          if (h == owner) continue;
          transport_->send(owner, h, kTagJUpdate, pack_j(p));
          auto msg = transport_->recv(h, owner, kTagJUpdate);
          std::size_t off = 0;
          hosts_[static_cast<std::size_t>(h)].write_j(p.id, unpack_j(msg.payload, off));
        }
        hw_bytes_.pci += g6::hw::kJParticleBytes * hosts_.size();
        break;
      }
      case HostMode::kHardwareNet:
        // The j-image lives on the owner's own boards: PCI + one LVDS hop,
        // no host-to-host traffic at all.
        hosts_[static_cast<std::size_t>(owner)].write_j(p.id, p);
        hw_bytes_.pci += g6::hw::kJParticleBytes;
        hw_bytes_.lvds += g6::hw::kJParticleBytes;
        break;
      case HostMode::kMatrix2D: {
        const int side = grid_side();
        const int row = static_cast<int>((p.id / static_cast<std::uint32_t>(side)) %
                                         static_cast<std::uint32_t>(side));
        // Hop down the owner's column to the row that holds the j-image.
        int prev = owner;
        for (int r = 1; r <= row; ++r) {
          const int next = r * side + owner;
          transport_->send(prev, next, kTagJUpdate, pack_j(p));
          (void)transport_->recv(next, prev, kTagJUpdate);
          prev = next;
        }
        hosts_[static_cast<std::size_t>(prev)].write_j(p.id, p);
        hw_bytes_.pci += g6::hw::kJParticleBytes;
        break;
      }
    }
  }
}

void ParallelHostSystem::compute(double t, const std::vector<IParticle>& i_batch,
                                 std::vector<ForceAccumulator>& out) {
  switch (mode_) {
    case HostMode::kNaive: return compute_naive(t, i_batch, out);
    case HostMode::kHardwareNet: return compute_hardware_net(t, i_batch, out);
    case HostMode::kMatrix2D: return compute_matrix(t, i_batch, out);
  }
}

void ParallelHostSystem::compute_naive(double t, const std::vector<IParticle>& i_batch,
                                       std::vector<ForceAccumulator>& out) {
  // Each host evaluates the FULL force for the i-particles it owns, on its
  // own full-replica GRAPE. No inter-host traffic here (it was all paid in
  // update()). Ownership slicing stays on the driving thread; the hosts
  // then step concurrently, each on its own i-slice.
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  const auto nh = static_cast<std::size_t>(hosts());
  for (std::size_t h = 0; h < nh; ++h) {
    host_batch_[h].clear();
    host_batch_idx_[h].clear();
  }
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const auto h = static_cast<std::size_t>(owner_of(i_batch[k].id));
    host_batch_[h].push_back(i_batch[k]);
    host_batch_idx_[h].push_back(k);
  }
  pool_->parallel_for(
      nh,
      [&](std::size_t h0, std::size_t h1) {
        for (std::size_t h = h0; h < h1; ++h) {
          if (host_batch_[h].empty()) continue;
          G6_TRACE_SPAN_CAT("host-partial", "cluster");
          hosts_[h].partial_forces(t, host_batch_[h], eps2_, host_partial_[h]);
        }
      },
      /*grain=*/1);
  for (std::size_t h = 0; h < nh; ++h) {
    if (host_batch_[h].empty()) continue;
    for (std::size_t m = 0; m < host_batch_[h].size(); ++m)
      out[host_batch_idx_[h][m]] += host_partial_[h][m];
    hw_bytes_.pci +=
        host_batch_[h].size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes);
    hw_bytes_.lvds +=
        host_batch_[h].size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes);
  }
}

void ParallelHostSystem::compute_hardware_net(double t,
                                              const std::vector<IParticle>& i_batch,
                                              std::vector<ForceAccumulator>& out) {
  // The network boards broadcast every i-particle to every host's boards and
  // reduce the partial forces in hardware — all on LVDS, nothing on Ethernet.
  // All hosts compute concurrently; the reduction below merges in host order
  // (exact fixed point, so identical to any other order bit for bit).
  parallel_partials(t, i_batch, static_cast<std::size_t>(hosts()));
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  for (int h = 0; h < hosts(); ++h) {
    const auto& part = host_partial_[static_cast<std::size_t>(h)];
    for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += part[k];
  }
  hw_bytes_.pci += i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes);
  hw_bytes_.lvds +=
      i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes) * hosts_.size();
}

void ParallelHostSystem::compute_matrix(double t, const std::vector<IParticle>& i_batch,
                                        std::vector<ForceAccumulator>& out) {
  const int side = grid_side();

  // Phase 1: row-0 all-gather — every real host sends the i-particles it
  // owns to the other real hosts (after this all real hosts hold the full
  // batch; we use the caller's batch directly but pay the traffic).
  for (int c = 0; c < side; ++c) {
    std::vector<IParticle> mine;
    for (const IParticle& p : i_batch)
      if (owner_of(p.id) == c) mine.push_back(p);
    const auto payload = pack_i_batch(mine);
    for (int c2 = 0; c2 < side; ++c2) {
      if (c2 == c) continue;
      transport_->send(c, c2, kTagIBatch, payload);
      (void)transport_->recv(c2, c, kTagIBatch);
    }
  }

  // Phase 2: each real host broadcasts the full batch down its column
  // (store-and-forward, hop by hop — these hosts emulate network boards).
  const auto full = pack_i_batch(i_batch);
  for (int c = 0; c < side; ++c) {
    for (int r = 1; r < side; ++r) {
      const int prev = (r - 1) * side + c;
      const int next = r * side + c;
      transport_->send(prev, next, kTagIBatch, full);
      (void)transport_->recv(next, prev, kTagIBatch);
    }
  }
  hw_bytes_.pci += i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes) *
                   static_cast<std::uint64_t>(side);

  // Phase 3a: every host computes its partial forces from its j-slice —
  // the concurrent compute phase of the matrix timeline (all side*side
  // hosts step in parallel, then barrier).
  parallel_partials(t, i_batch, hosts_.size());

  // Phase 3b: column reduction back to row 0 (merge hop by hop, exact).
  // The wire carries the same running sums as the serial schedule did.
  std::vector<std::vector<ForceAccumulator>> column_total(
      static_cast<std::size_t>(side));
  for (int c = 0; c < side; ++c) {
    std::vector<ForceAccumulator> acc =
        host_partial_[static_cast<std::size_t>((side - 1) * side + c)];
    for (int r = side - 2; r >= 0; --r) {
      const int from = (r + 1) * side + c;
      const int to = r * side + c;
      transport_->send(from, to, kTagPartial, pack_accumulators(acc));
      auto msg = transport_->recv(to, from, kTagPartial);
      auto received = unpack_accumulators(msg.payload, fmt_);
      std::vector<ForceAccumulator> local = host_partial_[static_cast<std::size_t>(to)];
      for (std::size_t k = 0; k < local.size(); ++k) local[k] += received[k];
      acc = std::move(local);
    }
    column_total[static_cast<std::size_t>(c)] = std::move(acc);
  }

  // Phase 4: row-0 all-reduce of the column totals (merge in column order so
  // the result is deterministic — and exact anyway).
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  for (int c = 0; c < side; ++c) {
    if (c != 0) {
      const auto payload = pack_accumulators(column_total[static_cast<std::size_t>(c)]);
      transport_->send(c, 0, kTagPartial, payload);
      (void)transport_->recv(0, c, kTagPartial);
    }
    const auto& part = column_total[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += part[k];
  }
}

std::uint64_t ParallelHostSystem::ethernet_bytes() const {
  std::uint64_t total = 0;
  for (int h = 0; h < hosts(); ++h) total += transport_->stats(h).bytes_sent;
  return total;
}

}  // namespace g6::cluster
