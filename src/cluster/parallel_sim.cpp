#include "cluster/parallel_sim.hpp"

#include <cmath>

#include "grape6/g6_types.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace g6::cluster {

namespace {
// Message tags of the mini-protocol.
constexpr int kTagJUpdate = 1;
constexpr int kTagIBatch = 2;
constexpr int kTagPartial = 3;

// Resend budget for one BSP exchange: generous — a scripted plan can drop or
// corrupt the same op only once, but randomized plans may stack events.
constexpr int kMaxResends = 16;

std::vector<std::byte> pack_i_batch(const std::vector<IParticle>& batch) {
  std::vector<std::byte> buf;
  buf.reserve(batch.size() * sizeof(IParticle));
  for (const IParticle& p : batch) append_pod(buf, p);
  return buf;
}

std::vector<std::byte> pack_accumulators(const std::vector<ForceAccumulator>& a) {
  std::vector<std::byte> buf;
  buf.reserve(a.size() * 7 * sizeof(std::int64_t));
  for (const ForceAccumulator& f : a) {
    append_pod(buf, f.acc.x().raw());
    append_pod(buf, f.acc.y().raw());
    append_pod(buf, f.acc.z().raw());
    append_pod(buf, f.jerk.x().raw());
    append_pod(buf, f.jerk.y().raw());
    append_pod(buf, f.jerk.z().raw());
    append_pod(buf, f.pot.raw());
  }
  return buf;
}

std::vector<ForceAccumulator> unpack_accumulators(const std::vector<std::byte>& buf,
                                                  const FormatSpec& fmt) {
  std::vector<ForceAccumulator> out;
  std::size_t off = 0;
  while (off < buf.size()) {
    ForceAccumulator f(fmt);
    const auto ax = read_pod<std::int64_t>(buf, off);
    const auto ay = read_pod<std::int64_t>(buf, off);
    const auto az = read_pod<std::int64_t>(buf, off);
    const auto jx = read_pod<std::int64_t>(buf, off);
    const auto jy = read_pod<std::int64_t>(buf, off);
    const auto jz = read_pod<std::int64_t>(buf, off);
    const auto pr = read_pod<std::int64_t>(buf, off);
    f.acc = g6::util::FixedVec3::from_raw(ax, ay, az, fmt.acc_lsb);
    f.jerk = g6::util::FixedVec3::from_raw(jx, jy, jz, fmt.jerk_lsb);
    f.pot = g6::util::Fixed64::from_raw(pr, fmt.pot_lsb);
    out.push_back(f);
  }
  return out;
}
}  // namespace

const char* host_mode_name(HostMode mode) {
  switch (mode) {
    case HostMode::kNaive: return "naive (fig. 3)";
    case HostMode::kHardwareNet: return "hardware-network (figs. 4-5)";
    case HostMode::kMatrix2D: return "2-D host matrix (fig. 6)";
  }
  return "?";
}

std::vector<std::byte> pack_j(const JParticle& p) {
  std::vector<std::byte> buf;
  append_pod(buf, p.id);
  append_pod(buf, p.mass);
  append_pod(buf, p.t0);
  append_pod(buf, p.x0.x().raw());
  append_pod(buf, p.x0.y().raw());
  append_pod(buf, p.x0.z().raw());
  append_pod(buf, p.x0.lsb());
  append_pod(buf, p.v0);
  append_pod(buf, p.a0);
  append_pod(buf, p.j0);
  return buf;
}

JParticle unpack_j(const std::vector<std::byte>& buf, std::size_t& offset) {
  JParticle p;
  p.id = read_pod<std::uint32_t>(buf, offset);
  p.mass = read_pod<double>(buf, offset);
  p.t0 = read_pod<double>(buf, offset);
  const auto rx = read_pod<std::int64_t>(buf, offset);
  const auto ry = read_pod<std::int64_t>(buf, offset);
  const auto rz = read_pod<std::int64_t>(buf, offset);
  const auto lsb = read_pod<double>(buf, offset);
  p.x0 = g6::util::FixedVec3::from_raw(rx, ry, rz, lsb);
  p.v0 = read_pod<g6::util::Vec3>(buf, offset);
  p.a0 = read_pod<g6::util::Vec3>(buf, offset);
  p.j0 = read_pod<g6::util::Vec3>(buf, offset);
  return p;
}

// --- SimHost ---------------------------------------------------------------

void SimHost::write_j(std::uint32_t gid, const JParticle& p) {
  if (index_.size() <= gid) index_.resize(gid + 1, -1);
  if (index_[gid] < 0) {
    index_[gid] = static_cast<std::int64_t>(jstore_.size());
    jstore_.push_back(p);
  } else {
    jstore_[static_cast<std::size_t>(index_[gid])] = p;
  }
}

bool SimHost::has_j(std::uint32_t gid) const {
  return gid < index_.size() && index_[gid] >= 0;
}

const JParticle& SimHost::read_j(std::uint32_t gid) const {
  G6_CHECK(has_j(gid), "host " + std::to_string(rank_) + " has no j-image of " +
                           std::to_string(gid));
  return jstore_[static_cast<std::size_t>(index_[gid])];
}

void SimHost::partial_forces(double t, const std::vector<IParticle>& i_batch,
                             double eps2, std::vector<ForceAccumulator>& out) const {
  // Grow-only scratch: resize never shrinks capacity, the value reset is in
  // place, so steady-state calls do not touch the allocator.
  out.resize(i_batch.size(), ForceAccumulator(fmt_));
  for (auto& f : out) f = ForceAccumulator(fmt_);
  pred_.resize(jstore_.size());
  for (std::size_t j = 0; j < jstore_.size(); ++j)
    pred_[j] = g6::hw::predict_j(jstore_[j], t, fmt_);
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    for (const auto& jp : pred_)
      g6::hw::pipeline_interact(i_batch[k], jp, eps2, fmt_, out[k]);
  }
}

// --- ParallelHostSystem ------------------------------------------------------

ParallelHostSystem::ParallelHostSystem(int n_hosts, HostMode mode, FormatSpec fmt,
                                       double eps, LinkSpec ethernet,
                                       g6::util::ThreadPool* pool)
    : mode_(mode), fmt_(fmt), eps2_(eps * eps),
      pool_(pool != nullptr ? pool : &g6::util::shared_pool()) {
  G6_CHECK(n_hosts > 0, "need at least one host");
  if (mode == HostMode::kMatrix2D) {
    const int side = static_cast<int>(std::lround(std::sqrt(double(n_hosts))));
    G6_CHECK(side * side == n_hosts, "matrix mode needs a square host count");
  }
  hosts_.reserve(static_cast<std::size_t>(n_hosts));
  for (int h = 0; h < n_hosts; ++h) hosts_.emplace_back(h, fmt);
  transport_ = std::make_unique<Transport>(n_hosts, ethernet);
  host_partial_.resize(static_cast<std::size_t>(n_hosts));
  host_batch_.resize(static_cast<std::size_t>(n_hosts));
  host_batch_idx_.resize(static_cast<std::size_t>(n_hosts));
  alive_.assign(static_cast<std::size_t>(n_hosts), 1);
  alive_real_.resize(static_cast<std::size_t>(real_hosts()));
  for (int h = 0; h < real_hosts(); ++h) alive_real_[static_cast<std::size_t>(h)] = h;
  agg_ = std::make_unique<MessageAggregator>(n_hosts);
  if (mode == HostMode::kMatrix2D)
    matrix_stage_.resize(static_cast<std::size_t>(grid_side()) *
                         static_cast<std::size_t>(grid_side()));
}

void ParallelHostSystem::set_fault_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  transport_->set_fault_injector(injector);
  shadow_.clear();
  shadow_valid_.clear();
  if (injector_ != nullptr) {
    // Rebuild the driver shadow from whatever the hosts already hold (the
    // mirror of Grape6Machine::set_fault_injector), so an injector attached
    // after load() can still re-replicate a dead host's j-images.
    for (const SimHost& host : hosts_) {
      for (const JParticle& p : host.jstore()) {
        if (shadow_valid_.size() <= p.id) {
          shadow_.resize(p.id + 1);
          shadow_valid_.resize(p.id + 1, 0);
        }
        shadow_[p.id] = p;
        shadow_valid_[p.id] = 1;
      }
    }
  }
}

int ParallelHostSystem::alive_host_count() const {
  int n = 0;
  for (char a : alive_) n += a != 0;
  return n;
}

Message ParallelHostSystem::exchange(int src, int dst, int tag,
                                     const std::vector<std::byte>& payload) {
  const fault::RetryPolicy policy;
  int link_retries = 0;
  int resends = 0;
  for (;;) {
    if (transport_->send(src, dst, tag, payload) == SendStatus::kLinkDown) {
      // Transient link-down: bounded retry with exponential backoff, the
      // wait charged as modeled link time (the host spins on the NIC).
      G6_CHECK(link_retries + 1 < policy.max_attempts,
               "link " + std::to_string(src) + "->" + std::to_string(dst) +
                   " still down after " + std::to_string(policy.max_attempts) +
                   " attempts");
      const double backoff = policy.backoff_seconds(link_retries++);
      transport_->charge_seconds(src, backoff);
      if (injector_ != nullptr) {
        injector_->stats().link_retries.fetch_add(1, std::memory_order_relaxed);
        injector_->stats().add_recovery_seconds(backoff);
      }
      continue;
    }
    Message m;
    const RecvStatus rs = transport_->try_recv(dst, src, tag, m);
    if (rs == RecvStatus::kOk) return m;
    G6_CHECK(rs != RecvStatus::kTagMismatch, "BSP protocol error (tag mismatch)");
    // Dropped in flight (kEmpty) or CRC mismatch (kCorrupt): resend. The
    // retransmission pays full link time again via send(); count it as
    // recovery cost too.
    G6_CHECK(++resends <= kMaxResends, "message from " + std::to_string(src) +
                                           " to " + std::to_string(dst) +
                                           " undeliverable after " +
                                           std::to_string(kMaxResends) + " resends");
    if (injector_ != nullptr) {
      injector_->stats().resends.fetch_add(1, std::memory_order_relaxed);
      injector_->stats().add_recovery_seconds(transport_->link().time(payload.size()));
    }
  }
}

void ParallelHostSystem::parallel_partials(double t, const std::vector<IParticle>& batch,
                                           std::size_t n_hosts_active) {
  // The barrier-separated compute phase of the BSP timeline: every alive
  // simulated host runs its software GRAPE concurrently, writing only its
  // own partial buffer and per-host scratch. parallel_for returns when all
  // hosts are done — the synchronisation point the paper's hosts hit before
  // the next exchange phase.
  pool_->parallel_for(
      n_hosts_active,
      [&](std::size_t h0, std::size_t h1) {
        for (std::size_t h = h0; h < h1; ++h) {
          if (alive_[h] == 0) continue;
          G6_TRACE_SPAN_CAT("host-partial", "cluster");
          hosts_[h].partial_forces(t, batch, eps2_, host_partial_[h]);
        }
      },
      /*grain=*/1);
}

int ParallelHostSystem::grid_side() const {
  return static_cast<int>(std::lround(std::sqrt(double(hosts_.size()))));
}

int ParallelHostSystem::real_hosts() const {
  return mode_ == HostMode::kMatrix2D ? grid_side() : hosts();
}

int ParallelHostSystem::owner_of(std::uint32_t gid) const {
  const int base = static_cast<int>(gid % static_cast<std::uint32_t>(real_hosts()));
  if (alive_[static_cast<std::size_t>(base)] != 0) return base;
  // Dead owner: deterministic remap over the surviving real hosts.
  return alive_real_[gid % alive_real_.size()];
}

int ParallelHostSystem::col_root(int col) const {
  const int side = grid_side();
  for (int r = 0; r < side; ++r) {
    const int h = r * side + col;
    if (alive_[static_cast<std::size_t>(h)] != 0) return h;
  }
  return -1;
}

int ParallelHostSystem::replacement_host(int dead) const {
  if (mode_ == HostMode::kMatrix2D) {
    const int root = col_root(dead % grid_side());
    if (root >= 0) return root;
  }
  for (int h = 0; h < hosts(); ++h)
    if (alive_[static_cast<std::size_t>(h)] != 0) return h;
  g6::util::raise("no alive host left to hold j-particles");
}

int ParallelHostSystem::matrix_holder(std::uint32_t gid) const {
  const int side = grid_side();
  const int col = static_cast<int>(gid % static_cast<std::uint32_t>(side));
  const int row = static_cast<int>((gid / static_cast<std::uint32_t>(side)) %
                                   static_cast<std::uint32_t>(side));
  const int def = row * side + col;
  if (alive_[static_cast<std::size_t>(def)] != 0) return def;
  return replacement_host(def);
}

void ParallelHostSystem::drop_host(int h) {
  G6_CHECK(h > 0 && h < hosts(), "cannot drop host 0 (the driver) or out of range");
  G6_CHECK(injector_ != nullptr, "host drop needs an attached injector (the shadow)");
  if (alive_[static_cast<std::size_t>(h)] == 0) return;

  // Which j-images the dying host currently holds (evaluated against the
  // pre-drop liveness so chained drops resolve correctly).
  auto holder_of = [&](std::uint32_t gid) {
    switch (mode_) {
      case HostMode::kNaive: return owner_of(gid);  // replica everywhere; track owner
      case HostMode::kHardwareNet: return owner_of(gid);
      case HostMode::kMatrix2D: return matrix_holder(gid);
    }
    return 0;
  };
  std::vector<std::uint32_t> lost;
  for (std::uint32_t gid = 0; gid < shadow_valid_.size(); ++gid)
    if (shadow_valid_[gid] != 0 && holder_of(gid) == h) lost.push_back(gid);

  alive_[static_cast<std::size_t>(h)] = 0;
  alive_real_.clear();
  for (int r = 0; r < real_hosts(); ++r)
    if (alive_[static_cast<std::size_t>(r)] != 0) alive_real_.push_back(r);
  G6_CHECK(!alive_real_.empty(), "all real hosts dead");

  auto& stats = injector_->stats();
  stats.dead_hosts.fetch_add(1, std::memory_order_relaxed);
  g6::obs::FlightRecorder::global().note(
      "recovery", "host " + std::to_string(h) + " dropped: re-replicating " +
                      std::to_string(lost.size()) + " j-images to survivors");

  // Re-replicate the lost images onto survivors from the driver's shadow.
  // In naive mode every host already holds a full replica, so only the
  // integration ownership moves (owner_of remaps automatically) — no bytes.
  std::uint64_t bytes = 0;
  for (std::uint32_t gid : lost) {
    if (mode_ != HostMode::kNaive) {
      const int repl = holder_of(gid);  // post-drop mapping
      hosts_[static_cast<std::size_t>(repl)].write_j(gid, shadow_[gid]);
      bytes += g6::hw::kJParticleBytes;
    }
  }
  stats.remapped_particles.fetch_add(lost.size(), std::memory_order_relaxed);
  if (bytes > 0) {
    // The re-replication travels over Ethernet from the shadow's host.
    const double t = transport_->charge(0, bytes);
    stats.add_recovery_seconds(t);
  }
}

void ParallelHostSystem::load(std::span<const JParticle> particles) {
  n_particles_ = particles.size();
  for (const JParticle& p : particles) {
    if (injector_ != nullptr) {
      if (shadow_valid_.size() <= p.id) {
        shadow_.resize(p.id + 1);
        shadow_valid_.resize(p.id + 1, 0);
      }
      shadow_[p.id] = p;
      shadow_valid_[p.id] = 1;
    }
    switch (mode_) {
      case HostMode::kNaive:
        for (auto& h : hosts_)
          if (alive_[static_cast<std::size_t>(h.rank())] != 0) h.write_j(p.id, p);
        break;
      case HostMode::kHardwareNet:
        hosts_[static_cast<std::size_t>(owner_of(p.id))].write_j(p.id, p);
        break;
      case HostMode::kMatrix2D:
        hosts_[static_cast<std::size_t>(matrix_holder(p.id))].write_j(p.id, p);
        break;
    }
  }
}

void ParallelHostSystem::update(std::span<const JParticle> particles) {
  if (aggregate_ && mode_ != HostMode::kHardwareNet) {
    update_aggregated(particles);
    return;
  }
  update_per_record(particles);
}

void ParallelHostSystem::update_per_record(std::span<const JParticle> particles) {
  for (const JParticle& p : particles) {
    if (injector_ != nullptr && p.id < shadow_valid_.size() &&
        shadow_valid_[p.id] != 0)
      shadow_[p.id] = p;
    const int owner = owner_of(p.id);
    switch (mode_) {
      case HostMode::kNaive: {
        // The owner corrects the particle, then every other alive host needs
        // the new state for its full replica: all-to-all over Ethernet. This
        // is the non-scaling traffic of figure 3.
        hosts_[static_cast<std::size_t>(owner)].write_j(p.id, p);
        for (int h = 0; h < hosts(); ++h) {
          if (h == owner || alive_[static_cast<std::size_t>(h)] == 0) continue;
          auto msg = exchange(owner, h, kTagJUpdate, pack_j(p));
          std::size_t off = 0;
          hosts_[static_cast<std::size_t>(h)].write_j(p.id, unpack_j(msg.payload, off));
        }
        hw_bytes_.pci +=
            g6::hw::kJParticleBytes * static_cast<std::uint64_t>(alive_host_count());
        break;
      }
      case HostMode::kHardwareNet:
        // The j-image lives on the owner's own boards: PCI + one LVDS hop,
        // no host-to-host traffic at all.
        hosts_[static_cast<std::size_t>(owner)].write_j(p.id, p);
        hw_bytes_.pci += g6::hw::kJParticleBytes;
        hw_bytes_.lvds += g6::hw::kJParticleBytes;
        break;
      case HostMode::kMatrix2D: {
        const int side = grid_side();
        const int target = matrix_holder(p.id);
        // Hop from the owner down the holder's column, through the alive
        // hosts that emulate network boards (entering at the column root
        // when the owner sits in another column).
        int cur = owner;
        if (cur != target) {
          const int colh = target % side;
          std::vector<int> path;
          if (cur % side != colh) path.push_back(col_root(colh));
          // The entry hop can already be the target: a dropped row-0 host
          // promotes a deeper host to column root, and that root is exactly
          // where the dead holder's j-images were re-replicated. Only descend
          // while the path has not reached the target yet.
          if (path.empty() || path.back() != target) {
            for (int r = 0; r < side; ++r) {
              const int hop = r * side + colh;
              if (alive_[static_cast<std::size_t>(hop)] == 0) continue;
              if (!path.empty() && hop <= path.back()) continue;
              if (cur % side == colh && hop <= cur) continue;
              path.push_back(hop);
              if (hop == target) break;
            }
          }
          for (int next : path) {
            if (next == cur) continue;
            (void)exchange(cur, next, kTagJUpdate, pack_j(p));
            cur = next;
          }
          G6_CHECK(cur == target, "matrix j-update routing failed");
        }
        hosts_[static_cast<std::size_t>(target)].write_j(p.id, p);
        hw_bytes_.pci += g6::hw::kJParticleBytes;
        break;
      }
    }
  }
}

MessageAggregator::Sink ParallelHostSystem::update_sink() {
  return [this](int src, int dst, std::vector<std::byte> frame) {
    const Message msg = exchange(src, dst, kTagJUpdate, frame);
    for (const FrameRecordView& rec : parse_frame(msg.payload)) {
      G6_CHECK(rec.kind == RecordKind::kJUpdate, "non-update record in update frame");
      const auto payload = record_payload(msg.payload, rec);
      std::size_t off = 0;
      const JParticle p = unpack_j(payload, off);
      hosts_[static_cast<std::size_t>(dst)].write_j(p.id, p);
    }
  };
}

std::uint64_t ParallelHostSystem::matrix_update_hops(int owner, int target) const {
  if (owner == target) return 0;
  const int side = grid_side();
  const int colh = target % side;
  std::uint64_t hops = 0;
  int cur = owner;
  if (cur % side != colh) {
    const int root = col_root(colh);
    if (root != cur) {
      ++hops;
      cur = root;
    }
    if (cur == target) return hops;
  }
  for (int r = cur / side + 1; r < side; ++r) {
    const int hop = r * side + colh;
    if (alive_[static_cast<std::size_t>(hop)] == 0) continue;
    ++hops;
    if (hop == target) break;
  }
  return hops;
}

std::vector<std::byte> ParallelHostSystem::deliver_matrix_frame(
    int host, const std::vector<std::byte>& frame, std::size_t& records) {
  FrameBuilder keep;
  for (const FrameRecordView& rec : parse_frame(frame)) {
    G6_CHECK(rec.kind == RecordKind::kJUpdate, "non-update record in update frame");
    const auto payload = record_payload(frame, rec);
    std::size_t off = 0;
    const JParticle p = unpack_j(payload, off);
    if (matrix_holder(p.id) == host)
      hosts_[static_cast<std::size_t>(host)].write_j(p.id, p);
    else
      keep.add(rec.kind, payload);
  }
  records = keep.records();
  return keep.empty() ? std::vector<std::byte>{} : keep.take();
}

void ParallelHostSystem::route_matrix_update_frame(int owner, int col,
                                                   FrameBuilder& fb) {
  // Store-and-forward down the column: the frame enters at the column root
  // (unless the owner already sits in the column), every alive hop extracts
  // the records addressed to itself and forwards a shrinking frame.
  const int side = grid_side();
  std::size_t records = fb.records();
  std::vector<std::byte> frame = fb.take();
  int cur = owner;
  if (cur % side != col) {
    const int root = col_root(col);
    G6_CHECK(root >= 0, "staged j-updates for a fully dead column");
    agg_->stats().count_frame(frame.size(), records);
    const Message msg = exchange(cur, root, kTagJUpdate, frame);
    cur = root;
    frame = deliver_matrix_frame(cur, msg.payload, records);
  }
  for (int r = cur / side + 1; r < side && records > 0; ++r) {
    const int next = r * side + col;
    if (alive_[static_cast<std::size_t>(next)] == 0) continue;
    agg_->stats().count_frame(frame.size(), records);
    const Message msg = exchange(cur, next, kTagJUpdate, frame);
    cur = next;
    frame = deliver_matrix_frame(cur, msg.payload, records);
  }
  G6_CHECK(records == 0, "matrix aggregated j-update routing failed");
}

void ParallelHostSystem::update_aggregated(std::span<const JParticle> particles) {
  const int side = mode_ == HostMode::kMatrix2D ? grid_side() : 0;
  const auto sink = update_sink();
  for (const JParticle& p : particles) {
    if (injector_ != nullptr && p.id < shadow_valid_.size() &&
        shadow_valid_[p.id] != 0)
      shadow_[p.id] = p;
    const int owner = owner_of(p.id);
    if (mode_ == HostMode::kNaive) {
      hosts_[static_cast<std::size_t>(owner)].write_j(p.id, p);
      const auto rec = pack_j(p);
      for (int h = 0; h < hosts(); ++h) {
        if (h == owner || alive_[static_cast<std::size_t>(h)] == 0) continue;
        agg_->stats().baseline_messages += 1;
        agg_->stage(owner, h, RecordKind::kJUpdate, rec, sink);
      }
      hw_bytes_.pci +=
          g6::hw::kJParticleBytes * static_cast<std::uint64_t>(alive_host_count());
    } else {  // kMatrix2D
      const int target = matrix_holder(p.id);
      if (target == owner) {
        hosts_[static_cast<std::size_t>(target)].write_j(p.id, p);
      } else {
        const int col = target % side;
        const auto rec = pack_j(p);
        agg_->stats().baseline_messages += matrix_update_hops(owner, target);
        FrameBuilder& fb =
            matrix_stage_[static_cast<std::size_t>(owner) *
                              static_cast<std::size_t>(side) +
                          static_cast<std::size_t>(col)];
        if (fb.would_exceed(rec.size(), agg_->capacity())) {
          agg_->stats().capacity_flushes += 1;
          route_matrix_update_frame(owner, col, fb);
        }
        fb.add(RecordKind::kJUpdate, rec);
      }
      hw_bytes_.pci += g6::hw::kJParticleBytes;
    }
  }
  if (!deferred_) flush_updates();
}

void ParallelHostSystem::flush_matrix_updates() {
  const int side = grid_side();
  bool any = false;
  // Destination order: ascending column, then ascending owner — never the
  // order the records were staged in.
  for (int col = 0; col < side; ++col) {
    for (int owner = 0; owner < side; ++owner) {
      FrameBuilder& fb = matrix_stage_[static_cast<std::size_t>(owner) *
                                           static_cast<std::size_t>(side) +
                                       static_cast<std::size_t>(col)];
      if (fb.empty()) continue;
      any = true;
      route_matrix_update_frame(owner, col, fb);
    }
  }
  if (any) agg_->stats().boundary_flushes += 1;
}

bool ParallelHostSystem::has_pending_updates() const {
  if (agg_->pending()) return true;
  for (const FrameBuilder& fb : matrix_stage_)
    if (!fb.empty()) return true;
  return false;
}

double ParallelHostSystem::total_modeled_seconds() const {
  double s = 0.0;
  for (int r = 0; r < hosts(); ++r) s += transport_->stats(r).modeled_seconds;
  return s;
}

void ParallelHostSystem::flush_updates() {
  if (!has_pending_updates()) {
    last_flush_seconds_ = 0.0;
    return;
  }
  const double before = total_modeled_seconds();
  agg_->flush(update_sink());
  if (mode_ == HostMode::kMatrix2D) flush_matrix_updates();
  last_flush_seconds_ = total_modeled_seconds() - before;
  agg_->stats().flush_seconds += last_flush_seconds_;
}

void ParallelHostSystem::compute(double t, const std::vector<IParticle>& i_batch,
                                 std::vector<ForceAccumulator>& out) {
  // Deferred step-boundary flush: staged j-update frames land before any
  // force is evaluated — and before host-drop events fire, modelling frames
  // that were already on the wire when the host died.
  if (aggregate_ && has_pending_updates()) {
    agg_->stats().deferred_flushes += 1;
    flush_updates();
  } else {
    last_flush_seconds_ = 0.0;
  }
  // Serial driver point of the cluster fault domain: host-drop events fire
  // here, before any phase of the step fans out.
  if (injector_ != nullptr && injector_->armed()) {
    for (const fault::FaultEvent& event : injector_->cluster_step()) {
      G6_CHECK(event.kind == fault::FaultKind::kHostDrop,
               "non-cluster fault event routed to the cluster domain");
      injector_->stats()
          .injected[static_cast<int>(event.kind)]
          .fetch_add(1, std::memory_order_relaxed);
      drop_host(event.a);
    }
  }
  switch (mode_) {
    case HostMode::kNaive: return compute_naive(t, i_batch, out);
    case HostMode::kHardwareNet: return compute_hardware_net(t, i_batch, out);
    case HostMode::kMatrix2D: return compute_matrix(t, i_batch, out);
  }
}

void ParallelHostSystem::compute_naive(double t, const std::vector<IParticle>& i_batch,
                                       std::vector<ForceAccumulator>& out) {
  // Each host evaluates the FULL force for the i-particles it owns, on its
  // own full-replica GRAPE. No inter-host traffic here (it was all paid in
  // update()). Ownership slicing stays on the driving thread; the hosts
  // then step concurrently, each on its own i-slice.
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  const auto nh = static_cast<std::size_t>(hosts());
  for (std::size_t h = 0; h < nh; ++h) {
    host_batch_[h].clear();
    host_batch_idx_[h].clear();
  }
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const auto h = static_cast<std::size_t>(owner_of(i_batch[k].id));
    host_batch_[h].push_back(i_batch[k]);
    host_batch_idx_[h].push_back(k);
  }
  pool_->parallel_for(
      nh,
      [&](std::size_t h0, std::size_t h1) {
        for (std::size_t h = h0; h < h1; ++h) {
          if (host_batch_[h].empty()) continue;
          G6_TRACE_SPAN_CAT("host-partial", "cluster");
          hosts_[h].partial_forces(t, host_batch_[h], eps2_, host_partial_[h]);
        }
      },
      /*grain=*/1);
  for (std::size_t h = 0; h < nh; ++h) {
    if (host_batch_[h].empty()) continue;
    for (std::size_t m = 0; m < host_batch_[h].size(); ++m)
      out[host_batch_idx_[h][m]] += host_partial_[h][m];
    hw_bytes_.pci +=
        host_batch_[h].size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes);
    hw_bytes_.lvds +=
        host_batch_[h].size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes);
  }
}

void ParallelHostSystem::compute_hardware_net(double t,
                                              const std::vector<IParticle>& i_batch,
                                              std::vector<ForceAccumulator>& out) {
  // The network boards broadcast every i-particle to every host's boards and
  // reduce the partial forces in hardware — all on LVDS, nothing on Ethernet.
  // All alive hosts compute concurrently; the reduction below merges in host
  // order (exact fixed point, so identical to any other order bit for bit).
  parallel_partials(t, i_batch, static_cast<std::size_t>(hosts()));
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  for (int h = 0; h < hosts(); ++h) {
    if (alive_[static_cast<std::size_t>(h)] == 0) continue;
    const auto& part = host_partial_[static_cast<std::size_t>(h)];
    for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += part[k];
  }
  hw_bytes_.pci += i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes);
  hw_bytes_.lvds += i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes) *
                    static_cast<std::uint64_t>(alive_host_count());
}

Message ParallelHostSystem::exchange_leg(int src, int dst, int tag,
                                         const std::vector<std::byte>& raw,
                                         RecordKind kind) {
  if (!aggregate_) return exchange(src, dst, tag, raw);
  // Collective legs ride the aggregate frame format too, so the CRC (and the
  // fault injector's corruption) always operates on frames with per-record
  // offsets, and the g6.net.* counters see every Ethernet message.
  auto frame = wrap_record(kind, raw);
  agg_->stats().baseline_messages += 1;
  agg_->stats().count_frame(frame.size(), 1);
  Message m = exchange(src, dst, tag, frame);
  m.payload = unwrap_record(m.payload, kind);
  return m;
}

void ParallelHostSystem::compute_matrix(double t, const std::vector<IParticle>& i_batch,
                                        std::vector<ForceAccumulator>& out) {
  if (overlap_ && i_batch.size() >= 2)
    return compute_matrix_overlap(t, i_batch, out);
  const int side = grid_side();

  // Phase 1: row-0 all-gather — every alive real host sends the i-particles
  // it owns to the other alive real hosts (after this all real hosts hold
  // the full batch; we use the caller's batch directly but pay the traffic).
  for (int c : alive_real_) {
    std::vector<IParticle> mine;
    for (const IParticle& p : i_batch)
      if (owner_of(p.id) == c) mine.push_back(p);
    const auto payload = pack_i_batch(mine);
    for (int c2 : alive_real_) {
      if (c2 == c) continue;
      (void)exchange_leg(c, c2, kTagIBatch, payload, RecordKind::kIBatch);
    }
  }

  // Phase 2: each column's root receives the full batch (directly from
  // host 0 when its row-0 host died) and broadcasts it down the column
  // (store-and-forward, hop by hop — these hosts emulate network boards).
  const auto full = pack_i_batch(i_batch);
  for (int c = 0; c < side; ++c) {
    const int root = col_root(c);
    if (root < 0) continue;  // whole column dead: its j lives elsewhere now
    if (root >= side && root != 0)
      (void)exchange_leg(0, root, kTagIBatch, full, RecordKind::kIBatch);
    int prev = root;
    for (int r = root / side + 1; r < side; ++r) {
      const int next = r * side + c;
      if (alive_[static_cast<std::size_t>(next)] == 0) continue;
      (void)exchange_leg(prev, next, kTagIBatch, full, RecordKind::kIBatch);
      prev = next;
    }
  }
  hw_bytes_.pci += i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes) *
                   static_cast<std::uint64_t>(alive_real_.size());

  // Phase 3a: every alive host computes its partial forces from its j-slice —
  // the concurrent compute phase of the matrix timeline (all alive hosts
  // step in parallel, then barrier).
  parallel_partials(t, i_batch, hosts_.size());

  // Phase 3b: column reduction back to each column's root (merge hop by
  // hop, exact). The wire carries the same running sums as the serial
  // schedule did.
  std::vector<std::vector<ForceAccumulator>> column_total(
      static_cast<std::size_t>(side));
  for (int c = 0; c < side; ++c) {
    const int root = col_root(c);
    if (root < 0) continue;
    std::vector<int> chain;  // alive column hosts, root first
    for (int r = root / side; r < side; ++r) {
      const int h = r * side + c;
      if (alive_[static_cast<std::size_t>(h)] != 0) chain.push_back(h);
    }
    std::vector<ForceAccumulator> acc = host_partial_[static_cast<std::size_t>(chain.back())];
    for (std::size_t k = chain.size() - 1; k-- > 0;) {
      const int from = chain[k + 1];
      const int to = chain[k];
      auto msg = exchange_leg(from, to, kTagPartial, pack_accumulators(acc),
                              RecordKind::kPartial);
      auto received = unpack_accumulators(msg.payload, fmt_);
      std::vector<ForceAccumulator> local = host_partial_[static_cast<std::size_t>(to)];
      for (std::size_t j = 0; j < local.size(); ++j) local[j] += received[j];
      acc = std::move(local);
    }
    column_total[static_cast<std::size_t>(c)] = std::move(acc);
  }

  // Phase 4: all-reduce of the column totals to host 0 (merge in column
  // order so the result is deterministic — and exact anyway).
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  for (int c = 0; c < side; ++c) {
    const int root = col_root(c);
    if (root < 0) continue;
    if (root != 0) {
      const auto payload = pack_accumulators(column_total[static_cast<std::size_t>(c)]);
      (void)exchange_leg(root, 0, kTagPartial, payload, RecordKind::kPartial);
    }
    const auto& part = column_total[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < i_batch.size(); ++k) out[k] += part[k];
  }
}

std::vector<std::vector<ForceAccumulator>> ParallelHostSystem::reduce_block(
    int parity, std::size_t block_size) {
  const int side = grid_side();
  const auto& partial = host_partial_ovl_[static_cast<std::size_t>(parity)];
  std::vector<std::vector<ForceAccumulator>> column_total(
      static_cast<std::size_t>(side));
  (void)block_size;
  for (int c = 0; c < side; ++c) {
    const int root = col_root(c);
    if (root < 0) continue;
    std::vector<int> chain;
    for (int r = root / side; r < side; ++r) {
      const int h = r * side + c;
      if (alive_[static_cast<std::size_t>(h)] != 0) chain.push_back(h);
    }
    std::vector<ForceAccumulator> acc = partial[static_cast<std::size_t>(chain.back())];
    for (std::size_t k = chain.size() - 1; k-- > 0;) {
      const int from = chain[k + 1];
      const int to = chain[k];
      auto msg = exchange_leg(from, to, kTagPartial, pack_accumulators(acc),
                              RecordKind::kPartial);
      auto received = unpack_accumulators(msg.payload, fmt_);
      std::vector<ForceAccumulator> local = partial[static_cast<std::size_t>(to)];
      for (std::size_t j = 0; j < local.size(); ++j) local[j] += received[j];
      acc = std::move(local);
    }
    column_total[static_cast<std::size_t>(c)] = std::move(acc);
  }
  return column_total;
}

void ParallelHostSystem::compute_matrix_overlap(double t,
                                                const std::vector<IParticle>& i_batch,
                                                std::vector<ForceAccumulator>& out) {
  // Double-buffered two-block pipeline: iteration k broadcasts block k down
  // the columns, computes block k-1 on every host, and reduces block k-2 —
  // the collective legs of one block in flight while the hosts crunch the
  // other. Every Transport operation runs inside the single comm task
  // (index 0 of the parallel_for), so the wire order — and with it the fault
  // injector's op counters — is the same at any thread count. The serial
  // fallback executes the comm task first, which is a valid order: a block's
  // broadcast never feeds the same iteration's compute, and its reduction
  // reads partials finished one barrier earlier.
  const int side = grid_side();

  // Phase 1 (row all-gather of owned i-particles) covers the whole batch.
  for (int c : alive_real_) {
    std::vector<IParticle> mine;
    for (const IParticle& p : i_batch)
      if (owner_of(p.id) == c) mine.push_back(p);
    const auto payload = pack_i_batch(mine);
    for (int c2 : alive_real_) {
      if (c2 == c) continue;
      (void)exchange_leg(c, c2, kTagIBatch, payload, RecordKind::kIBatch);
    }
  }
  hw_bytes_.pci += i_batch.size() * (g6::hw::kIParticleBytes + g6::hw::kResultBytes) *
                   static_cast<std::uint64_t>(alive_real_.size());

  constexpr int kBlocks = 2;
  const std::size_t half = (i_batch.size() + 1) / 2;
  std::array<std::vector<IParticle>, 2> blk;
  blk[0].assign(i_batch.begin(), i_batch.begin() + static_cast<std::ptrdiff_t>(half));
  blk[1].assign(i_batch.begin() + static_cast<std::ptrdiff_t>(half), i_batch.end());
  const std::array<std::size_t, 2> blk_off = {0, half};

  const std::size_t nh = hosts_.size();
  for (auto& parity : host_partial_ovl_) parity.resize(nh);
  std::array<std::vector<std::vector<ForceAccumulator>>, 2> totals;  // per block

  auto broadcast_block = [&](int b) {
    const auto full = pack_i_batch(blk[static_cast<std::size_t>(b)]);
    for (int c = 0; c < side; ++c) {
      const int root = col_root(c);
      if (root < 0) continue;
      if (root >= side && root != 0)
        (void)exchange_leg(0, root, kTagIBatch, full, RecordKind::kIBatch);
      int prev = root;
      for (int r = root / side + 1; r < side; ++r) {
        const int next = r * side + c;
        if (alive_[static_cast<std::size_t>(next)] == 0) continue;
        (void)exchange_leg(prev, next, kTagIBatch, full, RecordKind::kIBatch);
        prev = next;
      }
    }
  };

  for (int k = 0; k < kBlocks + 2; ++k) {
    const bool has_compute = k >= 1 && k <= kBlocks;
    const bool has_comm = k < kBlocks || k >= 2;
    const double comm_before = total_modeled_seconds();
    pool_->parallel_for(
        nh + 1,
        [&](std::size_t i0, std::size_t i1) {
          for (std::size_t idx = i0; idx < i1; ++idx) {
            if (idx == 0) {
              G6_TRACE_SPAN_CAT("overlap-comm", "cluster");
              if (k < kBlocks) broadcast_block(k);
              if (k >= 2)
                totals[static_cast<std::size_t>(k - 2)] =
                    reduce_block((k - 2) & 1, blk[static_cast<std::size_t>(k - 2)].size());
            } else if (has_compute) {
              const std::size_t h = idx - 1;
              if (alive_[h] == 0) continue;
              G6_TRACE_SPAN_CAT("host-partial", "cluster");
              hosts_[h].partial_forces(
                  t, blk[static_cast<std::size_t>(k - 1)], eps2_,
                  host_partial_ovl_[static_cast<std::size_t>((k - 1) & 1)][h]);
            }
          }
        },
        /*grain=*/1);
    if (has_compute && has_comm) {
      // The comm legs of this iteration ran under the compute barrier: in the
      // overlapped timeline their modeled link time is hidden.
      agg_->stats().overlap_saved_seconds += total_modeled_seconds() - comm_before;
    }
  }

  // Phase 4 per block: column totals to host 0, merged in column order.
  out.assign(i_batch.size(), ForceAccumulator(fmt_));
  for (int b = 0; b < kBlocks; ++b) {
    for (int c = 0; c < side; ++c) {
      const int root = col_root(c);
      if (root < 0) continue;
      const auto& part = totals[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)];
      if (root != 0)
        (void)exchange_leg(root, 0, kTagPartial, pack_accumulators(part),
                           RecordKind::kPartial);
      for (std::size_t k = 0; k < part.size(); ++k) out[blk_off[static_cast<std::size_t>(b)] + k] += part[k];
    }
  }
}

std::uint64_t ParallelHostSystem::ethernet_bytes() const {
  std::uint64_t total = 0;
  for (int h = 0; h < hosts(); ++h) total += transport_->stats(h).bytes_sent;
  return total;
}

}  // namespace g6::cluster
