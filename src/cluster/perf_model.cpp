#include "cluster/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace g6::cluster {

namespace hw = g6::hw;

PerfModel::PerfModel(PerfParams params) : p_(params) {
  G6_CHECK(p_.machine.total_chips() > 0, "empty machine");
  G6_CHECK(p_.host_flops > 0.0, "host speed must be positive");
}

StepBreakdown PerfModel::blockstep(std::size_t n_total, std::size_t n_act,
                                   HostMode mode) const {
  G6_CHECK(n_act > 0 && n_act <= n_total, "bad block size");
  const auto& m = p_.machine;
  const double clock = hw::kClockHz;
  const int p = m.total_nodes();           // hosts
  const int clusters = m.clusters;
  const auto chips = static_cast<double>(m.total_chips());
  const double n = static_cast<double>(n_total);
  const double na = static_cast<double>(n_act);

  StepBreakdown t;

  auto pipeline_time = [&](double nj_chip, double ni_per_board) {
    const double passes = std::ceil(ni_per_board / hw::kIPerChipPass);
    return passes * (hw::kVmp * nj_chip + hw::kPipelineLatency) / clock;
  };

  switch (mode) {
    case HostMode::kHardwareNet:
    case HostMode::kMatrix2D: {
      // j-space divided over every chip in the machine; all boards see the
      // full i-batch.
      const double nj_chip = std::ceil(n / chips);
      t.predict = nj_chip / clock;
      t.pipeline = pipeline_time(nj_chip, na);

      const double i_bytes = na * hw::kIParticleBytes;
      const double r_bytes = na * hw::kResultBytes;
      const double own = na / p;  // each host's share of the block

      if (mode == HostMode::kHardwareNet) {
        // PCI: the host pushes its own i-particles; LVDS: the NB tree
        // broadcasts the full batch into each board.
        t.i_comm = own * hw::kIParticleBytes / p_.pci_bytes_per_sec +
                   i_bytes / p_.lvds_bytes_per_sec + p_.lvds_latency_sec;
        t.result_comm = r_bytes / p_.lvds_bytes_per_sec +
                        own * hw::kResultBytes / p_.pci_bytes_per_sec +
                        p_.lvds_latency_sec;
        // Cross-cluster traffic over GbE: all-gather of i-particles and the
        // return of partial forces for the host's own i-particles.
        if (clusters > 1) {
          const double frac = static_cast<double>(clusters - 1) / clusters;
          t.i_comm += i_bytes * frac / p_.gbe_bytes_per_sec +
                      std::ceil(std::log2(clusters)) * p_.gbe_latency_sec;
          t.result_comm += own * hw::kResultBytes * (clusters - 1) * 2 /
                               p_.gbe_bytes_per_sec +
                           (clusters - 1) * p_.gbe_latency_sec;
        }
        t.host = own * p_.host_ops_per_step / p_.host_flops;
      } else {
        // 2-D matrix: the same logical traffic, but every hop rides GbE and
        // the column broadcast is store-and-forward over side-1 hops.
        const int side = static_cast<int>(std::lround(std::sqrt(double(p))));
        G6_CHECK(side * side == p, "matrix mode needs a square host count");
        const double own_row = na / side;  // real hosts = one row
        t.i_comm = own_row * hw::kIParticleBytes / p_.pci_bytes_per_sec +
                   // row all-gather + column store-and-forward broadcast
                   (i_bytes * (side - 1) / side) / p_.gbe_bytes_per_sec +
                   (side - 1) * (i_bytes / p_.gbe_bytes_per_sec +
                                 p_.gbe_latency_sec);
        t.result_comm = own_row * hw::kResultBytes / p_.pci_bytes_per_sec +
                        (side - 1) * (r_bytes / p_.gbe_bytes_per_sec +
                                      p_.gbe_latency_sec) +
                        (r_bytes * (side - 1) / side) / p_.gbe_bytes_per_sec;
        t.host = own_row * p_.host_ops_per_step / p_.host_flops;
      }

      const double own_upd =
          na / (mode == HostMode::kHardwareNet
                    ? p
                    : static_cast<int>(std::lround(std::sqrt(double(p)))));
      t.j_update = own_upd * hw::kJParticleBytes *
                   (1.0 / p_.pci_bytes_per_sec + 1.0 / p_.lvds_bytes_per_sec);
      t.sync = 2.0 * p_.gbe_latency_sec * std::ceil(std::log2(std::max(p, 2)));
      break;
    }

    case HostMode::kNaive: {
      // Figure 3: every host replicates all N particles on its own 1/p of
      // the machine; communication is the all-to-all exchange of corrected
      // particles, which does not shrink with p.
      const double chips_per_host = chips / p;
      const double nj_chip = std::ceil(n / chips_per_host);
      const double own = na / p;
      t.predict = nj_chip / clock;
      t.pipeline = pipeline_time(nj_chip, own);
      t.i_comm = own * hw::kIParticleBytes / p_.pci_bytes_per_sec +
                 own * hw::kIParticleBytes / p_.lvds_bytes_per_sec;
      t.result_comm = own * hw::kResultBytes / p_.pci_bytes_per_sec +
                      own * hw::kResultBytes / p_.lvds_bytes_per_sec;
      // Every host must send its corrected particles to all others and
      // receive everyone else's: ~2 * n_act * (p-1)/p particle records.
      const double xfer = 2.0 * na * hw::kJParticleBytes *
                          (static_cast<double>(p - 1) / p);
      t.j_update = own * hw::kJParticleBytes *
                       (1.0 / p_.pci_bytes_per_sec + 1.0 / p_.lvds_bytes_per_sec) +
                   xfer / p_.gbe_bytes_per_sec +
                   (p - 1) * p_.gbe_latency_sec;
      t.host = own * p_.host_ops_per_step / p_.host_flops;
      t.sync = 2.0 * p_.gbe_latency_sec * std::ceil(std::log2(std::max(p, 2)));
      break;
    }
  }
  return t;
}

double Degradation::alive_chip_fraction(const g6::hw::MachineConfig& m) const {
  const double total = static_cast<double>(m.total_chips());
  const double dead = std::min(
      total - 1.0, static_cast<double>(dead_boards) * m.chips_per_board +
                       static_cast<double>(dead_chips));
  return (total - std::max(0.0, dead)) / total;
}

Degradation Degradation::from_stats(const g6::fault::FaultStatsSnapshot& s) {
  Degradation d;
  d.dead_chips = static_cast<int>(s.excluded_chips);
  d.dead_boards = static_cast<int>(s.excluded_boards);
  d.dead_hosts = static_cast<int>(s.dead_hosts);
  d.recovery_seconds = s.recovery_modeled_seconds;
  return d;
}

RunEstimate PerfModel::run_degraded(std::size_t n_total,
                                    std::span<const BlockCount> blocks,
                                    const Degradation& deg,
                                    HostMode mode) const {
  const double frac = deg.alive_chip_fraction(p_.machine);
  const int p = p_.machine.total_nodes();
  G6_CHECK(deg.dead_hosts >= 0 && deg.dead_hosts < p,
           "at least one host must survive");
  const double hfrac = static_cast<double>(p - deg.dead_hosts) / p;

  RunEstimate est;
  for (const BlockCount& b : blocks) {
    if (b.count == 0 || b.n_act == 0) continue;
    StepBreakdown t = blockstep(n_total, b.n_act, mode);
    // The surviving chips hold 1/frac more j-particles each, stretching the
    // j-bound terms; a dropped host's PCI traffic and integration work moves
    // onto the survivors.
    t.predict /= frac;
    t.pipeline /= frac;
    t.host /= hfrac;
    t.j_update /= hfrac;
    est.seconds += t.total(p_.overlap_comm) * static_cast<double>(b.count);
    est.operations +=
        step_operations(n_total, b.n_act) * static_cast<double>(b.count);
  }
  est.seconds += deg.recovery_seconds;
  if (est.seconds > 0.0) est.sustained_flops = est.operations / est.seconds;
  est.efficiency = est.sustained_flops / peak_flops();
  return est;
}

RunEstimate PerfModel::run(std::size_t n_total, std::span<const BlockCount> blocks,
                           HostMode mode) const {
  RunEstimate est;
  for (const BlockCount& b : blocks) {
    if (b.count == 0 || b.n_act == 0) continue;
    const double per_step = blockstep_seconds(n_total, b.n_act, mode);
    est.seconds += per_step * static_cast<double>(b.count);
    est.operations += step_operations(n_total, b.n_act) * static_cast<double>(b.count);
  }
  if (est.seconds > 0.0) est.sustained_flops = est.operations / est.seconds;
  est.efficiency = est.sustained_flops / peak_flops();
  return est;
}

namespace {
// Wire size of one serialized accumulator (pack_accumulators: 7 raw int64).
constexpr std::size_t kAccumulatorBytes = 7 * sizeof(std::int64_t);
// One staged j-update record inside a frame: header + pack_j payload.
constexpr std::size_t kStagedRecordBytes = kRecordHeaderBytes + kJUpdateRecordBytes;
}  // namespace

CommEstimate PerfModel::update_comm(int n_hosts, HostMode mode,
                                    std::size_t n_corrected,
                                    bool aggregated) const {
  G6_CHECK(n_hosts > 0, "need at least one host");
  CommEstimate est;
  const auto p = static_cast<std::uint32_t>(n_hosts);
  switch (mode) {
    case HostMode::kHardwareNet:
      break;  // j-updates ride PCI + LVDS only

    case HostMode::kNaive: {
      if (!aggregated) {
        // One message per (corrected particle, other host).
        est.messages = static_cast<std::uint64_t>(n_corrected) * (p - 1);
        est.bytes = est.messages * kJUpdateRecordBytes;
        break;
      }
      // Each ordered (owner, dst) pair stages one record per particle the
      // owner corrects; a pair's frame flushes whenever the next record
      // would push it past capacity, and once more at the step boundary.
      const std::uint64_t per_frame =
          (p_.aggregation_capacity_bytes - kFrameHeaderBytes) / kStagedRecordBytes;
      G6_CHECK(per_frame > 0, "aggregation capacity below one j-update record");
      for (std::uint32_t owner = 0; owner < p; ++owner) {
        const std::uint64_t cnt = n_corrected / p + (owner < n_corrected % p ? 1 : 0);
        if (cnt == 0) continue;
        const std::uint64_t frames = (cnt + per_frame - 1) / per_frame;
        est.messages += frames * (p - 1);
        est.bytes += (frames * kFrameHeaderBytes + cnt * kStagedRecordBytes) * (p - 1);
      }
      break;
    }

    case HostMode::kMatrix2D: {
      const int side = static_cast<int>(std::lround(std::sqrt(double(n_hosts))));
      G6_CHECK(side * side == n_hosts, "matrix mode needs a square host count");
      const auto s = static_cast<std::uint32_t>(side);
      if (!aggregated) {
        // With all hosts alive the owner (gid % side) already sits in the
        // holder's column, so a record hops straight down: row hops each.
        for (std::uint32_t gid = 0; gid < n_corrected; ++gid) {
          const std::uint32_t row = (gid / s) % s;
          est.messages += row;
          est.bytes += static_cast<std::uint64_t>(row) * kJUpdateRecordBytes;
        }
        break;
      }
      // One staging bucket per column (owner == column fault-free). Chunks
      // forced out by capacity — and the boundary remainder — descend the
      // column store-and-forward, shedding records at their target rows.
      auto descend = [&](const std::vector<std::uint32_t>& rows) {
        std::size_t remaining = rows.size();
        std::size_t frame = kFrameHeaderBytes + remaining * kStagedRecordBytes;
        std::vector<std::size_t> at_row(s, 0);
        for (std::uint32_t r : rows) at_row[r] += 1;
        for (std::uint32_t r = 1; r < s && remaining > 0; ++r) {
          est.messages += 1;
          est.bytes += frame;
          remaining -= at_row[r];
          frame -= at_row[r] * kStagedRecordBytes;
        }
      };
      const std::uint64_t per_frame =
          (p_.aggregation_capacity_bytes - kFrameHeaderBytes) / kStagedRecordBytes;
      G6_CHECK(per_frame > 0, "aggregation capacity below one j-update record");
      std::vector<std::vector<std::uint32_t>> bucket(s);  // staged record rows
      for (std::uint32_t gid = 0; gid < n_corrected; ++gid) {
        const std::uint32_t row = (gid / s) % s;
        if (row == 0) continue;  // holder == owner: no Ethernet
        auto& b = bucket[gid % s];
        if (b.size() == per_frame) {
          descend(b);
          b.clear();
        }
        b.push_back(row);
      }
      for (auto& b : bucket)
        if (!b.empty()) descend(b);
      break;
    }
  }
  est.seconds = static_cast<double>(est.messages) * p_.gbe_per_message_sec +
                static_cast<double>(est.bytes) / p_.gbe_bytes_per_sec;
  return est;
}

CommEstimate PerfModel::compute_comm(int n_hosts, HostMode mode, std::size_t n_act,
                                     bool aggregated, bool overlap) const {
  G6_CHECK(n_hosts > 0, "need at least one host");
  CommEstimate est;
  if (mode == HostMode::kMatrix2D) {
    const int side = static_cast<int>(std::lround(std::sqrt(double(n_hosts))));
    G6_CHECK(side * side == n_hosts, "matrix mode needs a square host count");
    const auto s = static_cast<std::uint64_t>(side);
    // Collective legs are single-record frames when aggregated.
    const std::uint64_t wrap =
        aggregated ? kFrameHeaderBytes + kRecordHeaderBytes : 0;
    const std::uint64_t i_bytes = sizeof(IParticle);

    // Phase 1: row-0 all-gather of owned i-particles (sent even when empty).
    for (std::uint64_t c = 0; c < s; ++c) {
      const std::uint64_t own = n_act / s + (c < n_act % s ? 1 : 0);
      est.messages += s - 1;
      est.bytes += (s - 1) * (own * i_bytes + wrap);
    }

    // Column broadcast + reduction + root-to-driver return, per i-block.
    auto block_legs = [&](std::uint64_t blk) {
      est.messages += s * (s - 1);                      // broadcast hops
      est.bytes += s * (s - 1) * (blk * i_bytes + wrap);
      est.messages += s * (s - 1);                      // reduction hops
      est.bytes += s * (s - 1) * (blk * kAccumulatorBytes + wrap);
      est.messages += s - 1;                            // column roots -> host 0
      est.bytes += (s - 1) * (blk * kAccumulatorBytes + wrap);
    };
    if (overlap && n_act >= 2) {
      const std::uint64_t b0 = (n_act + 1) / 2;
      block_legs(b0);
      block_legs(n_act - b0);
    } else {
      block_legs(n_act);
    }
  }
  // Naive compute works on full replicas and hardware-net rides LVDS: no
  // Ethernet in either.
  est.seconds = static_cast<double>(est.messages) * p_.gbe_per_message_sec +
                static_cast<double>(est.bytes) / p_.gbe_bytes_per_sec;
  return est;
}

std::array<double, g6::obs::kPhaseCount> to_phase_array(const StepBreakdown& bd) {
  using g6::obs::Phase;
  std::array<double, g6::obs::kPhaseCount> out{};
  out[static_cast<std::size_t>(Phase::kPredict)] = bd.predict;
  out[static_cast<std::size_t>(Phase::kPipeline)] = bd.pipeline;
  out[static_cast<std::size_t>(Phase::kIComm)] = bd.i_comm;
  out[static_cast<std::size_t>(Phase::kResultComm)] = bd.result_comm;
  out[static_cast<std::size_t>(Phase::kJUpdate)] = bd.j_update;
  out[static_cast<std::size_t>(Phase::kHost)] = bd.host;
  out[static_cast<std::size_t>(Phase::kSync)] = bd.sync;
  return out;
}

}  // namespace g6::cluster
