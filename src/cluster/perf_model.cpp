#include "cluster/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace g6::cluster {

namespace hw = g6::hw;

PerfModel::PerfModel(PerfParams params) : p_(params) {
  G6_CHECK(p_.machine.total_chips() > 0, "empty machine");
  G6_CHECK(p_.host_flops > 0.0, "host speed must be positive");
}

StepBreakdown PerfModel::blockstep(std::size_t n_total, std::size_t n_act,
                                   HostMode mode) const {
  G6_CHECK(n_act > 0 && n_act <= n_total, "bad block size");
  const auto& m = p_.machine;
  const double clock = hw::kClockHz;
  const int p = m.total_nodes();           // hosts
  const int clusters = m.clusters;
  const auto chips = static_cast<double>(m.total_chips());
  const double n = static_cast<double>(n_total);
  const double na = static_cast<double>(n_act);

  StepBreakdown t;

  auto pipeline_time = [&](double nj_chip, double ni_per_board) {
    const double passes = std::ceil(ni_per_board / hw::kIPerChipPass);
    return passes * (hw::kVmp * nj_chip + hw::kPipelineLatency) / clock;
  };

  switch (mode) {
    case HostMode::kHardwareNet:
    case HostMode::kMatrix2D: {
      // j-space divided over every chip in the machine; all boards see the
      // full i-batch.
      const double nj_chip = std::ceil(n / chips);
      t.predict = nj_chip / clock;
      t.pipeline = pipeline_time(nj_chip, na);

      const double i_bytes = na * hw::kIParticleBytes;
      const double r_bytes = na * hw::kResultBytes;
      const double own = na / p;  // each host's share of the block

      if (mode == HostMode::kHardwareNet) {
        // PCI: the host pushes its own i-particles; LVDS: the NB tree
        // broadcasts the full batch into each board.
        t.i_comm = own * hw::kIParticleBytes / p_.pci_bytes_per_sec +
                   i_bytes / p_.lvds_bytes_per_sec + p_.lvds_latency_sec;
        t.result_comm = r_bytes / p_.lvds_bytes_per_sec +
                        own * hw::kResultBytes / p_.pci_bytes_per_sec +
                        p_.lvds_latency_sec;
        // Cross-cluster traffic over GbE: all-gather of i-particles and the
        // return of partial forces for the host's own i-particles.
        if (clusters > 1) {
          const double frac = static_cast<double>(clusters - 1) / clusters;
          t.i_comm += i_bytes * frac / p_.gbe_bytes_per_sec +
                      std::ceil(std::log2(clusters)) * p_.gbe_latency_sec;
          t.result_comm += own * hw::kResultBytes * (clusters - 1) * 2 /
                               p_.gbe_bytes_per_sec +
                           (clusters - 1) * p_.gbe_latency_sec;
        }
        t.host = own * p_.host_ops_per_step / p_.host_flops;
      } else {
        // 2-D matrix: the same logical traffic, but every hop rides GbE and
        // the column broadcast is store-and-forward over side-1 hops.
        const int side = static_cast<int>(std::lround(std::sqrt(double(p))));
        G6_CHECK(side * side == p, "matrix mode needs a square host count");
        const double own_row = na / side;  // real hosts = one row
        t.i_comm = own_row * hw::kIParticleBytes / p_.pci_bytes_per_sec +
                   // row all-gather + column store-and-forward broadcast
                   (i_bytes * (side - 1) / side) / p_.gbe_bytes_per_sec +
                   (side - 1) * (i_bytes / p_.gbe_bytes_per_sec +
                                 p_.gbe_latency_sec);
        t.result_comm = own_row * hw::kResultBytes / p_.pci_bytes_per_sec +
                        (side - 1) * (r_bytes / p_.gbe_bytes_per_sec +
                                      p_.gbe_latency_sec) +
                        (r_bytes * (side - 1) / side) / p_.gbe_bytes_per_sec;
        t.host = own_row * p_.host_ops_per_step / p_.host_flops;
      }

      const double own_upd =
          na / (mode == HostMode::kHardwareNet
                    ? p
                    : static_cast<int>(std::lround(std::sqrt(double(p)))));
      t.j_update = own_upd * hw::kJParticleBytes *
                   (1.0 / p_.pci_bytes_per_sec + 1.0 / p_.lvds_bytes_per_sec);
      t.sync = 2.0 * p_.gbe_latency_sec * std::ceil(std::log2(std::max(p, 2)));
      break;
    }

    case HostMode::kNaive: {
      // Figure 3: every host replicates all N particles on its own 1/p of
      // the machine; communication is the all-to-all exchange of corrected
      // particles, which does not shrink with p.
      const double chips_per_host = chips / p;
      const double nj_chip = std::ceil(n / chips_per_host);
      const double own = na / p;
      t.predict = nj_chip / clock;
      t.pipeline = pipeline_time(nj_chip, own);
      t.i_comm = own * hw::kIParticleBytes / p_.pci_bytes_per_sec +
                 own * hw::kIParticleBytes / p_.lvds_bytes_per_sec;
      t.result_comm = own * hw::kResultBytes / p_.pci_bytes_per_sec +
                      own * hw::kResultBytes / p_.lvds_bytes_per_sec;
      // Every host must send its corrected particles to all others and
      // receive everyone else's: ~2 * n_act * (p-1)/p particle records.
      const double xfer = 2.0 * na * hw::kJParticleBytes *
                          (static_cast<double>(p - 1) / p);
      t.j_update = own * hw::kJParticleBytes *
                       (1.0 / p_.pci_bytes_per_sec + 1.0 / p_.lvds_bytes_per_sec) +
                   xfer / p_.gbe_bytes_per_sec +
                   (p - 1) * p_.gbe_latency_sec;
      t.host = own * p_.host_ops_per_step / p_.host_flops;
      t.sync = 2.0 * p_.gbe_latency_sec * std::ceil(std::log2(std::max(p, 2)));
      break;
    }
  }
  return t;
}

double Degradation::alive_chip_fraction(const g6::hw::MachineConfig& m) const {
  const double total = static_cast<double>(m.total_chips());
  const double dead = std::min(
      total - 1.0, static_cast<double>(dead_boards) * m.chips_per_board +
                       static_cast<double>(dead_chips));
  return (total - std::max(0.0, dead)) / total;
}

Degradation Degradation::from_stats(const g6::fault::FaultStatsSnapshot& s) {
  Degradation d;
  d.dead_chips = static_cast<int>(s.excluded_chips);
  d.dead_boards = static_cast<int>(s.excluded_boards);
  d.dead_hosts = static_cast<int>(s.dead_hosts);
  d.recovery_seconds = s.recovery_modeled_seconds;
  return d;
}

RunEstimate PerfModel::run_degraded(std::size_t n_total,
                                    std::span<const BlockCount> blocks,
                                    const Degradation& deg,
                                    HostMode mode) const {
  const double frac = deg.alive_chip_fraction(p_.machine);
  const int p = p_.machine.total_nodes();
  G6_CHECK(deg.dead_hosts >= 0 && deg.dead_hosts < p,
           "at least one host must survive");
  const double hfrac = static_cast<double>(p - deg.dead_hosts) / p;

  RunEstimate est;
  for (const BlockCount& b : blocks) {
    if (b.count == 0 || b.n_act == 0) continue;
    StepBreakdown t = blockstep(n_total, b.n_act, mode);
    // The surviving chips hold 1/frac more j-particles each, stretching the
    // j-bound terms; a dropped host's PCI traffic and integration work moves
    // onto the survivors.
    t.predict /= frac;
    t.pipeline /= frac;
    t.host /= hfrac;
    t.j_update /= hfrac;
    est.seconds += t.total(p_.overlap_comm) * static_cast<double>(b.count);
    est.operations +=
        step_operations(n_total, b.n_act) * static_cast<double>(b.count);
  }
  est.seconds += deg.recovery_seconds;
  if (est.seconds > 0.0) est.sustained_flops = est.operations / est.seconds;
  est.efficiency = est.sustained_flops / peak_flops();
  return est;
}

RunEstimate PerfModel::run(std::size_t n_total, std::span<const BlockCount> blocks,
                           HostMode mode) const {
  RunEstimate est;
  for (const BlockCount& b : blocks) {
    if (b.count == 0 || b.n_act == 0) continue;
    const double per_step = blockstep_seconds(n_total, b.n_act, mode);
    est.seconds += per_step * static_cast<double>(b.count);
    est.operations += step_operations(n_total, b.n_act) * static_cast<double>(b.count);
  }
  if (est.seconds > 0.0) est.sustained_flops = est.operations / est.seconds;
  est.efficiency = est.sustained_flops / peak_flops();
  return est;
}

std::array<double, g6::obs::kPhaseCount> to_phase_array(const StepBreakdown& bd) {
  using g6::obs::Phase;
  std::array<double, g6::obs::kPhaseCount> out{};
  out[static_cast<std::size_t>(Phase::kPredict)] = bd.predict;
  out[static_cast<std::size_t>(Phase::kPipeline)] = bd.pipeline;
  out[static_cast<std::size_t>(Phase::kIComm)] = bd.i_comm;
  out[static_cast<std::size_t>(Phase::kResultComm)] = bd.result_comm;
  out[static_cast<std::size_t>(Phase::kJUpdate)] = bd.j_update;
  out[static_cast<std::size_t>(Phase::kHost)] = bd.host;
  out[static_cast<std::size_t>(Phase::kSync)] = bd.sync;
  return out;
}

}  // namespace g6::cluster
