#include "cluster/aggregator.hpp"

#include <cstring>

namespace g6::cluster {

namespace {

void put_u32(std::vector<std::byte>& buf, std::size_t at, std::uint32_t v) {
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::uint32_t get_u32(std::span<const std::byte> buf, std::size_t at) {
  G6_CHECK(at + sizeof(std::uint32_t) <= buf.size(), "frame truncated");
  std::uint32_t v = 0;
  std::memcpy(&v, buf.data() + at, sizeof(v));
  return v;
}

}  // namespace

const char* record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kJUpdate: return "j-update";
    case RecordKind::kIBatch: return "i-batch";
    case RecordKind::kPartial: return "partial";
  }
  return "?";
}

void FrameBuilder::add(RecordKind kind, std::span<const std::byte> payload) {
  if (buf_.empty()) {
    buf_.resize(kFrameHeaderBytes);
    put_u32(buf_, 0, kFrameMagic);
    put_u32(buf_, 4, 0);  // record count, patched by take()
  }
  const std::size_t at = buf_.size();
  buf_.resize(at + kRecordHeaderBytes + payload.size());
  put_u32(buf_, at, static_cast<std::uint32_t>(kind));
  put_u32(buf_, at + 4, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty())
    std::memcpy(buf_.data() + at + kRecordHeaderBytes, payload.data(), payload.size());
  records_ += 1;
}

std::vector<std::byte> FrameBuilder::take() {
  G6_CHECK(!empty(), "taking an empty frame");
  put_u32(buf_, 4, static_cast<std::uint32_t>(records_));
  records_ = 0;
  std::vector<std::byte> out;
  out.swap(buf_);
  return out;
}

std::vector<FrameRecordView> parse_frame(std::span<const std::byte> frame) {
  G6_CHECK(frame.size() >= kFrameHeaderBytes, "frame shorter than its header");
  G6_CHECK(get_u32(frame, 0) == kFrameMagic, "bad frame magic");
  const std::uint32_t count = get_u32(frame, 4);
  std::vector<FrameRecordView> out;
  out.reserve(count);
  std::size_t off = kFrameHeaderBytes;
  for (std::uint32_t r = 0; r < count; ++r) {
    const std::uint32_t kind = get_u32(frame, off);
    const std::uint32_t size = get_u32(frame, off + 4);
    G6_CHECK(kind >= 1 && kind <= 3, "unknown frame record kind");
    off += kRecordHeaderBytes;
    G6_CHECK(off + size <= frame.size(), "frame record overruns the frame");
    out.push_back({static_cast<RecordKind>(kind), off, size});
    off += size;
  }
  G6_CHECK(off == frame.size(), "trailing bytes after the last frame record");
  return out;
}

std::vector<std::byte> record_payload(std::span<const std::byte> frame,
                                      const FrameRecordView& rec) {
  G6_CHECK(rec.offset + rec.size <= frame.size(), "record view out of range");
  return {frame.begin() + static_cast<std::ptrdiff_t>(rec.offset),
          frame.begin() + static_cast<std::ptrdiff_t>(rec.offset + rec.size)};
}

std::vector<std::byte> wrap_record(RecordKind kind, std::span<const std::byte> payload) {
  FrameBuilder fb;
  fb.add(kind, payload);
  return fb.take();
}

std::vector<std::byte> unwrap_record(std::span<const std::byte> frame, RecordKind kind) {
  const auto recs = parse_frame(frame);
  G6_CHECK(recs.size() == 1, "expected a single-record frame");
  G6_CHECK(recs[0].kind == kind, "frame record kind mismatch");
  return record_payload(frame, recs[0]);
}

MessageAggregator::MessageAggregator(int n_ranks, std::size_t capacity)
    : n_ranks_(n_ranks), capacity_(capacity),
      pair_(static_cast<std::size_t>(n_ranks) * static_cast<std::size_t>(n_ranks)) {
  G6_CHECK(n_ranks > 0, "aggregator needs at least one rank");
  G6_CHECK(capacity > kFrameHeaderBytes + kRecordHeaderBytes,
           "aggregation capacity cannot hold a record");
}

void MessageAggregator::send_pair(int src, int dst, const Sink& sink) {
  FrameBuilder& fb =
      pair_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_ranks_) +
            static_cast<std::size_t>(src)];
  const std::size_t n_records = fb.records();
  auto frame = fb.take();
  stats_.count_frame(frame.size(), n_records);
  sink(src, dst, std::move(frame));
}

void MessageAggregator::stage(int src, int dst, RecordKind kind,
                              std::span<const std::byte> record, const Sink& sink) {
  G6_CHECK(src >= 0 && src < n_ranks_ && dst >= 0 && dst < n_ranks_ && src != dst,
           "bad aggregation pair");
  FrameBuilder& fb =
      pair_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_ranks_) +
            static_cast<std::size_t>(src)];
  if (fb.would_exceed(record.size(), capacity_)) {
    stats_.capacity_flushes += 1;
    send_pair(src, dst, sink);
  }
  fb.add(kind, record);
}

void MessageAggregator::flush(const Sink& sink) {
  if (!pending()) return;
  stats_.boundary_flushes += 1;
  // Destination-major, ascending host ids: the wire order is a function of
  // the staged records alone, never of their arrival order.
  for (int dst = 0; dst < n_ranks_; ++dst)
    for (int src = 0; src < n_ranks_; ++src)
      if (!pair_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_ranks_) +
                 static_cast<std::size_t>(src)]
               .empty())
        send_pair(src, dst, sink);
}

bool MessageAggregator::pending() const {
  for (const FrameBuilder& fb : pair_)
    if (!fb.empty()) return true;
  return false;
}

void publish_net_metrics(const NetStats& s, g6::obs::MetricsRegistry& registry) {
  registry.counter("g6.net.frames_sent").set(s.frames_sent);
  registry.counter("g6.net.records_coalesced").set(s.records_sent);
  registry.counter("g6.net.capacity_flushes").set(s.capacity_flushes);
  registry.counter("g6.net.boundary_flushes").set(s.boundary_flushes);
  registry.counter("g6.net.deferred_flushes").set(s.deferred_flushes);
  registry.counter("g6.net.frame_bytes").set(s.frame_bytes);
  registry.counter("g6.net.messages_saved").set(s.messages_saved());
  const std::int64_t saved = s.bytes_saved();
  registry.counter("g6.net.bytes_saved").set(saved > 0 ? static_cast<std::uint64_t>(saved) : 0);
  registry.gauge("g6.net.aggregation_factor").set(s.aggregation_factor());
  registry.gauge("g6.net.flush_seconds").set(s.flush_seconds);
  registry.gauge("g6.net.overlap_saved_seconds").set(s.overlap_saved_seconds);
}

}  // namespace g6::cluster
