// Ablation A1 — the GRAPE-6 number formats (§5.2 / DESIGN.md).
//
// Three design choices of the hardware are quantified against alternatives:
//   (a) pipeline datapath width: per-interaction force error vs mantissa
//       bits (GRAPE-6's short floats ~ 24 bits);
//   (b) fixed-point force accumulation: bit-exact order independence (what
//       makes the reduction trees deterministic), vs the order-dependent
//       scatter of double-precision summation;
//   (c) virtual-multipipeline utilisation: fraction of pipeline cycles doing
//       useful work vs block size (why §4.2 worries about small blocks).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "grape6/chip.hpp"
#include "nbody/force_direct.hpp"
#include "util/rng.hpp"

using namespace g6;
using namespace g6::bench;

int main(int, char**) {
  std::printf("A1: number-format ablations\n");
  std::printf("----------------------------\n\n");

  util::Rng rng(2002);
  const double eps2 = 0.008 * 0.008;

  // A shared random interaction set.
  const int nj = 512;
  std::vector<util::Vec3> xs(nj), vs(nj);
  std::vector<double> ms(nj);
  for (int j = 0; j < nj; ++j) {
    xs[j] = {rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(-1, 1)};
    vs[j] = {rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2), 0};
    ms[j] = rng.uniform(1e-10, 1e-9);
  }
  const util::Vec3 xi{5.0, -3.0, 0.1};

  // (a) mantissa sweep.
  nbody::Force ref{};
  for (int j = 0; j < nj; ++j)
    nbody::pairwise_force(xi, {}, xs[j], vs[j], ms[j], eps2, ref);

  std::printf("(a) total-force error vs pipeline mantissa width "
              "(512 j-particles):\n");
  util::Table ta({"mantissa bits", "rel. acc error", "rel. pot error"});
  for (int bits : {12, 16, 20, 24, 32, 40}) {
    hw::FormatSpec fmt;
    fmt.mantissa_bits = bits;
    hw::ForceAccumulator acc(fmt);
    const hw::IParticle ip = hw::make_i_particle(9999, xi, {}, fmt);
    for (int j = 0; j < nj; ++j) {
      hw::JParticle p;
      p.id = static_cast<std::uint32_t>(j);
      p.mass = ms[j];
      p.x0 = util::FixedVec3::quantize(xs[j], fmt.pos_lsb);
      p.v0 = vs[j];
      hw::pipeline_interact(ip, hw::predict_j(p, 0.0, fmt), eps2, fmt, acc);
    }
    ta.row({util::fmt_int(bits),
            util::fmt_sci(norm(acc.acc.to_vec3() - ref.acc) / norm(ref.acc), 2),
            util::fmt_sci(std::abs(acc.pot.to_double() - ref.pot) /
                              std::abs(ref.pot), 2)});
  }
  std::printf("%s\n", ta.render().c_str());

  // (b) order independence.
  std::printf("(b) summation-order sensitivity over 64 random orders:\n");
  std::vector<int> order(nj);
  for (int j = 0; j < nj; ++j) order[static_cast<std::size_t>(j)] = j;

  const hw::FormatSpec fmt;
  std::int64_t fixed_first = 0;
  bool fixed_identical = true;
  double dbl_min = 1e300, dbl_max = -1e300;
  for (int trial = 0; trial < 64; ++trial) {
    for (std::size_t k = order.size(); k > 1; --k)
      std::swap(order[k - 1], order[rng.below(k)]);

    hw::ForceAccumulator acc(fmt);
    const hw::IParticle ip = hw::make_i_particle(9999, xi, {}, fmt);
    double dsum = 0.0;
    for (int j : order) {
      hw::JParticle p;
      p.id = static_cast<std::uint32_t>(j);
      p.mass = ms[j];
      p.x0 = util::FixedVec3::quantize(xs[j], fmt.pos_lsb);
      p.v0 = vs[j];
      hw::pipeline_interact(ip, hw::predict_j(p, 0.0, fmt), eps2, fmt, acc);
      nbody::Force f{};
      nbody::pairwise_force(xi, {}, xs[j], vs[j], ms[j], eps2, f);
      dsum += f.acc.x;
    }
    if (trial == 0) fixed_first = acc.acc.x().raw();
    if (acc.acc.x().raw() != fixed_first) fixed_identical = false;
    dbl_min = std::min(dbl_min, dsum);
    dbl_max = std::max(dbl_max, dsum);
  }
  util::Table tb({"accumulator", "order sensitivity"});
  tb.row({"64-bit fixed point (hardware)",
          fixed_identical ? "bit-identical across all orders" : "VARIES (BUG)"});
  tb.row({"double precision (software)",
          "spread " + util::fmt_sci(dbl_max - dbl_min, 2)});
  std::printf("%s\n", tb.render().c_str());

  // (c) pipeline utilisation vs block size.
  std::printf("(c) pipeline utilisation vs i-block size (one chip, 1024 j):\n");
  hw::Chip chip(fmt, 2048);
  for (int j = 0; j < 1024; ++j) {
    hw::JParticle p;
    p.id = static_cast<std::uint32_t>(j);
    p.mass = 1e-9;
    p.x0 = util::FixedVec3::quantize(xs[static_cast<std::size_t>(j % nj)], fmt.pos_lsb);
    chip.store_j(p);
  }
  util::Table tc({"i-block size", "cycles", "useful fraction"});
  for (std::size_t ni : {1ul, 6ul, 24ul, 48ul, 96ul, 480ul}) {
    const auto cycles = chip.compute_cycles(ni);
    // Useful work: ni * nj interactions at 6 per cycle.
    const double useful = double(ni) * 1024.0 / hw::kPipesPerChip;
    tc.row({util::fmt_int(static_cast<long long>(ni)),
            util::fmt_int(static_cast<long long>(cycles)),
            util::fmt_pct(useful / double(cycles))});
  }
  std::printf("%s\n", tc.render().c_str());

  const bool ok = fixed_identical;
  std::printf("shape check: fixed-point accumulation is order independent: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
