// E2 — Figure 13 of the paper: the distribution of planetesimals at T = 800
// and at a later time; "Gap of the distribution is formed near the radius of
// protoplanets".
//
// Reproduction scope: the paper evolved 1.8 M particles on 63 Tflops of
// hardware; carving a fully-emptied gap takes many synodic periods. At bench
// scale (N ~ 10^3 on one CPU core) we reproduce, at the paper's own
// parameters (protoplanet mass 1e-5 M_sun, softening 0.008 AU):
//   (i)  the visual snapshots of Figure 13 (face-on particle distribution),
//   (ii) the a-e distribution, where the protoplanets imprint local
//        eccentricity spikes at 20 and 30 AU, and
//   (iii) quantitatively, the localised stirring at the protoplanet radii —
//        the mechanism that opens the gap — measured as the rms eccentricity
//        in bands at 20/30 AU against a control band at 25 AU.
// Pass --boost to multiply the protoplanet masses by 30 to push the system
// further toward the gap-opening regime within the bench horizon.
#include <cstdio>
#include <algorithm>
#include <cstring>

#include "analysis/disk_analysis.hpp"
#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/image.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

void render_xy(const nbody::ParticleSystem& ps,
               const std::vector<std::size_t>& pps, double t) {
  // Figure-13-style image artefact (face-on particle map, print polarity).
  util::GrayImage img(512, 512);
  for (std::size_t i = 0; i < ps.size(); ++i)
    img.splat(ps.pos(i).x, ps.pos(i).y, -40, 40, -40, 40);
  char path[64];
  std::snprintf(path, sizeof path, "fig13_T%05.0f.pgm", t);
  img.write_pgm_file(path);
  std::printf("[wrote %s]\n", path);

  util::AsciiPlot plot(-40, 40, -40, 40, 72, 30);
  for (std::size_t i = 0; i < ps.size(); ++i) plot.point(ps.pos(i).x, ps.pos(i).y);
  for (std::size_t p : pps) plot.marker(ps.pos(p).x, ps.pos(p).y, 'O');
  char title[96];
  std::snprintf(title, sizeof title,
                "face-on distribution at T = %.0f ('O' = protoplanet)", t);
  std::printf("%s\n", plot.render(title).c_str());
}

void render_ae(const nbody::ParticleSystem& ps,
               const std::vector<std::size_t>& exclude, double t, double e_max) {
  const auto elems = analysis::all_elements(ps, 1.0, exclude);
  util::AsciiPlot plot(14, 36, 0.0, e_max, 72, 20);
  for (const auto& pe : elems)
    if (pe.bound) plot.point(pe.el.a, pe.el.e);
  plot.marker(20.0, 0.0, 'O');
  plot.marker(30.0, 0.0, 'O');
  char title[96];
  std::snprintf(title, sizeof title, "a-e distribution at T = %.0f", t);
  std::printf("%s\n", plot.render(title).c_str());
}

// Fraction of a band's particles that have been pumped above e_hot. This is
// the robust localisation statistic: protoplanet stirring excites a large
// fraction of its band, while an occasional deep planetesimal-planetesimal
// encounter in the control band moves only one or two bodies (and would
// dominate an rms).
double band_hot_fraction(const nbody::ParticleSystem& ps,
                         const std::vector<std::size_t>& exclude, double a0,
                         double w, double e_hot) {
  const auto elems = analysis::all_elements(ps, 1.0, exclude);
  std::size_t in_band = 0, hot = 0;
  for (const auto& pe : elems) {
    if (!pe.bound || std::abs(pe.el.a - a0) > w) continue;
    ++in_band;
    if (pe.el.e > e_hot) ++hot;
  }
  return in_band > 0 ? double(hot) / double(in_band) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  bool boost = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--boost") == 0) boost = true;

  const std::size_t n = static_cast<std::size_t>(
      flag_value(argc, argv, "n", full ? 2400 : 800));
  const double t1 = 800.0;  // the paper's first snapshot time
  const double t2 = flag_value(argc, argv, "t2", full ? 4800.0 : 2400.0);
  const double mpp = boost ? 3.0e-4 : 1.0e-5;

  std::printf("E2: Figure 13 — planetesimal distribution and protoplanet "
              "stirring\n");
  std::printf("------------------------------------------------------------"
              "----\n");
  std::printf("N = %zu planetesimals + 2 protoplanets (m = %g M_sun%s) at 20 "
              "and 30 AU,\nsoftening 0.008 AU, T snapshots at 0 / %.0f / %.0f\n\n",
              n, mpp, boost ? ", boosted" : ", paper value", t1, t2);

  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 20020101;
  for (auto& pp : dcfg.protoplanets) pp.mass = mpp;
  auto d = disk::make_disk(dcfg);
  std::vector<std::size_t> exclude(d.protoplanet_indices.begin(),
                                   d.protoplanet_indices.end());

  nbody::CpuDirectBackend backend(0.008);
  nbody::HermiteIntegrator integ(d.system, backend, disk_config());
  util::Timer timer;
  integ.initialize();

  const double e_plot = boost ? 0.25 : 0.05;
  // "Hot": e above ~3x the initial median (Rayleigh sigma 0.002).
  const double e_hot = boost ? 0.02 : 0.008;
  auto hot = [&](double a0, double w) {
    return band_hot_fraction(d.system, exclude, a0, w, e_hot);
  };
  util::Table heat({"T", "hot frac @20 AU", "hot frac @25 AU (control)",
                    "hot frac @30 AU", "gap contrast @20", "gap contrast @30"});
  auto record = [&](double t) {
    heat.row({util::fmt(t, 5), util::fmt_pct(hot(20.0, 1.0)),
              util::fmt_pct(hot(25.0, 1.0)), util::fmt_pct(hot(30.0, 1.5)),
              util::fmt(analysis::gap_contrast(d.system, 1.0, 20.0, 0.6, exclude), 3),
              util::fmt(analysis::gap_contrast(d.system, 1.0, 30.0, 0.6, exclude), 3)});
  };

  std::printf("=== T = 0 (initial conditions) ===\n");
  render_xy(d.system, d.protoplanet_indices, 0.0);
  record(0.0);

  integ.evolve(t1);
  std::printf("=== T = %.0f (paper's first snapshot) ===\n", t1);
  render_xy(d.system, d.protoplanet_indices, t1);
  render_ae(d.system, exclude, t1, e_plot);
  record(t1);

  integ.evolve(t2);
  std::printf("=== T = %.0f (late snapshot) ===\n", t2);
  render_xy(d.system, d.protoplanet_indices, t2);
  render_ae(d.system, exclude, t2, e_plot);
  record(t2);
  const double hot20 = hot(20.0, 1.0);
  const double hot25 = hot(25.0, 1.0);
  const double hot30 = hot(30.0, 1.5);

  std::printf("stirring at the protoplanet radii vs the 25 AU control band:\n%s\n",
              heat.render().c_str());
  std::printf("run: %llu blocks, %llu steps, wall %.1fs\n\n",
              static_cast<unsigned long long>(integ.stats().blocks),
              static_cast<unsigned long long>(integ.stats().steps),
              timer.seconds());

  // Shape check: by the late snapshot a substantial fraction of the inner
  // protoplanet's band is dynamically hot, well above the control band —
  // the gap-opening mechanism, localised where the paper's figure forms its
  // gaps. The outer protoplanet (orbital period 1033 time units) has only
  // completed ~2 orbits by T=2400 and is reported as informational; the
  // fully-emptied gap needs the paper-scale run length (see EXPERIMENTS.md).
  const bool ok = hot20 > 0.25 && hot20 > 2.0 * hot25;
  std::printf("shape check: inner protoplanet band heated (hot fraction "
              "%.0f%% @20 AU vs %.0f%% control; 30 AU informational: %.0f%%): "
              "%s\n", hot20 * 100, hot25 * 100, hot30 * 100,
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
