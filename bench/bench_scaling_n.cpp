// E7 — efficiency vs problem size. §4.2 of the paper explains that the
// machine must "deliver reasonable performance when asked to evaluate the
// forces on a relatively small number of particles"; the flip side is that
// sustained speed climbs with N (more j-work per i-particle amortises the
// communication and host terms). This bench sweeps N from 10^4 to the
// paper's 1.8M on the full-machine model, using a block-size fraction
// measured from scaled dynamics, and verifies the small-N functional model
// against the cycle counters of the machine simulator.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "grape6/backend.hpp"

using namespace g6;
using namespace g6::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n_scaled = full ? 2400 : 1000;
  const double t_end = full ? 128.0 : 64.0;

  std::printf("E7: sustained performance vs N (full machine)\n");
  std::printf("-----------------------------------------------\n\n");

  // Measure the typical active fraction once.
  const ScaledRun run = run_scaled_disk(n_scaled, t_end);
  const double active_fraction =
      run.stats.mean_block_size() / double(run.n_total);
  std::printf("measured mean active fraction per block: %.3f (N=%zu run)\n\n",
              active_fraction, run.n_total);

  const cluster::PerfModel model{cluster::PerfParams{}};
  util::Table t({"N", "mean n_act", "sustained [Tflops]", "efficiency",
                 "ms / block step"});
  double eff_small = 0.0, eff_large = 0.0;
  JsonBuilder model_rows = JsonBuilder::array();
  for (std::size_t n : {std::size_t{10000}, std::size_t{30000}, std::size_t{100000},
                        std::size_t{300000}, std::size_t{600000}, kPaperN}) {
    const auto n_act = static_cast<std::size_t>(
        std::max(1.0, active_fraction * double(n)));
    std::vector<cluster::BlockCount> blocks{{n_act, 1}};
    const auto est = model.run(n, blocks);
    t.row({util::fmt_int(static_cast<long long>(n)),
           util::fmt_int(static_cast<long long>(n_act)),
           util::fmt(est.sustained_flops / 1e12, 3), util::fmt_pct(est.efficiency),
           util::fmt(est.seconds * 1e3, 3)});
    model_rows.push(JsonBuilder::object()
                        .field("n", double(n))
                        .field("n_act", double(n_act))
                        .field("sustained_model_tflops", est.sustained_flops / 1e12)
                        .field("efficiency", est.efficiency)
                        .field("seconds_per_blockstep", est.seconds));
    if (n == 10000) eff_small = est.efficiency;
    if (n == kPaperN) eff_large = est.efficiency;
  }
  std::printf("%s\n", t.render().c_str());

  // Measured CPU-kernel scaling: interaction rate of the default SoA/SIMD
  // kernel and the scalar reference as the j-store grows out of cache.
  std::printf("CPU kernel scaling (best-of-3 sweeps):\n");
  util::Table tk({"N", "kernel", "Minter/s", "ns/inter", "speedup"});
  JsonBuilder kernel_rows = JsonBuilder::array();
  for (std::size_t n : {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
                        full ? std::size_t{16384} : std::size_t{8192}}) {
    const auto ps = kernel_bench_system(n);
    std::vector<nbody::Force> ref_forces;
    auto ref = measure_cpu_kernel(nbody::CpuKernel::kReference, ps, 3, nullptr,
                                  &ref_forces);
    auto simd = measure_cpu_kernel(nbody::CpuKernel::kSimd, ps, 3, &ref_forces);
    ref.speedup_vs_reference = 1.0;
    simd.speedup_vs_reference = simd.interactions_per_sec / ref.interactions_per_sec;
    for (const auto& m : {ref, simd}) {
      tk.row({util::fmt_int(static_cast<long long>(n)), m.kernel,
              util::fmt(m.interactions_per_sec / 1e6, 1),
              util::fmt(m.ns_per_interaction, 3),
              util::fmt(m.speedup_vs_reference, 2)});
      kernel_rows.push(m.to_json().field("n", double(n)));
    }
  }
  std::printf("%s\n", tk.render().c_str());

  const std::string json_path =
      flag_str(argc, argv, "json", "BENCH_scaling_n.json");
  const JsonBuilder doc = JsonBuilder::object()
                              .field("bench", "scaling_n")
                              .field("hardware_concurrency",
                                     double(std::max<std::size_t>(
                                         1, std::thread::hardware_concurrency())))
                              .field("wall_seconds", run.wall_seconds)
                              .field("active_fraction", active_fraction)
                              .field("model_scaling", model_rows)
                              .field("cpu_kernel_scaling", kernel_rows);
  if (write_json_file(json_path, doc))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  // Cross-check: the analytic pipeline term equals the machine simulator's
  // cycle counters on a small configuration.
  {
    const std::size_t n_check = 512, n_act = 64;
    hw::MachineConfig mc = hw::MachineConfig::mini(4, 4, 64);
    hw::Grape6Machine machine(mc);
    std::vector<hw::JParticle> js(n_check);
    for (std::size_t j = 0; j < n_check; ++j) {
      js[j].id = static_cast<std::uint32_t>(j);
      js[j].mass = 1e-9;
      js[j].x0 = util::FixedVec3::quantize(
          {20.0 + 0.001 * double(j), 0.01 * double(j % 7), 0.0}, mc.fmt.pos_lsb);
    }
    machine.load(js);

    // Analytic: passes * (vmp * nj_chip + latency) + reduction drain.
    const double nj_chip = std::ceil(double(n_check) / double(mc.total_chips()));
    const double passes = std::ceil(double(n_act) / hw::kIPerChipPass);
    const double analytic =
        passes * (hw::kVmp * nj_chip + hw::kPipelineLatency) / hw::kClockHz;
    const double simulated = machine.pipeline_seconds(n_act);
    std::printf("cycle-counter cross-check (16 chips, N=%zu, n_act=%zu): "
                "analytic %.3f us, simulated %.3f us\n",
                n_check, n_act, analytic * 1e6, simulated * 1e6);
    // The simulator adds the per-pass reduction-tree drain the closed form
    // above omits; agreement must be within a few percent.
    if (std::abs(simulated - analytic) / simulated > 0.05) {
      std::printf("shape check: FAIL (model and simulator disagree)\n");
      return 1;
    }
  }

  const bool ok = eff_large > 4.0 * eff_small && eff_large > 0.25;
  std::printf("\nshape check: efficiency rises strongly with N and reaches "
              "the paper band at 1.8M: %s (%.1f%% -> %.1f%%)\n",
              ok ? "PASS" : "FAIL", eff_small * 100, eff_large * 100);
  return ok ? 0 : 1;
}
