#!/usr/bin/env python3
"""CI perf-smoke gate: fail when bench_headline's measured kernel throughput
regresses past the checked-in floor, or when any of the correctness flags the
bench embeds in its JSON export went false.

Usage: check_perf_floor.py BENCH_headline.json [perf_floor.json]

A kernel fails the gate when

    measured_interactions_per_sec < floor / regression_factor

with both numbers from perf_floor.json (floors are already derated for CI
hardware; regression_factor 2.0 means "fail on a >2x regression"). On top of
the throughput floors the gate enforces the invariants the bench measured:
the tiled/simd CPU kernels, the batched GRAPE path and the thread-parallel
machine emulation must be bit-identical to their references, and every
measured-vs-model term ratio must be finite and positive.

The parallel_emulation floor (min speedup of the N-thread machine emulation
over 1 thread) is hardware-conditional: it is enforced only when the bench
ran with at least the floor's thread count AND the measuring machine has
that many hardware threads — a 1-core runner cannot exhibit parallel
speedup, and oversubscribed lanes prove nothing. Bit-identity of the
parallel schedule is enforced unconditionally.
"""

import json
import pathlib
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    bench = json.load(open(argv[1]))
    floor_path = (
        argv[2] if len(argv) > 2 else pathlib.Path(__file__).parent / "perf_floor.json"
    )
    floor = json.load(open(floor_path))
    factor = float(floor.get("regression_factor", 2.0))

    failures = []
    kernels = {k["kernel"]: k for k in bench["cpu_kernels"]}
    for name, fl in floor["floors_interactions_per_sec"].items():
        if name == "grape_batched":
            measured = bench["grape_chip"]["batched_interactions_per_sec"]
        else:
            measured = kernels[name]["interactions_per_sec"]
        limit = fl / factor
        status = "ok" if measured >= limit else "FAIL"
        print(
            f"{name:14s} {measured / 1e6:10.1f} Minter/s  "
            f"(floor {fl / 1e6:.1f}, limit {limit / 1e6:.1f})  {status}"
        )
        if measured < limit:
            failures.append(f"{name}: {measured / 1e6:.1f} < {limit / 1e6:.1f} Minter/s")

    for name in ("tiled", "simd"):
        if not kernels[name]["bit_identical"]:
            failures.append(f"{name} kernel is not bit-identical to the reference")
    if not bench["grape_chip"]["bit_identical"]:
        failures.append("GRAPE batched path accumulators differ from unbatched")

    par_floor = floor.get("parallel_emulation")
    par = bench.get("grape_parallel")
    if par_floor is not None and par is not None:
        if not par["bit_identical"]:
            failures.append(
                "parallel machine emulation accumulators differ from serial"
            )
        need = int(par_floor["threads"])
        if par["threads"] >= need and par["hardware_concurrency"] >= need:
            status = "ok" if par["speedup"] >= par_floor["min_speedup"] else "FAIL"
            print(
                f"parallel x{int(par['threads'])}   speedup {par['speedup']:.2f}  "
                f"(floor {par_floor['min_speedup']:.2f})  {status}"
            )
            if par["speedup"] < par_floor["min_speedup"]:
                failures.append(
                    f"parallel emulation speedup {par['speedup']:.2f} < "
                    f"{par_floor['min_speedup']:.2f} at {int(par['threads'])} threads"
                )
        else:
            print(
                f"parallel x{int(par['threads'])}   speedup {par['speedup']:.2f}  "
                f"(floor skipped: needs {need} threads, hardware has "
                f"{int(par['hardware_concurrency'])})"
            )
    if not bench["measured_vs_model_ratios_finite_positive"]:
        failures.append(
            "measured-vs-model ratios not finite and positive: "
            + json.dumps(bench["measured_vs_model_ratios"])
        )

    if failures:
        print("\nperf-smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
