#!/usr/bin/env python3
"""CI perf-smoke gate: fail when a bench's measured numbers regress past the
checked-in floor, or when any correctness flag a bench embeds in its JSON
export went false.

Usage: check_perf_floor.py BENCH_*.json [more BENCH_*.json ...] [--floor=perf_floor.json]

Every file is dispatched on its top-level "bench" tag:

  headline      - kernel-throughput floors, bit-identity invariants, and the
                  hardware-conditional parallel-emulation speedup gate
  network_modes - the aggregated-transport gate: aggregation must cut
                  j-update messages per step by the floor's factor at the
                  floor's host count, bit-identically, with the message-count
                  model matching the measured comm time within 20%
  scaling_hosts - presence and sanity of the beyond-paper host grids
  serve         - the serving-layer gates: duplicate submissions answered from
                  the result cache >= 10x faster, bit-identically, with zero
                  integrator steps (unconditional), plus a hardware-
                  conditional burst jobs/s floor
  p3t           - the hybrid tree+direct backend gates: unconditional force
                  accuracy (RMS + max relative error per sweep row) and
                  energy-drift floors, plus a sweep-conditional "hybrid beats
                  direct by N=16k" crossover gate (full-mode exports only)
  anything else - schema checks only (see below)

Every file, regardless of tag, must carry a top-level hardware_concurrency
field — the knob hardware-conditional gates key off; a bench export without
it cannot be gated honestly and fails the check.

A kernel fails the throughput gate when

    measured_interactions_per_sec < floor / regression_factor

with both numbers from perf_floor.json (floors are already derated for CI
hardware; regression_factor 2.0 means "fail on a >2x regression").

Hardware-conditional gates (e.g. parallel_emulation's min_speedup, which
needs >= the floor's thread count in hardware) print an explicit
"skipped: <reason>" line whenever they do not run, so a green CI log shows
which gates were actually enforced. The aggregation gate is deterministic
message counting, so it is never skipped. Bit-identity is always enforced.
"""

import json
import pathlib
import sys


def check_headline(bench, floor, failures):
    factor = float(floor.get("regression_factor", 2.0))
    kernels = {k["kernel"]: k for k in bench["cpu_kernels"]}
    for name, fl in floor["floors_interactions_per_sec"].items():
        if name == "grape_batched":
            measured = bench["grape_chip"]["batched_interactions_per_sec"]
        else:
            measured = kernels[name]["interactions_per_sec"]
        limit = fl / factor
        status = "ok" if measured >= limit else "FAIL"
        print(
            f"{name:14s} {measured / 1e6:10.1f} Minter/s  "
            f"(floor {fl / 1e6:.1f}, limit {limit / 1e6:.1f})  {status}"
        )
        if measured < limit:
            failures.append(f"{name}: {measured / 1e6:.1f} < {limit / 1e6:.1f} Minter/s")

    for name in ("tiled", "simd", "blocked"):
        if not kernels[name]["bit_identical"]:
            failures.append(f"{name} kernel is not bit-identical to the reference")
    if not bench["grape_chip"]["bit_identical"]:
        failures.append("GRAPE batched path accumulators differ from unbatched")

    # --- runtime-dispatch gates (PR 8) ------------------------------------
    # Unconditional: every exact kernel must be bit-identical to the scalar
    # reference at EVERY dispatchable ISA level, and the approximate kernels
    # must respect their documented error bounds at every level. These are
    # correctness gates, so no hardware skip applies.
    kd = floor.get("kernel_dispatch", {})
    fast_bound = float(kd.get("fast_max_rel_err", 1e-12))
    mixed_bound = float(kd.get("mixed_max_rel_err", 2e-5))
    sweep = bench.get("kernel_isa_sweep")
    if sweep is None:
        failures.append("bench export has no kernel_isa_sweep section")
        sweep = []
    levels_seen = []
    for row in sweep:
        tag = f"{row['kernel']}@{row['level']}"
        if row["level"] not in levels_seen:
            levels_seen.append(row["level"])
        if row["exact"]:
            status = "ok" if row["bit_identical"] else "FAIL"
            if not row["bit_identical"]:
                failures.append(f"dispatch sweep: {tag} is not bit-identical")
        else:
            bound = fast_bound if row["kernel"] == "fast" else mixed_bound
            status = "ok" if row["max_rel_err"] <= bound else "FAIL"
            if row["max_rel_err"] > bound:
                failures.append(
                    f"dispatch sweep: {tag} max rel err "
                    f"{row['max_rel_err']:.3e} > bound {bound:.0e}"
                )
        if status == "FAIL":
            print(f"dispatch {tag:16s} {status}")
    if sweep:
        print(
            f"dispatch sweep: {len(sweep)} kernel x ISA rows over "
            f"levels {'/'.join(levels_seen)}: exact rows bit-identical, "
            f"fast <= {fast_bound:.0e}, mixed <= {mixed_bound:.0e}  ok"
        )

    # Hardware-conditional: the cache-blocked or mixed-precision kernel must
    # beat the previous fast kernel by kernel_speedup_min at the sweep size -
    # but only where fast is a real rsqrt kernel (AVX2+; below that it aliases
    # the exact SIMD kernel and the ratio is meaningless).
    min_speedup = float(kd.get("kernel_speedup_min", 2.0))
    gate_levels = kd.get("kernel_speedup_levels", ["avx2", "avx512"])
    speedup = bench.get("kernel_speedup")
    level = bench.get("simd_level", "?")
    if speedup is not None:
        if level in gate_levels:
            status = "ok" if speedup >= min_speedup else "FAIL"
            print(
                f"kernel speedup (max(blocked, mixed)/fast @ {level}) "
                f"{speedup:.2f}x  (floor {min_speedup:.1f}x)  {status}"
            )
            if speedup < min_speedup:
                failures.append(
                    f"kernel_speedup {speedup:.2f} < {min_speedup:.1f} "
                    f"at level {level}"
                )
        else:
            print(
                f"kernel speedup {speedup:.2f}x  skipped: active level "
                f"'{level}' not in {gate_levels} (fast kernel aliases the "
                f"exact SIMD kernel there; bit-identity still enforced)"
            )

    par_floor = floor.get("parallel_emulation")
    par = bench.get("grape_parallel")
    if par_floor is not None and par is not None:
        if not par["bit_identical"]:
            failures.append(
                "parallel machine emulation accumulators differ from serial"
            )
        need = int(par_floor["threads"])
        if par["threads"] >= need and par["hardware_concurrency"] >= need:
            status = "ok" if par["speedup"] >= par_floor["min_speedup"] else "FAIL"
            print(
                f"parallel x{int(par['threads'])}   speedup {par['speedup']:.2f}  "
                f"(floor {par_floor['min_speedup']:.2f})  {status}"
            )
            if par["speedup"] < par_floor["min_speedup"]:
                failures.append(
                    f"parallel emulation speedup {par['speedup']:.2f} < "
                    f"{par_floor['min_speedup']:.2f} at {int(par['threads'])} threads"
                )
        else:
            print(
                f"parallel x{int(par['threads'])}   speedup {par['speedup']:.2f}  "
                f"skipped: min_speedup needs {need} bench threads on {need} "
                f"hardware threads, bench ran {int(par['threads'])} on "
                f"{int(par['hardware_concurrency'])} "
                f"(bit-identity still enforced)"
            )
    if not bench["measured_vs_model_ratios_finite_positive"]:
        failures.append(
            "measured-vs-model ratios not finite and positive: "
            + json.dumps(bench["measured_vs_model_ratios"])
        )


def check_network_modes(bench, floor, failures):
    comm = floor.get("comm", {})
    hosts = int(comm.get("hosts", 16))
    min_cut = float(comm.get("min_update_message_reduction", 10.0))
    rmin = float(comm.get("model_ratio_min", 0.8))
    rmax = float(comm.get("model_ratio_max", 1.25))
    rows = {m["mode"]: m for m in bench["comm_modes"]}
    for mode in ("naive", "matrix"):
        m = rows[mode]
        if int(m["hosts"]) != hosts:
            failures.append(
                f"comm row '{mode}' measured at {int(m['hosts'])} hosts, "
                f"floor expects {hosts}"
            )
            continue
        cut = m["update_message_reduction"]
        ratio = m["model_measured_ratio"]
        status = "ok" if cut >= min_cut else "FAIL"
        print(
            f"comm {mode:7s} j-update messages "
            f"{int(m['update_messages_unaggregated'])} -> "
            f"{int(m['update_messages_aggregated'])}  cut {cut:.1f}x  "
            f"(floor {min_cut:.0f}x)  model/measured {ratio:.3f}  {status}"
        )
        if cut < min_cut:
            failures.append(
                f"aggregation cut {mode} j-update messages only {cut:.1f}x "
                f"at {hosts} hosts (floor {min_cut:.0f}x)"
            )
        if not (rmin <= ratio <= rmax):
            failures.append(
                f"comm model vs measured ratio {ratio:.3f} for {mode} outside "
                f"[{rmin}, {rmax}]"
            )
    for m in bench["comm_modes"]:
        if not m["bit_identical"]:
            failures.append(
                f"aggregated forces differ from per-record baseline in "
                f"{m['mode']} mode"
            )
    if not bench["overlap_bit_identical"]:
        failures.append("overlapped i-block exchange changed the forces")
    if bench["overlap_saved_seconds"] <= 0.0:
        failures.append("overlap hid no link time")


def check_serve(bench, floor, failures):
    sv = floor.get("serve", {})
    min_speedup = float(sv.get("min_hit_speedup", 10.0))

    # Unconditional gates: cache hits are lookups, not simulations, so these
    # hold on any hardware.
    speedup = float(bench["hit_speedup"])
    status = "ok" if speedup >= min_speedup else "FAIL"
    print(
        f"cache hit speedup {speedup:10.1f}x  (floor {min_speedup:.0f}x, "
        f"cold {bench['cold_seconds']:.4f}s -> hit {bench['hit_seconds']:.6f}s)"
        f"  {status}"
    )
    if speedup < min_speedup:
        failures.append(
            f"cache hit only {speedup:.1f}x faster than cold run "
            f"(floor {min_speedup:.0f}x)"
        )
    if not bench["bit_identical"]:
        failures.append("cache-served result bytes differ from the computed run")
    if int(bench["steps_on_hit"]) != 0:
        failures.append(
            f"cache hit executed {int(bench['steps_on_hit'])} integrator steps "
            f"(must be 0)"
        )
    if int(bench["cache_hits_delta"]) < 1:
        failures.append("duplicate submission did not bump g6.serve.cache.hits")
    if int(bench["burst_unresolved"]) != 0:
        failures.append(
            f"{int(bench['burst_unresolved'])} burst jobs never reached a "
            f"terminal state"
        )

    # Hardware-conditional: burst throughput needs real concurrency for the
    # worker lanes; on smaller hosts print the skip and enforce nothing.
    min_jps = float(sv.get("min_jobs_per_sec", 50.0))
    need = int(sv.get("min_concurrency", 4))
    hw = int(bench["hardware_concurrency"])
    jps = float(bench["jobs_per_sec"])
    if hw >= need:
        status = "ok" if jps >= min_jps else "FAIL"
        print(f"burst throughput {jps:10.1f} jobs/s  (floor {min_jps:.0f})  {status}")
        if jps < min_jps:
            failures.append(f"burst throughput {jps:.1f} < {min_jps:.0f} jobs/s")
    else:
        print(
            f"burst throughput {jps:10.1f} jobs/s  skipped: min_jobs_per_sec "
            f"needs {need} hardware threads, this machine has {hw} "
            f"(cache-hit gates still enforced)"
        )


def check_p3t(bench, floor, failures):
    p3 = floor.get("p3t", {})
    rms_bound = float(p3.get("max_rms_rel_err", 2e-3))
    abs_bound = float(p3.get("max_abs_rel_err", 5e-2))

    # Unconditional accuracy gates: the changeover split is exact by
    # construction, so the only error is the tree far-field - an algorithmic
    # property that holds on any hardware.
    for row in bench["sweep"]:
        n = int(row["n"])
        ok_row = (
            row["rms_rel_err"] <= rms_bound and row["max_rel_err"] <= abs_bound
        )
        status = "ok" if ok_row else "FAIL"
        print(
            f"p3t n={n:6d}  hybrid {row['hybrid_ns_per_interaction']:6.2f} ns/i  "
            f"tree frac {row['tree_fraction']:.3f}  rms err "
            f"{row['rms_rel_err']:.2e} (floor {rms_bound:.0e})  max err "
            f"{row['max_rel_err']:.2e} (floor {abs_bound:.0e})  {status}"
        )
        if row["rms_rel_err"] > rms_bound:
            failures.append(
                f"p3t rms force error {row['rms_rel_err']:.2e} > "
                f"{rms_bound:.0e} at n={n}"
            )
        if row["max_rel_err"] > abs_bound:
            failures.append(
                f"p3t max force error {row['max_rel_err']:.2e} > "
                f"{abs_bound:.0e} at n={n}"
            )

    drift_bound = float(p3.get("max_energy_drift", 1e-6))
    en = bench["energy"]
    drift = abs(float(en["hybrid_drift"]))
    status = "ok" if drift <= drift_bound else "FAIL"
    print(
        f"p3t energy drift |dE/E| {drift:.2e} to t={en['t_end']:g} at "
        f"n={int(en['n'])}  (floor {drift_bound:.0e}, direct "
        f"{abs(float(en['direct_drift'])):.2e})  {status}"
    )
    if drift > drift_bound:
        failures.append(
            f"p3t hybrid energy drift {drift:.2e} > {drift_bound:.0e}"
        )

    # Sweep-conditional: crossover_n compares two timings on the same
    # machine, but the quick-mode sweep ends below the gate, so only a
    # --full export can honestly answer "does hybrid win by 16k?".
    need_sweep = int(p3.get("crossover_min_sweep_n", 16384))
    max_cross = int(p3.get("max_crossover_n", 16384))
    cross = int(bench["crossover_n"])
    if int(bench["max_sweep_n"]) >= need_sweep:
        ok_cross = 0 < cross <= max_cross
        status = "ok" if ok_cross else "FAIL"
        print(
            f"p3t crossover n={cross}  (hybrid must beat direct by "
            f"n={max_cross})  {status}"
        )
        if not ok_cross:
            failures.append(
                f"p3t hybrid did not beat direct by n={max_cross} "
                f"(crossover_n={cross})"
            )
    else:
        print(
            f"p3t crossover n={cross}  skipped: sweep tops out at "
            f"{int(bench['max_sweep_n'])} < {need_sweep} (quick mode; "
            f"accuracy + drift floors still enforced)"
        )


def check_scaling_hosts(bench, floor, failures):
    rows = {int(r["hosts"]): r for r in bench["rows"]}
    for hosts in (64, 256):
        r = rows.get(hosts)
        if r is None:
            failures.append(f"scaling_hosts sweep is missing the {hosts}-host grid")
            continue
        cut = r["eth_message_reduction"]
        status = "ok" if r["mode"] == "matrix" and cut > 1.0 else "FAIL"
        print(
            f"hosts {hosts:4d} ({r['mode']})  sustained "
            f"{r['sustained_tflops']:.2f} Tflops  msg cut {cut:.1f}x  {status}"
        )
        if r["mode"] != "matrix":
            failures.append(f"{hosts}-host row is not the 2-D matrix organisation")
        elif cut <= 1.0:
            failures.append(f"aggregation does not cut messages at {hosts} hosts")


def main(argv):
    floor_path = pathlib.Path(__file__).parent / "perf_floor.json"
    bench_paths = []
    for a in argv[1:]:
        if a.startswith("--floor="):
            floor_path = a.split("=", 1)[1]
        else:
            bench_paths.append(a)
    if not bench_paths:
        print(__doc__)
        return 2
    floor = json.load(open(floor_path))

    checkers = {
        "headline": check_headline,
        "network_modes": check_network_modes,
        "scaling_hosts": check_scaling_hosts,
        "serve": check_serve,
        "p3t": check_p3t,
    }
    failures = []
    for path in bench_paths:
        bench = json.load(open(path))
        tag = bench.get("bench", "?")
        print(f"--- {path} ({tag}) ---")
        if "hardware_concurrency" not in bench:
            failures.append(f"{path}: no top-level hardware_concurrency field")
        checker = checkers.get(tag)
        if checker is not None:
            checker(bench, floor, failures)
        else:
            print(f"no floor gates for bench tag '{tag}'; schema checks only")

    if failures:
        print("\nperf-smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
