// E9 — the paper's accuracy requirements (§2-§3): "we need to integrate
// particles with short timescale with high accuracy to maintain reasonable
// overall accuracy of the result", with softening "two orders of magnitude
// smaller than the Hill radius". This bench sweeps the timestep parameter
// eta, compares the double-precision CPU path against the GRAPE reduced-
// precision path, and reports the softening/Hill-radius ratio.
#include <cstdio>

#include "bench_common.hpp"
#include "disk/hill.hpp"
#include "grape6/backend.hpp"
#include "nbody/energy.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

double drift_for(std::size_t n, double dt_max, bool grape, double t_end) {
  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 2718;
  auto d = disk::make_disk(dcfg);

  auto icfg = disk_config();
  icfg.dt_max = dt_max;
  icfg.record_block_sizes = false;

  const double eps = 0.008;
  std::unique_ptr<nbody::ForceBackend> backend;
  if (grape) {
    hw::MachineConfig mc = hw::MachineConfig::mini(2, 4, 128);
    mc.fmt = hw::FormatSpec::for_scales(40.0, 1e-4);
    backend = std::make_unique<hw::Grape6Backend>(mc, eps);
  } else {
    backend = std::make_unique<nbody::CpuDirectBackend>(eps);
  }
  nbody::HermiteIntegrator integ(d.system, *backend, icfg);
  integ.initialize();
  const double e0 = nbody::compute_energy(d.system, eps, 1.0).total();
  integ.evolve(t_end);
  const double e1 = nbody::compute_energy(d.system, eps, 1.0).total();
  return std::abs((e1 - e0) / e0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n = full ? 400 : 150;
  const double t_end = full ? 128.0 : 64.0;

  std::printf("E9: integration accuracy and hardware number formats\n");
  std::printf("-----------------------------------------------------\n\n");

  std::printf("softening calibration (paper §2):\n");
  const double rh = disk::hill_radius(20.0, 1.0e-5, 1.0);
  util::Table ts({"quantity", "value"});
  ts.row({"protoplanet Hill radius at 20 AU [AU]", util::fmt(rh, 4)});
  ts.row({"softening [AU]", "0.008"});
  ts.row({"ratio (paper: 'two orders of magnitude')", util::fmt(rh / 0.008, 3)});
  std::printf("%s\n", ts.render().c_str());

  // The smooth heliocentric motion dominates the error budget and is paced
  // by dt_max (the Aarseth criterion only bites during encounters), so the
  // convergence sweep is over dt_max — the 4th-order scheme should show
  // ~dt^4 error decay.
  std::printf("relative energy drift over T = %g, N = %zu:\n", t_end, n);
  util::Table t({"dt_max", "cpu double", "grape formats", "grape/cpu"});
  double cpu_loose = 0.0, cpu_tight = 0.0;
  bool grape_tracks = true;
  for (double dt_max : {8.0, 4.0, 2.0, 1.0}) {
    const double c = drift_for(n, dt_max, false, t_end);
    const double g = drift_for(n, dt_max, true, t_end);
    t.row({util::fmt(dt_max, 3), util::fmt_sci(c, 2), util::fmt_sci(g, 2),
           util::fmt(g / std::max(c, 1e-300), 2)});
    if (dt_max == 8.0) cpu_loose = c;
    if (dt_max == 1.0) cpu_tight = c;
    // The hardware path may bottom out at the format floor (~1e-7 relative
    // force error) but must never be orders of magnitude worse than CPU.
    if (g > std::max(c * 50.0, 1e-6)) grape_tracks = false;
  }
  std::printf("%s\n", t.render().c_str());

  const bool converges = cpu_tight < 0.1 * cpu_loose;  // ~dt^4 would give 1/4096
  std::printf("shape check: drift falls steeply with dt_max AND grape "
              "formats do not degrade the integration: %s\n",
              (converges && grape_tracks) ? "PASS" : "FAIL");
  return (converges && grape_tracks) ? 0 : 1;
}
