// E11 — thread-scaling sweep of the hardware emulation: the 64-board GRAPE
// machine model and the 16-host cluster simulation, each stepped by pools of
// 1..8 lanes. Every point is checked bit-identical against the 1-lane
// schedule (fixed-point merging is exactly associative, so the parallel
// reduction must reproduce the serial registers), and the sweep is exported
// as BENCH_threads.json for CI and bench/recorded/.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "cluster/parallel_sim.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

struct SweepPoint {
  std::size_t threads = 1;
  double seconds = 0.0;
  double interactions_per_sec = 0.0;
  double speedup = 1.0;       ///< vs the 1-lane point of the same sweep
  bool bit_identical = false; ///< accumulators == the 1-lane accumulators

  JsonBuilder to_json() const {
    return JsonBuilder::object()
        .field("threads", double(threads))
        .field("seconds", seconds)
        .field("interactions_per_sec", interactions_per_sec)
        .field("speedup", speedup)
        .field("bit_identical", bit_identical);
  }
};

/// Best-of-reps sweep over the lane counts, comparing every point's
/// accumulators against the 1-lane result. \p factory gets the pool and
/// returns the timed pass (setup — construction, load — stays outside the
/// timer); the pass returns the per-call accumulators.
template <typename Factory>
std::vector<SweepPoint> sweep(const std::vector<std::size_t>& lanes, int reps,
                              double interactions, Factory&& factory) {
  std::vector<SweepPoint> out;
  std::vector<hw::ForceAccumulator> baseline;
  for (std::size_t t : lanes) {
    util::ThreadPool pool(t);
    auto pass = factory(pool);
    SweepPoint p;
    p.threads = t;
    p.seconds = std::numeric_limits<double>::infinity();
    std::vector<hw::ForceAccumulator> acc;
    for (int rep = 0; rep <= reps; ++rep) {  // rep 0 is the warm-up
      util::Timer timer;
      acc = pass();
      if (rep > 0) p.seconds = std::min(p.seconds, timer.seconds());
    }
    if (baseline.empty()) baseline = acc;
    p.bit_identical = acc == baseline;
    p.interactions_per_sec = interactions / p.seconds;
    p.speedup = out.empty() ? 1.0 : out.front().seconds / p.seconds;
    out.push_back(p);
  }
  return out;
}

void print_sweep(const char* what, const std::vector<SweepPoint>& points) {
  util::Table t({"threads", "ms/pass", "Minter/s", "speedup", "bit-identical"});
  for (const auto& p : points) {
    t.row({util::fmt_int(static_cast<long long>(p.threads)),
           util::fmt(p.seconds * 1e3, 3), util::fmt(p.interactions_per_sec / 1e6, 3),
           util::fmt(p.speedup, 3), p.bit_identical ? "yes" : "no"});
  }
  std::printf("%s\n%s\n", what, t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int reps = full ? 5 : 3;
  const std::size_t nj = full ? 8192 : 4096;
  const std::size_t ni = 256;
  const std::vector<std::size_t> lanes{1, 2, 4, 8};

  std::printf("E11: emulation thread scaling (hardware has %zu threads; "
              "sweeps are bit-identity-checked against 1 lane)\n\n",
              std::max<std::size_t>(1, std::thread::hardware_concurrency()));

  // Shared particle cloud (fixed seed, disk-like shape).
  const hw::MachineConfig cfg = parallel_bench_machine();
  util::Rng rng(20020101);
  std::vector<hw::JParticle> js;
  std::vector<hw::IParticle> is;
  for (std::size_t j = 0; j < nj; ++j) {
    const auto id = static_cast<std::uint32_t>(j);
    const hw::Vec3 x{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0),
                     rng.uniform(-0.5, 0.5)};
    const hw::Vec3 v{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                     rng.uniform(-0.02, 0.02)};
    js.push_back(
        hw::make_j_particle(id, rng.uniform(1e-9, 1e-7), 0.0, x, v, {}, {}, cfg.fmt));
    if (is.size() < ni) is.push_back(hw::make_i_particle(id, x, v, cfg.fmt));
  }
  const double interactions = double(nj) * double(is.size());

  // Sweep 1: the 64-board machine emulation (predict + compute + reduction).
  const auto machine_sweep = sweep(lanes, reps, interactions, [&](util::ThreadPool& pool) {
    auto machine = std::make_shared<hw::Grape6Machine>(cfg, &pool);
    machine->load(js);
    return [machine, &is] {
      machine->predict_all(0.0);
      std::vector<hw::ForceAccumulator> acc;
      machine->compute(is, 1e-4, acc);
      return acc;
    };
  });
  print_sweep("GRAPE machine, 64 boards:", machine_sweep);

  // Sweep 2: the 16-host cluster simulation (hardware-net organisation —
  // the paper's figure 4/5 cluster, hosts stepped concurrently).
  const auto cluster_sweep = sweep(lanes, reps, interactions, [&](util::ThreadPool& pool) {
    auto sys = std::make_shared<cluster::ParallelHostSystem>(
        16, cluster::HostMode::kHardwareNet, cfg.fmt, 0.008, cluster::LinkSpec{},
        &pool);
    sys->load(js);
    return [sys, &is] {
      std::vector<hw::ForceAccumulator> acc;
      sys->compute(0.0, is, acc);
      return acc;
    };
  });
  print_sweep("cluster simulation, 16 hosts (hardware-net):", cluster_sweep);

  bool identical = true;
  for (const auto& p : machine_sweep) identical = identical && p.bit_identical;
  for (const auto& p : cluster_sweep) identical = identical && p.bit_identical;

  const std::string json_path = flag_str(argc, argv, "json", "BENCH_threads.json");
  JsonBuilder mj = JsonBuilder::array();
  for (const auto& p : machine_sweep) mj.push(p.to_json());
  JsonBuilder cj = JsonBuilder::array();
  for (const auto& p : cluster_sweep) cj.push(p.to_json());
  const JsonBuilder doc =
      JsonBuilder::object()
          .field("bench", "threads")
          .field("hardware_concurrency",
                 double(std::max<std::size_t>(1, std::thread::hardware_concurrency())))
          .field("nj", double(nj))
          .field("ni", double(is.size()))
          .field("machine_sweep", mj)
          .field("cluster_sweep", cj)
          .field("bit_identical", identical);
  if (write_json_file(json_path, doc))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  std::printf("bit-identity check (all sweep points vs 1 lane): %s\n",
              identical ? "PASS" : "FAIL");
  return identical ? 0 : 1;
}
