// E4 — the paper's §3 argument: tree codes reduce the per-step cost from
// O(N^2) to O(N log N), "however, it is very difficult to achieve high
// efficiency with these algorithms when the timesteps of particles vary
// widely". This bench makes the trade quantitative on the paper's workload:
//
//   (a) force accuracy and cost of Barnes-Hut vs direct summation at fixed N;
//   (b) cost to integrate the disk over a fixed horizon:
//        - direct + block individual timesteps (the paper's scheme),
//        - tree + shared leapfrog whose single dt must track the SMALLEST
//          individual timescale in the system (the §3 point).
//   (c) the P3T hybrid (src/p3t): tree far field + direct neighbor forces
//       under the SAME block-timestep Hermite scheme — the resolution of the
//       §3 dilemma. Exports BENCH_p3t.json (ns/interaction for direct vs
//       hybrid force sweeps, the N where the hybrid takes over, force
//       accuracy, energy drift) for CI's perf floor (bench/perf_floor.json).
#include <cstdio>
#include <numeric>
#include <thread>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "nbody/energy.hpp"
#include "nbody/leapfrog.hpp"
#include "p3t/p3t_backend.hpp"
#include "tree/bh_tree.hpp"

using namespace g6;
using namespace g6::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n = full ? 4000 : 1500;
  const double t_end = full ? 64.0 : 32.0;

  std::printf("E4: tree vs direct with wide timestep ranges (paper §3)\n");
  std::printf("--------------------------------------------------------\n\n");

  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 31415;
  for (auto& pp : dcfg.protoplanets) pp.mass = 3.0e-4;
  auto d = disk::make_disk(dcfg);
  const double eps = 0.008;

  // (a) Accuracy/cost of one force evaluation sweep.
  std::printf("(a) single force sweep at N = %zu:\n", d.system.size());
  util::Table ta({"engine", "theta", "rel. force error (median)",
                  "interactions", "wall [ms]"});
  {
    nbody::DirectAccelBackend direct(eps);
    std::vector<nbody::Force> ref(d.system.size());
    util::Timer t0;
    direct.compute_all(d.system, ref);
    const double direct_ms = t0.seconds() * 1e3;
    ta.row({"direct", "-", "0", util::fmt_sci(double(direct.interaction_count()), 2),
            util::fmt(direct_ms, 3)});

    for (double theta : {0.3, 0.5, 0.8}) {
      tree::TreeConfig tcfg;
      tcfg.theta = theta;
      tree::TreeAccelBackend tb(tcfg, eps);
      std::vector<nbody::Force> out(d.system.size());
      util::Timer t1;
      tb.compute_all(d.system, out);
      const double tree_ms = t1.seconds() * 1e3;
      std::vector<double> errs;
      for (std::size_t i = 0; i < d.system.size(); i += 3) {
        const double na = norm(ref[i].acc);
        if (na > 0.0) errs.push_back(norm(out[i].acc - ref[i].acc) / na);
      }
      std::nth_element(errs.begin(), errs.begin() + errs.size() / 2, errs.end());
      ta.row({"barnes-hut", util::fmt(theta, 2),
              util::fmt_sci(errs[errs.size() / 2], 2),
              util::fmt_sci(double(tb.interaction_count()), 2),
              util::fmt(tree_ms, 3)});
    }
  }
  std::printf("%s\n", ta.render().c_str());

  // (b) Integrate the disk over the same horizon with both schemes, tracking
  // both cost and accuracy.
  std::printf("(b) integrating to T = %g:\n", t_end);

  auto energy_of = [&](nbody::ParticleSystem& ps) {
    return nbody::compute_energy(ps, eps, 1.0).total();
  };

  // Direct + block timesteps (the paper's scheme).
  auto d1 = disk::make_disk(dcfg);
  nbody::CpuDirectBackend cpu(eps);
  nbody::HermiteIntegrator hermite(d1.system, cpu, disk_config());
  const double e0 = energy_of(d1.system);
  util::Timer th;
  hermite.initialize();
  hermite.evolve(t_end);
  const double hermite_wall = th.seconds();
  const double hermite_drift = std::abs((energy_of(d1.system) - e0) / e0);
  const double hermite_inter = double(cpu.interaction_count());
  double dt_min_seen = 1e30;
  for (std::size_t i = 0; i < d1.system.size(); ++i)
    dt_min_seen = std::min(dt_min_seen, d1.system.dt(i));

  // Tree + shared leapfrog. A shared-step scheme must resolve the shortest
  // timescale present — the smallest dt the individual-step run needed. The
  // "loose" variant uses 8x that step: cheaper, but under-resolves the very
  // encounters that drive the physics (§3's point).
  const double shared_dt_fair = dt_min_seen;
  const double shared_dt_loose = dt_min_seen * 8.0;

  auto run_tree = [&](double dt, double horizon) {
    auto d2 = disk::make_disk(dcfg);
    tree::TreeConfig tcfg;
    tcfg.theta = 0.5;
    tree::TreeAccelBackend tb(tcfg, eps);
    nbody::LeapfrogIntegrator lf(d2.system, tb, dt, 1.0);
    util::Timer t;
    lf.initialize();
    lf.evolve(horizon);
    struct Out {
      double wall, inter, drift;
    };
    return Out{t.seconds(), double(tb.interaction_count()),
               std::abs((energy_of(d2.system) - e0) / e0)};
  };

  // The fair variant is probed over a shorter horizon and its cost scaled
  // up (running it fully is exactly the blow-up the paper avoids).
  const auto loose = run_tree(shared_dt_loose, t_end);
  const double probe_horizon = std::min(t_end, shared_dt_fair * 64.0);
  const auto fair_probe = run_tree(shared_dt_fair, probe_horizon);
  const double scale_up = t_end / probe_horizon;
  const double fair_wall = fair_probe.wall * scale_up;
  const double fair_inter = fair_probe.inter * scale_up;

  util::Table tb({"scheme", "dt policy", "interactions", "wall [s]",
                  "|dE/E|", "vs paper scheme"});
  tb.row({"direct + blockstep (paper)", "individual, power-of-two",
          util::fmt_sci(hermite_inter, 2), util::fmt(hermite_wall, 3),
          util::fmt_sci(hermite_drift, 1), "1.0x"});
  tb.row({"tree + shared leapfrog",
          "dt = min individual dt (" + util::fmt(shared_dt_fair, 2) + ")",
          util::fmt_sci(fair_inter, 2), util::fmt(fair_wall, 3), "-",
          util::fmt(fair_wall / hermite_wall, 2) + "x (extrapolated)"});
  tb.row({"tree + shared leapfrog",
          "dt = 8x that (under-resolved)", util::fmt_sci(loose.inter, 2),
          util::fmt(loose.wall, 3), util::fmt_sci(loose.drift, 1),
          util::fmt(loose.wall / hermite_wall, 2) + "x"});
  std::printf("%s\n", tb.render().c_str());

  std::printf("smallest individual dt needed: %g (a shared-step scheme pays "
              "this for every particle, every step)\n\n", dt_min_seen);

  // Shape check (the §3 claim): once the shared step must track the
  // encounter timescale, the tree scheme loses to direct + blockstep; and
  // the cheap shared step buys its speed with accuracy.
  const bool ok = fair_wall > hermite_wall && loose.drift > hermite_drift;
  std::printf("shape check: direct+blockstep beats resolution-matched "
              "tree+shared-dt, and the cheap shared step loses accuracy: %s\n\n",
              ok ? "PASS" : "FAIL");

  // (c) P3T hybrid vs direct: one full force sweep per N, both engines on
  // the shared pool. The hybrid keeps every neighbor pair on the exact
  // direct path and takes the far field off the epoch tree, so its cost is
  // O(N log N) per sweep — the crossover N is where that wins outright.
  std::printf("(c) P3T hybrid force sweeps (theta = 0.4):\n");
  auto& pool = util::shared_pool();
  const std::vector<std::size_t> sweep_ns =
      full ? std::vector<std::size_t>{1024, 4096, 16384, 65536}
           : std::vector<std::size_t>{512, 2048, 8192};
  util::Table tc({"N", "direct [ms]", "hybrid [ms]", "direct ns/i",
                  "hybrid ns/i*", "tree frac", "max rel err", "rms rel err"});
  JsonBuilder sweep_json = JsonBuilder::array();
  std::size_t crossover_n = 0;
  for (const std::size_t ns : sweep_ns) {
    disk::DiskConfig scfg = disk::uranus_neptune_config(ns);
    scfg.seed = 31415;
    auto ds = disk::make_disk(scfg);
    auto& ps = ds.system;
    std::vector<std::uint32_t> ilist(ps.size());
    std::iota(ilist.begin(), ilist.end(), 0u);
    std::vector<nbody::Force> fd(ps.size()), fh(ps.size());

    nbody::CpuDirectBackend direct(eps, &pool);
    direct.load(ps);
    direct.compute(0.0, ilist, fd);  // warm-up
    util::Timer td;
    direct.compute(0.0, ilist, fd);
    const double direct_ms = td.seconds() * 1e3;

    p3t::P3TConfig pcfg;
    pcfg.gm_central = 1.0;
    p3t::P3THybridBackend hybrid(pcfg, eps, &pool);
    hybrid.load(ps);
    hybrid.ensure_epoch(0.0);  // epoch build amortizes over many blocks
    hybrid.compute(0.0, ilist, fh);  // warm-up
    const std::uint64_t inter0 = hybrid.interaction_count();
    util::Timer thy;
    hybrid.compute(0.0, ilist, fh);
    const double hybrid_ms = thy.seconds() * 1e3;
    const double hybrid_inter = double(hybrid.interaction_count() - inter0);

    double max_rel = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const double na = norm(fd[i].acc);
      if (na <= 0.0) continue;
      const double rel = norm(fh[i].acc - fd[i].acc) / na;
      max_rel = std::max(max_rel, rel);
      sum_sq += rel * rel;
    }
    const double rms_rel = std::sqrt(sum_sq / double(ps.size()));
    const double pair_inter = double(ps.size()) * double(ps.size() - 1);
    const double direct_nsi = 1e9 * direct_ms * 1e-3 / pair_inter;
    // *hybrid ns/i is per direct-equivalent interaction: the honest currency
    // for the crossover (the hybrid simply evaluates far fewer of them).
    const double hybrid_nsi = 1e9 * hybrid_ms * 1e-3 / pair_inter;
    const double tree_frac = 1.0 - hybrid_inter / pair_inter;
    if (crossover_n == 0 && hybrid_ms < direct_ms) crossover_n = ps.size();

    tc.row({util::fmt_int(static_cast<long long>(ps.size())),
            util::fmt(direct_ms, 3), util::fmt(hybrid_ms, 3),
            util::fmt(direct_nsi, 3), util::fmt(hybrid_nsi, 3),
            util::fmt(tree_frac, 3), util::fmt_sci(max_rel, 2),
            util::fmt_sci(rms_rel, 2)});
    sweep_json.push(JsonBuilder::object()
                        .field("n", double(ps.size()))
                        .field("direct_ms", direct_ms)
                        .field("hybrid_ms", hybrid_ms)
                        .field("direct_ns_per_interaction", direct_nsi)
                        .field("hybrid_ns_per_interaction", hybrid_nsi)
                        .field("tree_fraction", tree_frac)
                        .field("max_rel_err", max_rel)
                        .field("rms_rel_err", rms_rel));
  }
  std::printf("%s\n", tc.render().c_str());
  if (crossover_n != 0)
    std::printf("hybrid beats direct from N = %zu in this sweep\n\n",
                crossover_n);
  else
    std::printf("no crossover inside this sweep (largest N = %zu)\n\n",
                sweep_ns.back());

  // Energy drift over a real block-timestep integration: the hybrid must
  // hold the same conservation class as direct (docs/P3T.md gate).
  const std::size_t en = full ? 4000 : 1000;
  const double et = 2.0;
  auto drift_of = [&](nbody::ForceBackend& backend) {
    disk::DiskConfig ecfg = disk::uranus_neptune_config(en);
    ecfg.seed = 31415;
    auto de = disk::make_disk(ecfg);
    nbody::HermiteIntegrator integ(de.system, backend, disk_config(), &pool);
    integ.initialize();
    const double e0 = energy_of(de.system);
    integ.evolve(et);
    return std::abs((energy_of(de.system) - e0) / e0);
  };
  nbody::CpuDirectBackend edirect(eps, &pool);
  p3t::P3TConfig epcfg;
  epcfg.gm_central = 1.0;
  p3t::P3THybridBackend ehybrid(epcfg, eps, &pool);
  const double direct_drift = drift_of(edirect);
  const double hybrid_drift = drift_of(ehybrid);
  std::printf("energy drift to T=%g at N=%zu: direct %.3g, hybrid %.3g\n\n",
              et, en, direct_drift, hybrid_drift);

  const std::string json_path =
      flag_str(argc, argv, "json", "BENCH_p3t.json");
  JsonBuilder doc =
      JsonBuilder::object()
          .field("bench", "p3t")
          .field("full", full)
          .field("hardware_concurrency",
                 double(std::max<unsigned>(1, std::thread::hardware_concurrency())))
          .field("theta", 0.4)
          .field("sweep", sweep_json)
          .field("crossover_n", double(crossover_n))
          .field("max_sweep_n", double(sweep_ns.back()))
          .field("energy", JsonBuilder::object()
                               .field("n", double(en))
                               .field("t_end", et)
                               .field("direct_drift", direct_drift)
                               .field("hybrid_drift", hybrid_drift));
  if (write_json_file(json_path, doc))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  return ok ? 0 : 1;
}
