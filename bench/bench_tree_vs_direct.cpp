// E4 — the paper's §3 argument: tree codes reduce the per-step cost from
// O(N^2) to O(N log N), "however, it is very difficult to achieve high
// efficiency with these algorithms when the timesteps of particles vary
// widely". This bench makes the trade quantitative on the paper's workload:
//
//   (a) force accuracy and cost of Barnes-Hut vs direct summation at fixed N;
//   (b) cost to integrate the disk over a fixed horizon:
//        - direct + block individual timesteps (the paper's scheme),
//        - tree + shared leapfrog whose single dt must track the SMALLEST
//          individual timescale in the system (the §3 point).
#include <cstdio>

#include "bench_common.hpp"
#include "nbody/energy.hpp"
#include "nbody/leapfrog.hpp"
#include "tree/bh_tree.hpp"

using namespace g6;
using namespace g6::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n = full ? 4000 : 1500;
  const double t_end = full ? 64.0 : 32.0;

  std::printf("E4: tree vs direct with wide timestep ranges (paper §3)\n");
  std::printf("--------------------------------------------------------\n\n");

  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 31415;
  for (auto& pp : dcfg.protoplanets) pp.mass = 3.0e-4;
  auto d = disk::make_disk(dcfg);
  const double eps = 0.008;

  // (a) Accuracy/cost of one force evaluation sweep.
  std::printf("(a) single force sweep at N = %zu:\n", d.system.size());
  util::Table ta({"engine", "theta", "rel. force error (median)",
                  "interactions", "wall [ms]"});
  {
    nbody::DirectAccelBackend direct(eps);
    std::vector<nbody::Force> ref(d.system.size());
    util::Timer t0;
    direct.compute_all(d.system, ref);
    const double direct_ms = t0.seconds() * 1e3;
    ta.row({"direct", "-", "0", util::fmt_sci(double(direct.interaction_count()), 2),
            util::fmt(direct_ms, 3)});

    for (double theta : {0.3, 0.5, 0.8}) {
      tree::TreeConfig tcfg;
      tcfg.theta = theta;
      tree::TreeAccelBackend tb(tcfg, eps);
      std::vector<nbody::Force> out(d.system.size());
      util::Timer t1;
      tb.compute_all(d.system, out);
      const double tree_ms = t1.seconds() * 1e3;
      std::vector<double> errs;
      for (std::size_t i = 0; i < d.system.size(); i += 3) {
        const double na = norm(ref[i].acc);
        if (na > 0.0) errs.push_back(norm(out[i].acc - ref[i].acc) / na);
      }
      std::nth_element(errs.begin(), errs.begin() + errs.size() / 2, errs.end());
      ta.row({"barnes-hut", util::fmt(theta, 2),
              util::fmt_sci(errs[errs.size() / 2], 2),
              util::fmt_sci(double(tb.interaction_count()), 2),
              util::fmt(tree_ms, 3)});
    }
  }
  std::printf("%s\n", ta.render().c_str());

  // (b) Integrate the disk over the same horizon with both schemes, tracking
  // both cost and accuracy.
  std::printf("(b) integrating to T = %g:\n", t_end);

  auto energy_of = [&](nbody::ParticleSystem& ps) {
    return nbody::compute_energy(ps, eps, 1.0).total();
  };

  // Direct + block timesteps (the paper's scheme).
  auto d1 = disk::make_disk(dcfg);
  nbody::CpuDirectBackend cpu(eps);
  nbody::HermiteIntegrator hermite(d1.system, cpu, disk_config());
  const double e0 = energy_of(d1.system);
  util::Timer th;
  hermite.initialize();
  hermite.evolve(t_end);
  const double hermite_wall = th.seconds();
  const double hermite_drift = std::abs((energy_of(d1.system) - e0) / e0);
  const double hermite_inter = double(cpu.interaction_count());
  double dt_min_seen = 1e30;
  for (std::size_t i = 0; i < d1.system.size(); ++i)
    dt_min_seen = std::min(dt_min_seen, d1.system.dt(i));

  // Tree + shared leapfrog. A shared-step scheme must resolve the shortest
  // timescale present — the smallest dt the individual-step run needed. The
  // "loose" variant uses 8x that step: cheaper, but under-resolves the very
  // encounters that drive the physics (§3's point).
  const double shared_dt_fair = dt_min_seen;
  const double shared_dt_loose = dt_min_seen * 8.0;

  auto run_tree = [&](double dt, double horizon) {
    auto d2 = disk::make_disk(dcfg);
    tree::TreeConfig tcfg;
    tcfg.theta = 0.5;
    tree::TreeAccelBackend tb(tcfg, eps);
    nbody::LeapfrogIntegrator lf(d2.system, tb, dt, 1.0);
    util::Timer t;
    lf.initialize();
    lf.evolve(horizon);
    struct Out {
      double wall, inter, drift;
    };
    return Out{t.seconds(), double(tb.interaction_count()),
               std::abs((energy_of(d2.system) - e0) / e0)};
  };

  // The fair variant is probed over a shorter horizon and its cost scaled
  // up (running it fully is exactly the blow-up the paper avoids).
  const auto loose = run_tree(shared_dt_loose, t_end);
  const double probe_horizon = std::min(t_end, shared_dt_fair * 64.0);
  const auto fair_probe = run_tree(shared_dt_fair, probe_horizon);
  const double scale_up = t_end / probe_horizon;
  const double fair_wall = fair_probe.wall * scale_up;
  const double fair_inter = fair_probe.inter * scale_up;

  util::Table tb({"scheme", "dt policy", "interactions", "wall [s]",
                  "|dE/E|", "vs paper scheme"});
  tb.row({"direct + blockstep (paper)", "individual, power-of-two",
          util::fmt_sci(hermite_inter, 2), util::fmt(hermite_wall, 3),
          util::fmt_sci(hermite_drift, 1), "1.0x"});
  tb.row({"tree + shared leapfrog",
          "dt = min individual dt (" + util::fmt(shared_dt_fair, 2) + ")",
          util::fmt_sci(fair_inter, 2), util::fmt(fair_wall, 3), "-",
          util::fmt(fair_wall / hermite_wall, 2) + "x (extrapolated)"});
  tb.row({"tree + shared leapfrog",
          "dt = 8x that (under-resolved)", util::fmt_sci(loose.inter, 2),
          util::fmt(loose.wall, 3), util::fmt_sci(loose.drift, 1),
          util::fmt(loose.wall / hermite_wall, 2) + "x"});
  std::printf("%s\n", tb.render().c_str());

  std::printf("smallest individual dt needed: %g (a shared-step scheme pays "
              "this for every particle, every step)\n\n", dt_min_seen);

  // Shape check (the §3 claim): once the shared step must track the
  // encounter timescale, the tree scheme loses to direct + blockstep; and
  // the cheap shared step buys its speed with accuracy.
  const bool ok = fair_wall > hermite_wall && loose.drift > hermite_drift;
  std::printf("shape check: direct+blockstep beats resolution-matched "
              "tree+shared-dt, and the cheap shared step loses accuracy: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
