// E8 — microbenchmarks (google-benchmark) of the computational kernels:
// the software model of the GRAPE-6 force pipeline, the on-chip predictor,
// the CPU reference kernel, and the Hermite host-side kernels. These measure
// this reproduction's software throughput; the paper's per-chip numbers
// (one interaction per pipeline per 90 MHz cycle, 30.7 Gflops/chip) are
// printed for reference by bench_headline.
#include <benchmark/benchmark.h>

#include "grape6/chip.hpp"
#include "grape6/machine.hpp"
#include "nbody/blockstep.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/hermite.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using g6::hw::FormatSpec;
using g6::hw::ForceAccumulator;
using g6::hw::IParticle;
using g6::hw::JParticle;
using g6::hw::JPredicted;
using g6::util::Rng;
using g6::util::Vec3;

Vec3 rand_pos(Rng& rng) {
  return {rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(-1, 1)};
}

void BM_PairwiseForceCpu(benchmark::State& state) {
  Rng rng(1);
  const int n = 1024;
  std::vector<Vec3> xs(n), vs(n);
  std::vector<double> ms(n);
  for (int j = 0; j < n; ++j) {
    xs[j] = rand_pos(rng);
    vs[j] = {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), 0};
    ms[j] = rng.uniform(1e-10, 1e-9);
  }
  const Vec3 xi = rand_pos(rng);
  const double eps2 = 6.4e-5;
  for (auto _ : state) {
    g6::nbody::Force f{};
    for (int j = 0; j < n; ++j)
      g6::nbody::pairwise_force(xi, {}, xs[j], vs[j], ms[j], eps2, f);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["Minter/s"] = benchmark::Counter(
      double(state.iterations()) * n / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PairwiseForceCpu);

void BM_PipelineInteract(benchmark::State& state) {
  Rng rng(2);
  const FormatSpec fmt;
  const int n = 1024;
  std::vector<JPredicted> js(n);
  for (int j = 0; j < n; ++j) {
    JParticle p;
    p.id = static_cast<std::uint32_t>(j + 1);
    p.mass = rng.uniform(1e-10, 1e-9);
    p.x0 = g6::util::FixedVec3::quantize(rand_pos(rng), fmt.pos_lsb);
    js[j] = g6::hw::predict_j(p, 0.0, fmt);
  }
  const IParticle ip = g6::hw::make_i_particle(0, rand_pos(rng), {}, fmt);
  for (auto _ : state) {
    ForceAccumulator acc(fmt);
    for (int j = 0; j < n; ++j)
      g6::hw::pipeline_interact(ip, js[j], 6.4e-5, fmt, acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["Minter/s"] = benchmark::Counter(
      double(state.iterations()) * n / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineInteract);

void BM_PredictorPipeline(benchmark::State& state) {
  Rng rng(3);
  const FormatSpec fmt;
  JParticle p;
  p.mass = 1e-9;
  p.x0 = g6::util::FixedVec3::quantize(rand_pos(rng), fmt.pos_lsb);
  p.v0 = {0.1, -0.05, 0.001};
  p.a0 = {1e-3, 2e-3, 0};
  p.j0 = {1e-5, -1e-5, 0};
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-6;
    benchmark::DoNotOptimize(g6::hw::predict_j(p, t, fmt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorPipeline);

void BM_HermitePredictCorrect(benchmark::State& state) {
  const Vec3 x{1, 2, 0}, v{0.1, -0.2, 0}, a{1e-3, 2e-3, 0}, j{1e-5, 0, 0};
  const Vec3 a1{1.1e-3, 1.9e-3, 0}, j1{0.9e-5, 1e-6, 0};
  const double dt = 0.0078125;
  for (auto _ : state) {
    const auto pred = g6::nbody::hermite_predict(x, v, a, j, dt);
    const auto d = g6::nbody::hermite_derivatives(a, j, a1, j1, dt);
    const auto corr = g6::nbody::hermite_correct(pred, d, dt);
    benchmark::DoNotOptimize(corr);
    benchmark::DoNotOptimize(
        g6::nbody::aarseth_dt(a1, j1, d, dt, 0.02));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HermitePredictCorrect);

void BM_ChipComputePass(benchmark::State& state) {
  // One full chip pass: 48 i-particles against n_j local j-particles.
  Rng rng(4);
  const FormatSpec fmt;
  const auto n_j = static_cast<std::size_t>(state.range(0));
  g6::hw::Chip chip(fmt, n_j);
  for (std::size_t j = 0; j < n_j; ++j) {
    JParticle p;
    p.id = static_cast<std::uint32_t>(j + 100);
    p.mass = rng.uniform(1e-10, 1e-9);
    p.x0 = g6::util::FixedVec3::quantize(rand_pos(rng), fmt.pos_lsb);
    chip.store_j(p);
  }
  chip.predict_all(0.0);
  std::vector<IParticle> batch;
  for (int k = 0; k < g6::hw::kIPerChipPass; ++k)
    batch.push_back(g6::hw::make_i_particle(static_cast<std::uint32_t>(k),
                                            rand_pos(rng), {}, fmt));
  std::vector<ForceAccumulator> acc;
  for (auto _ : state) {
    acc.assign(batch.size(), ForceAccumulator(fmt));
    chip.compute(batch, 6.4e-5, acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * batch.size() * n_j);
  // The real chip needs kVmp * n_j + latency cycles at 90 MHz for this.
  state.counters["hw_us"] =
      double(chip.compute_cycles(batch.size())) / g6::hw::kClockHz * 1e6;
}
BENCHMARK(BM_ChipComputePass)->Arg(256)->Arg(1024);

void BM_MachineCompute(benchmark::State& state) {
  // The whole machine emulation — the full-system-shaped 64-board topology
  // fanned over a pool of Arg lanes (1 is the serial baseline; the Minter/s
  // ratio between Args is the emulation's thread scaling).
  Rng rng(6);
  g6::hw::MachineConfig cfg;
  cfg.clusters = 4;
  cfg.hosts_per_cluster = 4;
  cfg.boards_per_host = 4;
  cfg.chips_per_board = 2;
  cfg.jmem_per_chip = 64;
  cfg.fmt = FormatSpec::for_scales(64.0, 1.0);
  const std::size_t nj = 4096, ni = 128;

  g6::util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  g6::hw::Grape6Machine machine(cfg, &pool);
  std::vector<JParticle> js;
  std::vector<IParticle> batch;
  for (std::size_t j = 0; j < nj; ++j) {
    const auto id = static_cast<std::uint32_t>(j);
    const Vec3 x = rand_pos(rng);
    const Vec3 v{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2), 0};
    js.push_back(g6::hw::make_j_particle(id, rng.uniform(1e-10, 1e-9), 0.0, x, v,
                                         {}, {}, cfg.fmt));
    if (batch.size() < ni) batch.push_back(g6::hw::make_i_particle(id, x, v, cfg.fmt));
  }
  machine.load(js);
  machine.predict_all(0.0);
  std::vector<ForceAccumulator> acc;
  for (auto _ : state) {
    machine.compute(batch, 6.4e-5, acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * batch.size() * nj);
  state.counters["Minter/s"] = benchmark::Counter(
      double(state.iterations()) * double(batch.size()) * double(nj) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineCompute)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

void BM_BlockSchedulerChurn(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<double> times(n, 0.0), dts(n);
  Rng rng(5);
  for (auto& d : dts) d = std::ldexp(1.0, -static_cast<int>(rng.below(6)));
  g6::nbody::BlockScheduler sched;
  sched.reset(times, dts);
  std::vector<std::uint32_t> block;
  for (auto _ : state) {
    const double t = sched.pop_block(block);
    for (std::uint32_t i : block) sched.push(i, t + dts[i]);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockSchedulerChurn);

}  // namespace

BENCHMARK_MAIN();
