// Ablation A2 — corrector iterations (DESIGN.md; Kokubo, Yoshinaga & Makino
// 1998). The paper ran the standard PEC Hermite scheme; the same group later
// showed that iterating the corrector (P(EC)^n) makes the constant-step
// scheme time-symmetric and kills the secular energy drift. This bench
// regenerates that trade-off: drift and cost vs iteration count, on a fixed-
// step eccentric orbit and on the planetesimal disk.
#include <cstdio>

#include "bench_common.hpp"
#include "disk/kepler.hpp"
#include "nbody/hermite6.hpp"
#include "nbody/energy.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

struct Run {
  double drift = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t steps = 0;
  double wall = 0.0;
};

Run kepler_run(int iterations, double dt, double orbits) {
  disk::OrbitalElements el;
  el.a = 1.0;
  el.e = 0.3;
  const auto sv = disk::elements_to_state(el, 1.0);
  nbody::ParticleSystem ps;
  ps.add(1e-12, sv.pos, sv.vel);
  nbody::CpuDirectBackend backend(0.0);
  nbody::IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.dt_max = dt;
  cfg.dt_min = dt;  // constant steps: the time-symmetric regime
  cfg.eta = 1e9;
  cfg.eta_init = 1e9;
  cfg.corrector_iterations = iterations;
  nbody::HermiteIntegrator integ(ps, backend, cfg);
  util::Timer t;
  integ.initialize();
  const double e0 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
  integ.evolve(orbits * 2.0 * std::numbers::pi);
  const double e1 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
  return {std::abs((e1 - e0) / e0), backend.interaction_count(),
          integ.stats().steps, t.seconds()};
}

Run disk_run(int iterations, std::size_t n, double t_end) {
  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 606;
  auto d = disk::make_disk(dcfg);
  nbody::CpuDirectBackend backend(0.008);
  auto icfg = disk_config();
  icfg.corrector_iterations = iterations;
  icfg.record_block_sizes = false;
  nbody::HermiteIntegrator integ(d.system, backend, icfg);
  util::Timer t;
  integ.initialize();
  const double e0 = nbody::compute_energy(d.system, 0.008, 1.0).total();
  integ.evolve(t_end);
  const double e1 = nbody::compute_energy(d.system, 0.008, 1.0).total();
  return {std::abs((e1 - e0) / e0), backend.interaction_count(),
          integ.stats().steps, t.seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);

  std::printf("A2: corrector-iteration ablation (PEC vs P(EC)^n)\n");
  std::printf("--------------------------------------------------\n\n");

  std::printf("(a) fixed-step e = 0.3 Kepler orbit, 50 orbits, dt = 2^-6:\n");
  util::Table ta({"scheme", "|dE/E|", "particle steps", "wall [ms]"});
  double pec_drift = 0.0, pec2_drift = 0.0;
  for (int it : {1, 2, 3}) {
    const Run r = kepler_run(it, 0x1p-6, 50.0);
    ta.row({"P(EC)^" + std::to_string(it), util::fmt_sci(r.drift, 2),
            util::fmt_int(static_cast<long long>(r.steps)),
            util::fmt(r.wall * 1e3, 3)});
    if (it == 1) pec_drift = r.drift;
    if (it == 2) pec2_drift = r.drift;
  }
  // The 6th-order extension (NM08) at the same step, for scheme context.
  {
    g6::disk::OrbitalElements el;
    el.a = 1.0;
    el.e = 0.3;
    const auto sv = disk::elements_to_state(el, 1.0);
    nbody::ParticleSystem ps;
    ps.add(1e-12, sv.pos, sv.vel);
    nbody::Hermite6Integrator h6(ps, 0x1p-6, 0.0, 1.0, 2);
    util::Timer t;
    h6.initialize();
    const double e0 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    h6.evolve(50.0 * 2.0 * std::numbers::pi);
    const double e1 = 0.5 * norm2(ps.vel(0)) - 1.0 / norm(ps.pos(0));
    ta.row({"Hermite6 (NM08)", util::fmt_sci(std::abs((e1 - e0) / e0), 2),
            util::fmt_int(static_cast<long long>(h6.steps())),
            util::fmt(t.seconds() * 1e3, 3)});
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("(b) planetesimal disk (adaptive block steps), N = %d, T = %g:\n",
              full ? 600 : 250, full ? 256.0 : 128.0);
  util::Table tb({"scheme", "|dE/E|", "interactions", "wall [s]"});
  for (int it : {1, 2}) {
    const Run r = disk_run(it, full ? 600 : 250, full ? 256.0 : 128.0);
    tb.row({"P(EC)^" + std::to_string(it), util::fmt_sci(r.drift, 2),
            util::fmt_sci(double(r.interactions), 2), util::fmt(r.wall, 3)});
  }
  std::printf("%s\n", tb.render().c_str());

  std::printf("reading: with constant steps the iterated corrector removes the\n"
              "secular drift entirely (time symmetry); with adaptive block\n"
              "steps the gain is smaller — which is why the paper's production\n"
              "scheme stayed with the cheaper PEC + Aarseth-controlled steps.\n\n");

  const bool ok = pec2_drift < 1e-3 * pec_drift;
  std::printf("shape check: P(EC)^2 kills the fixed-step secular drift "
              "(>1000x): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
