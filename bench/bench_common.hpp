#pragma once
/// \file bench_common.hpp
/// \brief Shared plumbing for the paper-reproduction bench binaries: flag
///        parsing (default sizes are CI-friendly; --full or G6_FULL=1 runs
///        the larger configurations), scaled disk runs, and block-size
///        distribution collection.

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/perf_model.hpp"
#include "disk/disk_model.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace g6::bench {

/// True when the binary should run the larger (“full”) configuration.
inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  const char* env = std::getenv("G6_FULL");
  return env != nullptr && env[0] == '1';
}

/// Value of a `--name=value` style flag (or fallback).
inline double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  }
  return fallback;
}

/// Result of a scaled-down dynamics run on the paper's disk.
struct ScaledRun {
  std::size_t n_total = 0;
  double t_end = 0.0;
  double wall_seconds = 0.0;
  g6::nbody::IntegratorStats stats;
  /// Histogram of block sizes: block size -> number of blocks.
  std::map<std::size_t, std::uint64_t> block_histogram;

  /// The distribution expressed as (n_act, count) pairs.
  std::vector<g6::cluster::BlockCount> distribution() const {
    std::vector<g6::cluster::BlockCount> out;
    for (const auto& [n, c] : block_histogram) out.push_back({n, c});
    return out;
  }

  /// Rescale the measured block sizes to a target N (block sizes are scaled
  /// proportionally; counts preserved). This is how the small-N measurement
  /// parameterises the full-machine performance model.
  std::vector<g6::cluster::BlockCount> distribution_scaled_to(std::size_t n_target) const {
    std::vector<g6::cluster::BlockCount> out;
    const double scale =
        static_cast<double>(n_target) / static_cast<double>(n_total);
    for (const auto& [n, c] : block_histogram) {
      const auto scaled = static_cast<std::size_t>(
          std::max(1.0, static_cast<double>(n) * scale));
      out.push_back({scaled, c});
    }
    return out;
  }
};

/// Integrator settings used by every dynamics bench (paper algorithm).
inline g6::nbody::IntegratorConfig disk_config() {
  g6::nbody::IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.02;
  cfg.eta_init = 0.01;
  cfg.dt_max = 4.0;
  cfg.dt_min = 0x1p-30;
  cfg.record_block_sizes = true;
  return cfg;
}

/// Run the scaled Uranus-Neptune disk to \p t_end with the CPU backend and
/// collect block statistics.
inline ScaledRun run_scaled_disk(std::size_t n, double t_end,
                                 std::uint64_t seed = 20020101,
                                 double protoplanet_mass = 1.0e-5) {
  g6::disk::DiskConfig dcfg = g6::disk::uranus_neptune_config(n);
  dcfg.seed = seed;
  for (auto& pp : dcfg.protoplanets) pp.mass = protoplanet_mass;
  auto disk = g6::disk::make_disk(dcfg);

  g6::nbody::CpuDirectBackend backend(0.008);
  g6::nbody::HermiteIntegrator integ(disk.system, backend, disk_config());

  g6::util::Timer timer;
  integ.initialize();
  integ.evolve(t_end);

  ScaledRun run;
  run.n_total = disk.system.size();
  run.t_end = t_end;
  run.wall_seconds = timer.seconds();
  run.stats = integ.stats();
  for (std::uint32_t b : run.stats.block_sizes) ++run.block_histogram[b];
  return run;
}

/// The paper's headline particle count.
inline constexpr std::size_t kPaperN = 1799998 + 2;

}  // namespace g6::bench
