#pragma once
/// \file bench_common.hpp
/// \brief Shared plumbing for the paper-reproduction bench binaries: flag
///        parsing (default sizes are CI-friendly; --full or G6_FULL=1 runs
///        the larger configurations), scaled disk runs, block-size
///        distribution collection, and the observability wiring
///        (--trace <file> / --metrics <file>, see docs/OBSERVABILITY.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/perf_model.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "obs/blockstep_record.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace g6::bench {

/// True when the binary should run the larger (“full”) configuration.
inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  const char* env = std::getenv("G6_FULL");
  return env != nullptr && env[0] == '1';
}

/// Value of a `--name=value` style flag (or fallback).
inline double flag_value(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  }
  return fallback;
}

/// String flag: accepts both `--name=value` and `--name value`.
inline std::string flag_str(int argc, char** argv, const char* name,
                            const char* fallback = "") {
  const std::string eq = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) return argv[i] + eq.size();
    // Space form: the next argv must be a value, not another --flag.
    if (bare == argv[i] && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
      return argv[i + 1];
  }
  return fallback;
}

/// The `--trace <file>` / `--metrics <file>` flag pair every instrumented
/// binary supports.
struct ObsOptions {
  std::string trace_path;    ///< Chrome trace_event JSON destination
  std::string metrics_path;  ///< metrics snapshot JSON destination
  bool any() const { return !trace_path.empty() || !metrics_path.empty(); }
};

/// Parse the flag pair; requesting a trace enables the global recorder.
inline ObsOptions obs_options(int argc, char** argv) {
  ObsOptions opt;
  opt.trace_path = flag_str(argc, argv, "trace");
  opt.metrics_path = flag_str(argc, argv, "metrics");
  if (!opt.trace_path.empty()) g6::obs::TraceRecorder::global().enable();
  return opt;
}

/// Write the requested observability outputs. \p recorder (optional) embeds
/// the per-blockstep measured breakdowns into the metrics JSON; \p cmp
/// (optional) embeds the measured-vs-model report.
inline void write_obs_files(const ObsOptions& opt,
                            g6::obs::MetricsRegistry& registry,
                            const g6::obs::BlockstepRecorder* recorder = nullptr,
                            const g6::obs::ModelComparison* cmp = nullptr) {
  if (!opt.metrics_path.empty()) {
    std::vector<std::pair<std::string, std::string>> extras;
    if (recorder != nullptr) extras.emplace_back("blocksteps", recorder->to_json());
    if (cmp != nullptr)
      extras.emplace_back("measured_vs_model", g6::obs::comparison_to_json(*cmp));
    if (g6::obs::write_metrics_json(opt.metrics_path, registry.snapshot(), extras))
      std::printf("metrics snapshot written to %s\n", opt.metrics_path.c_str());
    else
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   opt.metrics_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    if (g6::obs::TraceRecorder::global().write_chrome_trace(opt.trace_path))
      std::printf("trace written to %s (load in chrome://tracing or "
                  "https://ui.perfetto.dev)\n", opt.trace_path.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n", opt.trace_path.c_str());
  }
}

/// Result of a scaled-down dynamics run on the paper's disk.
struct ScaledRun {
  std::size_t n_total = 0;
  double t_end = 0.0;
  double wall_seconds = 0.0;
  g6::nbody::IntegratorStats stats;
  /// Histogram of block sizes: block size -> number of blocks.
  std::map<std::size_t, std::uint64_t> block_histogram;

  /// The distribution expressed as (n_act, count) pairs.
  std::vector<g6::cluster::BlockCount> distribution() const {
    std::vector<g6::cluster::BlockCount> out;
    for (const auto& [n, c] : block_histogram) out.push_back({n, c});
    return out;
  }

  /// Rescale the measured block sizes to a target N (block sizes are scaled
  /// proportionally; counts preserved). This is how the small-N measurement
  /// parameterises the full-machine performance model.
  std::vector<g6::cluster::BlockCount> distribution_scaled_to(std::size_t n_target) const {
    std::vector<g6::cluster::BlockCount> out;
    const double scale =
        static_cast<double>(n_target) / static_cast<double>(n_total);
    for (const auto& [n, c] : block_histogram) {
      const auto scaled = static_cast<std::size_t>(
          std::max(1.0, static_cast<double>(n) * scale));
      out.push_back({scaled, c});
    }
    return out;
  }
};

/// Integrator settings used by every dynamics bench (paper algorithm).
inline g6::nbody::IntegratorConfig disk_config() {
  g6::nbody::IntegratorConfig cfg;
  cfg.solar_gm = 1.0;
  cfg.eta = 0.02;
  cfg.eta_init = 0.01;
  cfg.dt_max = 4.0;
  cfg.dt_min = 0x1p-30;
  cfg.record_block_sizes = true;
  return cfg;
}

/// Run the scaled Uranus-Neptune disk to \p t_end with the CPU backend and
/// collect block statistics. An optional recorder collects the measured
/// per-blockstep phase breakdown.
inline ScaledRun run_scaled_disk(std::size_t n, double t_end,
                                 std::uint64_t seed = 20020101,
                                 double protoplanet_mass = 1.0e-5,
                                 g6::obs::BlockstepRecorder* recorder = nullptr) {
  g6::disk::DiskConfig dcfg = g6::disk::uranus_neptune_config(n);
  dcfg.seed = seed;
  for (auto& pp : dcfg.protoplanets) pp.mass = protoplanet_mass;
  auto disk = g6::disk::make_disk(dcfg);

  g6::nbody::CpuDirectBackend backend(0.008);
  g6::nbody::HermiteIntegrator integ(disk.system, backend, disk_config());
  if (recorder != nullptr) integ.set_step_recorder(recorder);

  ScaledRun run;
  {
    g6::util::ScopedTimer wall(run.wall_seconds);
    integ.initialize();
    integ.evolve(t_end);
  }
  run.n_total = disk.system.size();
  run.t_end = t_end;
  run.stats = integ.stats();
  for (std::uint32_t b : run.stats.block_sizes) ++run.block_histogram[b];
  return run;
}

/// A scaled disk run on a small GRAPE-6 machine model with full phase
/// recording — the measured side of the paper's §4 accounting. The recorder
/// holds one StepRecord per block step (cycle-accounted predictor/pipeline
/// time, byte-accounted link phases, wall-clock host/sync phases).
struct MeasuredRun {
  ScaledRun run;
  g6::hw::MachineConfig machine;
  g6::obs::BlockstepRecorder recorder;
  g6::hw::HwCounters hw;
};

inline MeasuredRun run_measured_disk(std::size_t n, double t_end,
                                     std::uint64_t seed = 20020101,
                                     double protoplanet_mass = 1.0e-5) {
  MeasuredRun mr;
  mr.machine = g6::hw::MachineConfig::mini(4, 8, 4096);
  mr.machine.fmt = g6::hw::FormatSpec::for_scales(64.0, 1e-4);

  g6::disk::DiskConfig dcfg = g6::disk::uranus_neptune_config(n);
  dcfg.seed = seed;
  for (auto& pp : dcfg.protoplanets) pp.mass = protoplanet_mass;
  auto disk = g6::disk::make_disk(dcfg);

  g6::hw::Grape6Backend backend(mr.machine, 0.008);
  g6::nbody::HermiteIntegrator integ(disk.system, backend, disk_config());
  integ.set_step_recorder(&mr.recorder);
  {
    g6::util::ScopedTimer wall(mr.run.wall_seconds);
    integ.initialize();
    integ.evolve(t_end);
  }
  mr.run.n_total = disk.system.size();
  mr.run.t_end = t_end;
  mr.run.stats = integ.stats();
  mr.hw = backend.machine().counters();
  for (std::uint32_t b : mr.run.stats.block_sizes) ++mr.run.block_histogram[b];
  return mr;
}

/// Join a measured run against the analytic model of the same machine:
/// per-term measured/modeled ratios plus sustained-speed accounting.
inline g6::obs::ModelComparison measured_vs_model(
    const MeasuredRun& mr,
    g6::cluster::HostMode mode = g6::cluster::HostMode::kHardwareNet) {
  g6::cluster::PerfParams pp;
  pp.machine = mr.machine;
  const g6::cluster::PerfModel model(pp);
  return g6::obs::compare_to_model(
      mr.recorder.records(), mr.run.n_total, [&](std::size_t n_act) {
        return g6::cluster::to_phase_array(
            model.blockstep(mr.run.n_total, n_act, mode));
      });
}

/// The paper's headline particle count.
inline constexpr std::size_t kPaperN = 1799998 + 2;

}  // namespace g6::bench
