// E1 + E10 — the paper's headline (§6): 29.5 Tflops sustained out of a
// 63.4 Tflops theoretical peak for the 1.8-million-planetesimal simulation.
//
// Method: run the scaled disk to measure the block-size distribution of the
// paper's algorithm on the paper's workload, rescale the distribution to
// N = 1,799,998 + 2, and drive the full-machine analytic model (2048 chips,
// PCI/LVDS/GbE links, host integration costs) with it. Also prints the
// Gordon Bell operation accounting of §6.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "fault/campaign.hpp"
#include "grape6/g6_types.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

/// --faults <seed>: run seeded machine- and cluster-level fault campaigns,
/// fold the recovery accounting into the full-machine analytic model, and
/// export the overhead (retries, recomputed blocks, degraded Tflops) to
/// BENCH_faults.json (a recorded copy lives in bench/recorded/).
int run_fault_section(std::uint64_t seed, const cluster::PerfModel& model,
                      std::span<const cluster::BlockCount> blocks,
                      const cluster::RunEstimate& pristine,
                      const std::string& json_path) {
  std::printf("fault campaign (--faults, seed %llu):\n",
              static_cast<unsigned long long>(seed));
  fault::CampaignConfig cfg;
  cfg.fault_seed = seed;
  const fault::CampaignResult machine = fault::run_machine_campaign(cfg);
  const fault::CampaignResult cluster = fault::run_cluster_campaign(cfg);
  std::printf("  %s\n  %s\n", machine.summary.c_str(), cluster.summary.c_str());

  // Degrade the paper-scale model by the campaign's surviving topology and
  // charge its modeled recovery time, so the fault cost reads in Tflops.
  fault::FaultStatsSnapshot combined = machine.stats;
  combined.dead_hosts = cluster.stats.dead_hosts;
  combined.recovery_modeled_seconds += cluster.stats.recovery_modeled_seconds;
  const auto deg = cluster::Degradation::from_stats(combined);
  const auto degraded = model.run_degraded(kPaperN, blocks, deg);
  std::printf("  degraded model: %.3f Tflops (%.1f%% of pristine %.3f), "
              "recovery %.3g s charged\n\n",
              degraded.sustained_flops / 1e12,
              100.0 * degraded.sustained_flops / pristine.sustained_flops,
              pristine.sustained_flops / 1e12, deg.recovery_seconds);

  auto campaign_json = [](const fault::CampaignResult& r) {
    return JsonBuilder::object()
        .field("bit_identical", r.bit_identical)
        .field("faults_scheduled", double(r.faults_scheduled))
        .field("injected_total", double(r.stats.injected_total))
        .field("crc_payload_mismatches", double(r.stats.crc_payload_mismatches))
        .field("crc_jmem_mismatches", double(r.stats.crc_jmem_mismatches))
        .field("selftest_failures", double(r.stats.selftest_failures))
        .field("link_retries", double(r.stats.link_retries))
        .field("resends", double(r.stats.resends))
        .field("recomputed_chip_blocks", double(r.stats.recomputed_chip_blocks))
        .field("jmem_rewrites", double(r.stats.jmem_rewrites))
        .field("excluded_chips", double(r.stats.excluded_chips))
        .field("excluded_boards", double(r.stats.excluded_boards))
        .field("dead_hosts", double(r.stats.dead_hosts))
        .field("remapped_particles", double(r.stats.remapped_particles))
        .field("recovery_modeled_seconds", r.recovery_modeled_seconds)
        .field("degraded_capacity_fraction", r.degraded_capacity_fraction);
  };
  const JsonBuilder doc =
      JsonBuilder::object()
          .field("bench", "faults")
          .field("hardware_concurrency",
                 double(std::max<std::size_t>(1, std::thread::hardware_concurrency())))
          .field("fault_seed", double(seed))
          .field("machine_campaign", campaign_json(machine))
          .field("cluster_campaign", campaign_json(cluster))
          .field("pristine_sustained_tflops", pristine.sustained_flops / 1e12)
          .field("degraded_sustained_tflops", degraded.sustained_flops / 1e12)
          .field("degraded_efficiency", degraded.efficiency)
          .field("recovery_seconds_charged", deg.recovery_seconds);
  if (write_json_file(json_path, doc))
    std::printf("fault JSON written to %s\n\n", json_path.c_str());
  if (!machine.bit_identical || !cluster.bit_identical) {
    std::printf("fault campaign bit-identity: FAIL\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const ObsOptions obs = obs_options(argc, argv);
  const std::size_t n_scaled = full ? 4000 : 2000;
  const double t_end = full ? 256.0 : 128.0;

  std::printf("E1: headline performance (paper §6)\n");
  std::printf("-----------------------------------\n");
  std::printf("measuring block-size distribution on a scaled run: N=%zu, T=%g\n\n",
              n_scaled, t_end);

  const ScaledRun run = run_scaled_disk(n_scaled, t_end);
  std::printf("scaled run: %llu blocks, %llu individual steps, mean block %.1f "
              "(%.1f%% of N), wall %.1fs\n\n",
              static_cast<unsigned long long>(run.stats.blocks),
              static_cast<unsigned long long>(run.stats.steps),
              run.stats.mean_block_size(),
              100.0 * run.stats.mean_block_size() / double(run.n_total),
              run.wall_seconds);

  cluster::PerfModel model{cluster::PerfParams{}};
  const auto blocks = run.distribution_scaled_to(kPaperN);
  const auto est = model.run(kPaperN, blocks);

  // Fixed reference operating points for sensitivity.
  auto fixed_point = [&](std::size_t n_act) {
    std::vector<cluster::BlockCount> one{{n_act, 1}};
    return model.run(kPaperN, one);
  };

  util::Table t({"quantity", "paper", "model", "note"});
  t.row({"peak [Tflops]", "63.4", util::fmt(model.peak_flops() / 1e12, 3),
         "2048 chips x 6 pipes x 90 MHz x 57 ops"});
  t.row({"sustained [Tflops]", "29.5", util::fmt(est.sustained_flops / 1e12, 3),
         "measured block distribution, rescaled to 1.8M"});
  t.row({"efficiency", "46.5%", util::fmt_pct(est.efficiency),
         "sustained / peak"});
  t.row({"sustained @ n_act=1000", "-",
         util::fmt(fixed_point(1000).sustained_flops / 1e12, 3), "sensitivity"});
  t.row({"sustained @ n_act=2000", "-",
         util::fmt(fixed_point(2000).sustained_flops / 1e12, 3), "sensitivity"});
  t.row({"sustained @ n_act=8000", "-",
         util::fmt(fixed_point(8000).sustained_flops / 1e12, 3), "sensitivity"});
  std::printf("%s\n", t.render().c_str());

  // Per-term breakdown at the mean operating point.
  const auto mean_block = static_cast<std::size_t>(std::max(
      1.0, run.stats.mean_block_size() * double(kPaperN) / double(run.n_total)));
  const auto bd = model.blockstep(kPaperN, mean_block);
  util::Table tb({"step term", "ms", "share"});
  const double total = bd.total();
  auto row = [&](const char* name, double sec) {
    tb.row({name, util::fmt(sec * 1e3, 3), util::fmt_pct(sec / total)});
  };
  row("predictor", bd.predict);
  row("pipelines", bd.pipeline);
  row("i-particle comm", bd.i_comm);
  row("result comm", bd.result_comm);
  row("j-update", bd.j_update);
  row("host integration", bd.host);
  row("synchronisation", bd.sync);
  tb.row({"total", util::fmt(total * 1e3, 3), "100.0%"});
  std::printf("block-step breakdown at n_act = %zu (of N = %zu):\n%s\n",
              mean_block, kPaperN, tb.render().c_str());

  // E10: operation accounting in the paper's convention.
  const double ops_per_step = 57.0 * double(kPaperN);
  const double steps_per_unit_time =
      double(run.stats.steps) / run.t_end * double(kPaperN) / double(run.n_total);
  const double t_paper = 2000.0;  // dynamical time units, paper-scale run
  const double total_steps = steps_per_unit_time * t_paper;
  const double total_ops = total_steps * ops_per_step;
  std::printf("E10: operation accounting (\"one particle-particle interaction "
              "amounts to 57 floating point operations\")\n");
  util::Table ta({"quantity", "value"});
  ta.row({"individual steps / time unit (scaled up)", util::fmt_sci(steps_per_unit_time)});
  ta.row({"assumed run length [time units]", util::fmt(t_paper, 4)});
  ta.row({"total individual steps", util::fmt_sci(total_steps)});
  ta.row({"ops per individual step (57 N)", util::fmt_sci(ops_per_step)});
  ta.row({"total floating point operations", util::fmt_sci(total_ops)});
  ta.row({"hours at modeled sustained speed",
          util::fmt(total_ops / est.sustained_flops / 3600.0, 4)});
  std::printf("%s\n", ta.render().c_str());

  // Sensitivity of the headline conclusion to the model's free parameters.
  std::printf("model sensitivity (sustained Tflops at the measured "
              "distribution):\n");
  util::Table ts({"variant", "sustained [Tflops]", "efficiency"});
  auto variant = [&](const char* name, cluster::PerfParams p) {
    const cluster::PerfModel m(p);
    const auto e = m.run(kPaperN, blocks);
    ts.row({name, util::fmt(e.sustained_flops / 1e12, 3), util::fmt_pct(e.efficiency)});
  };
  variant("baseline", cluster::PerfParams{});
  {
    cluster::PerfParams p;
    p.host_flops = 200e6;
    variant("half-speed hosts", p);
  }
  {
    cluster::PerfParams p;
    p.gbe_bytes_per_sec = 60e6;
    variant("half-speed Ethernet", p);
  }
  {
    cluster::PerfParams p;
    p.overlap_comm = true;
    variant("comm/compute overlap", p);
  }
  std::printf("%s\n", ts.render().c_str());

  // Measured-vs-model validation: re-run a small disk through the functional
  // GRAPE machine model with the blockstep recorder attached, and join the
  // measured per-phase breakdown against the analytic model of that same
  // (mini) machine.  This is the §4 consistency check: if the two columns
  // diverge, either the model or the instrumented machine drifted.
  std::printf("measured vs modeled block-step accounting (mini machine):\n");
  const MeasuredRun mr = run_measured_disk(full ? 1024 : 512, full ? 64.0 : 16.0);
  const auto cmp = measured_vs_model(mr);
  std::printf("%s\n", g6::obs::render_comparison(cmp).c_str());

  auto& registry = g6::obs::MetricsRegistry::global();
  nbody::publish_metrics(run.stats, registry);
  hw::publish_metrics(mr.hw, registry);
  registry.gauge("g6.bench.wall_seconds").set(run.wall_seconds);
  write_obs_files(obs, registry, &mr.recorder, &cmp);

  // CPU-kernel and GRAPE-emulation throughput (docs/PERFORMANCE.md). The
  // reference row is the seed's scalar loop — the pre-SoA operating point —
  // so its speedup column reads the effect of this optimisation layer.
  const std::size_t n_kernel = full ? 8192 : 4096;
  const int reps = full ? 7 : 5;
  const auto active_level = nbody::active_simd_level();
  const auto geom = nbody::active_block_geometry();
  std::printf("CPU force-kernel throughput (N=%zu, best of %d sweeps; "
              "dispatch level %s, detected %s, block %zux%zu):\n",
              n_kernel, reps, nbody::simd_level_name(active_level),
              nbody::simd_level_name(nbody::detect_simd_level()), geom.i_block,
              geom.j_block);
  const auto kernels = measure_cpu_kernels(n_kernel, reps);
  util::Table tk({"kernel", "Minter/s", "ns/inter", "speedup", "bit-identical",
                  "max rel err"});
  for (const auto& m : kernels) {
    tk.row({m.kernel, util::fmt(m.interactions_per_sec / 1e6, 1),
            util::fmt(m.ns_per_interaction, 3), util::fmt(m.speedup_vs_reference, 2),
            m.bit_identical ? "yes" : "no", util::fmt_sci(m.max_rel_err)});
  }
  std::printf("%s\n", tk.render().c_str());

  // Kernel × ISA sweep: every dispatched kernel at every level this CPU can
  // run, from this one binary (the per-level tables are driven directly; the
  // active level above is what production paths use). Fixed at N=4096 so the
  // perf floor's kernel_speedup gate compares like against like.
  const std::size_t n_sweep = 4096;
  const int sweep_reps = 3;
  std::printf("kernel x ISA dispatch sweep (N=%zu, ns/interaction, best of %d "
              "sweeps):\n",
              n_sweep, sweep_reps);
  const auto sweep = measure_kernel_isa_sweep(n_sweep, sweep_reps);
  {
    util::Table tw({"kernel", "level", "ns/inter", "Minter/s", "bit-identical",
                    "max rel err"});
    for (const auto& m : sweep) {
      tw.row({m.kernel, m.level, util::fmt(m.ns_per_interaction, 3),
              util::fmt(m.interactions_per_sec / 1e6, 1),
              m.bit_identical ? "yes" : "no", util::fmt_sci(m.max_rel_err)});
    }
    std::printf("%s\n", tw.render().c_str());
  }

  const std::size_t n_grape = full ? 2048 : 1024;
  const auto grape = measure_grape_chip(n_grape, full ? 5 : 3);
  std::printf("GRAPE chip emulation (nj=ni=%zu): batched %.1f Minter/s, "
              "unbatched %.1f Minter/s (%.2fx), registers %s\n\n",
              n_grape, grape.batched_interactions_per_sec / 1e6,
              grape.unbatched_interactions_per_sec / 1e6, grape.speedup,
              grape.bit_identical ? "identical" : "DIFFER");

  // Thread-parallel machine emulation on the full-system-shaped topology
  // (64 boards). Default lanes: the perf-floor operating point (8), unless
  // G6_NUM_THREADS pins the process (CI runs both to export the 1-vs-N
  // comparison). --threads=K overrides.
  std::size_t par_threads =
      static_cast<std::size_t>(flag_value(argc, argv, "threads", 0.0));
  if (par_threads == 0)
    par_threads = std::getenv("G6_NUM_THREADS") != nullptr
                      ? g6::util::concurrency()
                      : 8;
  const auto par = measure_grape_parallel(par_threads, full ? 5 : 3);
  std::printf("GRAPE machine emulation, 64 boards (serial vs %zu threads on "
              "%zu-way hardware): %.3fs vs %.3fs = %.2fx, %.1f Minter/s, "
              "registers %s\n\n",
              par.threads, par.hardware_concurrency, par.serial_seconds,
              par.parallel_seconds, par.speedup, par.interactions_per_sec / 1e6,
              par.bit_identical ? "identical" : "DIFFER");

  // Machine-readable export for CI's perf-smoke floor check.
  const std::string json_path =
      flag_str(argc, argv, "json", "BENCH_headline.json");
  JsonBuilder kernels_json = JsonBuilder::array();
  for (const auto& m : kernels) kernels_json.push(m.to_json());
  JsonBuilder sweep_json = JsonBuilder::array();
  for (const auto& m : sweep) sweep_json.push(m.to_json());

  // The floor gate's headline: best cache-blocked/mixed rate over the prior
  // best exact-fast rate, both at the active level and N=4096 (from the
  // sweep, so full mode's N=8192 table doesn't shift the gate).
  auto sweep_rate = [&](std::string_view kernel) {
    for (const auto& m : sweep)
      if (m.kernel == kernel && m.level == nbody::simd_level_name(active_level))
        return m.interactions_per_sec;
    return 0.0;
  };
  const double fast_rate = sweep_rate("fast");
  const double kernel_speedup =
      fast_rate > 0.0
          ? std::max(sweep_rate("blocked"), sweep_rate("mixed")) / fast_rate
          : 0.0;
  std::printf("kernel speedup (max(blocked, mixed) / fast at N=%zu, level %s): "
              "%.2fx\n\n",
              n_sweep, nbody::simd_level_name(active_level), kernel_speedup);

  JsonBuilder ratios = JsonBuilder::object();
  bool ratios_ok = true;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    const double r = cmp.ratio(static_cast<obs::Phase>(p));
    ratios.field(obs::phase_name(static_cast<obs::Phase>(p)), r);
    if (!std::isfinite(r) || r <= 0.0) ratios_ok = false;
  }
  const JsonBuilder doc =
      JsonBuilder::object()
          .field("bench", "headline")
          .field("hardware_concurrency",
                 double(std::max<std::size_t>(1, std::thread::hardware_concurrency())))
          .field("n_scaled", double(n_scaled))
          .field("wall_seconds", run.wall_seconds)
          .field("sustained_model_tflops", est.sustained_flops / 1e12)
          .field("peak_model_tflops", model.peak_flops() / 1e12)
          .field("efficiency", est.efficiency)
          .field("cpu_kernel_n", double(n_kernel))
          .field("cpu_kernels", kernels_json)
          .field("simd_level", nbody::simd_level_name(active_level))
          .field("simd_level_detected",
                 nbody::simd_level_name(nbody::detect_simd_level()))
          .field("block_geometry", JsonBuilder::object()
                                       .field("i_block", double(geom.i_block))
                                       .field("j_block", double(geom.j_block)))
          .field("kernel_sweep_n", double(n_sweep))
          .field("kernel_isa_sweep", sweep_json)
          .field("kernel_speedup", kernel_speedup)
          .field("grape_chip", grape.to_json())
          .field("grape_parallel", par.to_json())
          .field("measured_vs_model_ratios", ratios)
          .field("measured_vs_model_ratios_finite_positive", ratios_ok);
  if (write_json_file(json_path, doc))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  // Optional reliability accounting: --faults <seed> runs seeded campaigns
  // and exports the recovery overhead next to the headline numbers.
  int fault_rc = 0;
  const std::string faults_seed = flag_str(argc, argv, "faults");
  if (!faults_seed.empty())
    fault_rc = run_fault_section(
        std::strtoull(faults_seed.c_str(), nullptr, 10), model, blocks, est,
        flag_str(argc, argv, "faults-json", "BENCH_faults.json"));

  const bool shape_ok = est.efficiency > 0.25 && est.efficiency < 0.75;
  std::printf("shape check: efficiency in the paper's band (25-75%%): %s\n",
              shape_ok ? "PASS" : "FAIL");
  // Name-based lookup (a positional index here once pointed at the wrong row
  // when the kernel list grew): exact kernels must be bit-identical, the
  // approximate ones inside their documented error contracts — in the main
  // table at the active level AND in every cell of the dispatch sweep.
  auto exact_ok = [&](std::string_view name) {
    const KernelMeasurement* m = find_kernel(kernels, name);
    return m != nullptr && m->bit_identical;
  };
  auto bounded_ok = [&](std::string_view name, double bound) {
    const KernelMeasurement* m = find_kernel(kernels, name);
    return m != nullptr && m->max_rel_err <= bound;
  };
  bool kernels_ok = exact_ok("tiled") && exact_ok("simd") &&
                    exact_ok("blocked") &&
                    bounded_ok("fast", nbody::kFastMaxRelErr) &&
                    bounded_ok("mixed", nbody::kMixedMaxRelErr) &&
                    grape.bit_identical && par.bit_identical;
  for (const auto& m : sweep) {
    if (m.exact && !m.bit_identical) kernels_ok = false;
    if (m.kernel == "fast" && m.max_rel_err > nbody::kFastMaxRelErr)
      kernels_ok = false;
    if (m.kernel == "mixed" && m.max_rel_err > nbody::kMixedMaxRelErr)
      kernels_ok = false;
  }
  std::printf("kernel contracts (exact bit-identity at every dispatch level, "
              "fast/mixed error bounds, grape batched, parallel machine): %s\n",
              kernels_ok ? "PASS" : "FAIL");
  return (shape_ok && kernels_ok && fault_rc == 0) ? 0 : 1;
}
