// S1 — serving-layer saturation: the g6serve stack end to end.
//
// Phase 1 (unconditional gates): the same n=1024 disk job submitted twice
// against one scheduler. The first run computes and caches; the duplicate
// must be answered from the result cache bit-identically, with zero
// integrator steps, at least 10x faster than the cold run. These gates do
// not depend on host speed — a cache hit is a memcpy either way — so
// check_perf_floor.py enforces them everywhere.
//
// Phase 2 (saturation): a real JobServer on a localhost socket driven by
// the line-protocol client with a mixed-tenant burst (~40% duplicate
// submissions, a queue sized to force admission rejections). Exports
// jobs/s, client-observed p50/p99 submit-to-complete latency and the cache
// hit rate into BENCH_serve.json; the jobs/s floor is hardware-conditional.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "serve/client.hpp"
#include "serve/job_server.hpp"
#include "util/timer.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

double percentile(std::vector<double> xs, double frac) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const auto n_cold =
      static_cast<std::uint64_t>(flag_value(argc, argv, "n", 1024));
  const double t_cold = flag_value(argc, argv, "t", 0.25);
  const int burst = static_cast<int>(flag_value(argc, argv, "jobs", full ? 96 : 48));
  const int tenants = static_cast<int>(flag_value(argc, argv, "tenants", 3));
  const int workers = static_cast<int>(flag_value(argc, argv, "workers", 2));

  std::printf("S1: simulation-as-a-service — cache-hit gates and saturation\n\n");

  // --- Phase 1: cold vs cache-hit, in-process scheduler ---------------------
  serve::ResultCache cache;
  serve::SchedulerConfig scfg;
  scfg.workers = 1;
  serve::Scheduler sched(scfg, cache);
  sched.start();

  serve::JobRequest req;
  req.n = n_cold;
  req.t_end = t_cold;
  req.seed = 20020101;

  const std::uint64_t steps_before_cold = counter_value("g6.serve.steps_executed");
  double cold_seconds = 0.0;
  std::string cold_bytes;
  {
    util::ScopedTimer wall(cold_seconds);
    const serve::SubmitOutcome out = sched.submit(req);
    if (!out.accepted || out.cached) {
      std::fprintf(stderr, "S1: cold submit not a computed run\n");
      return 1;
    }
    const auto rec = sched.wait(out.id, 600.0);
    if (!rec.has_value() || rec->state != serve::ServeJobState::kDone) {
      std::fprintf(stderr, "S1: cold job did not complete\n");
      return 1;
    }
    sched.result(out.id, &cold_bytes);
  }
  const std::uint64_t steps_cold =
      counter_value("g6.serve.steps_executed") - steps_before_cold;

  const std::uint64_t hits_before = counter_value("g6.serve.cache.hits");
  double hit_seconds = 0.0;
  std::string hit_bytes;
  bool hit_cached = false;
  {
    util::ScopedTimer wall(hit_seconds);
    const serve::SubmitOutcome out = sched.submit(req);
    hit_cached = out.accepted && out.cached;
    if (hit_cached) sched.result(out.id, &hit_bytes);
  }
  const std::uint64_t steps_on_hit =
      counter_value("g6.serve.steps_executed") - steps_before_cold - steps_cold;
  const std::uint64_t hit_counter_delta =
      counter_value("g6.serve.cache.hits") - hits_before;
  sched.stop();

  const bool bit_identical = !cold_bytes.empty() && cold_bytes == hit_bytes;
  const double hit_speedup =
      hit_seconds > 0.0 ? cold_seconds / hit_seconds : 0.0;
  std::printf("phase 1: n=%llu t=%g  cold %.4fs (%llu steps)  hit %.6fs  "
              "speedup %.0fx\n",
              static_cast<unsigned long long>(n_cold), t_cold, cold_seconds,
              static_cast<unsigned long long>(steps_cold), hit_seconds,
              hit_speedup);
  std::printf("  cached=%d bit_identical=%d steps_on_hit=%llu "
              "cache_hits_delta=%llu\n",
              hit_cached, bit_identical,
              static_cast<unsigned long long>(steps_on_hit),
              static_cast<unsigned long long>(hit_counter_delta));

  // --- Phase 2: socket saturation -------------------------------------------
  serve::JobServerConfig jcfg;
  jcfg.port = 0;
  jcfg.scheduler.workers = workers;
  jcfg.scheduler.max_queue = static_cast<std::size_t>(
      flag_value(argc, argv, "queue", 12));  // sized to force rejections
  serve::JobServer server(jcfg);
  if (!server.start()) {
    std::fprintf(stderr, "S1: cannot start job server\n");
    return 1;
  }
  serve::Client client;
  if (!client.connect(server.port())) {
    std::fprintf(stderr, "S1: cannot connect to job server\n");
    return 1;
  }

  // ~40% duplicates: jobs cycle through ceil(60%) distinct seeds.
  const int unique = std::max(1, burst * 6 / 10);
  serve::JobRequest base;
  base.n = static_cast<std::uint64_t>(flag_value(argc, argv, "burst-n", 64));
  base.t_end = flag_value(argc, argv, "burst-t", 0.125);

  struct Pending {
    std::string id;
    double submit_seconds = 0.0;
    double latency = -1.0;
  };
  std::vector<Pending> accepted;
  int rejected = 0, cached_replies = 0;
  util::Timer wall;
  for (int k = 0; k < burst; ++k) {
    serve::JobRequest r = base;
    r.tenant = "tenant-" + std::to_string(k % tenants);
    r.seed = static_cast<std::uint64_t>(1 + k % unique);
    const double at = wall.seconds();
    const serve::SubmitReply reply = client.submit(r);
    if (!reply.ok) {
      ++rejected;
      continue;
    }
    if (reply.cached) ++cached_replies;
    accepted.push_back({reply.id, at, reply.cached ? wall.seconds() - at : -1.0});
  }
  int open = 0;
  for (const Pending& p : accepted)
    if (p.latency < 0.0) ++open;
  while (open > 0 && wall.seconds() < 600.0) {
    for (Pending& p : accepted) {
      if (p.latency >= 0.0) continue;
      const obs::JsonValue job = client.status(p.id);
      const obs::JsonValue* state = job.find("state");
      const std::string s =
          state != nullptr && state->is_string() ? state->as_string() : "";
      if (s == "done" || s == "failed") {
        p.latency = wall.seconds() - p.submit_seconds;
        --open;
      }
    }
  }
  const double burst_wall = wall.seconds();
  const obs::JsonValue stats = client.stats();
  auto stat = [&](const char* group, const char* name) -> double {
    const obs::JsonValue* v = group == nullptr ? stats.find(name) : nullptr;
    if (group != nullptr)
      if (const obs::JsonValue* sub = stats.find(group); sub != nullptr)
        v = sub->find(name);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };
  const double srv_hits = stat("cache", "hits");
  const double srv_misses = stat("cache", "misses");
  client.close();
  server.stop();

  std::vector<double> latencies;
  for (const Pending& p : accepted)
    if (p.latency >= 0.0) latencies.push_back(p.latency);
  const double jobs_per_sec =
      burst_wall > 0.0 ? static_cast<double>(latencies.size()) / burst_wall : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double hit_rate = srv_hits + srv_misses > 0.0
                              ? srv_hits / (srv_hits + srv_misses)
                              : 0.0;
  std::printf("\nphase 2: %d jobs (%d tenants, %d unique seeds, queue %zu): "
              "%zu accepted, %d rejected, %d cached replies\n",
              burst, tenants, unique, jcfg.scheduler.max_queue, accepted.size(),
              rejected, cached_replies);
  std::printf("  %.2f jobs/s  p50 %.4fs  p99 %.4fs  hit rate %.0f%% "
              "(unresolved %d)\n",
              jobs_per_sec, p50, p99, hit_rate * 100.0, open);

  const std::string json_path = flag_str(argc, argv, "json", "BENCH_serve.json");
  const JsonBuilder doc =
      JsonBuilder::object()
          .field("bench", "serve")
          .field("hardware_concurrency",
                 double(std::max<std::size_t>(
                     1, std::thread::hardware_concurrency())))
          .field("n_cold", double(n_cold))
          .field("t_cold", t_cold)
          .field("cold_seconds", cold_seconds)
          .field("hit_seconds", hit_seconds)
          .field("hit_speedup", hit_speedup)
          .field("steps_cold", double(steps_cold))
          .field("steps_on_hit", double(steps_on_hit))
          .field("cache_hits_delta", double(hit_counter_delta))
          .field("bit_identical", bit_identical)
          .field("burst_jobs", double(burst))
          .field("burst_tenants", double(tenants))
          .field("burst_unique", double(unique))
          .field("burst_workers", double(workers))
          .field("burst_queue", double(jcfg.scheduler.max_queue))
          .field("burst_accepted", double(accepted.size()))
          .field("burst_rejected", double(rejected))
          .field("burst_unresolved", double(open))
          .field("jobs_per_sec", jobs_per_sec)
          .field("p50_seconds", p50)
          .field("p99_seconds", p99)
          .field("cache_hit_rate", hit_rate);
  if (write_json_file(json_path, doc))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  // Unconditional gates only; throughput floors live in check_perf_floor.py.
  const bool pass = hit_cached && bit_identical && steps_on_hit == 0 &&
                    hit_counter_delta >= 1 && hit_speedup >= 10.0 && open == 0;
  std::printf("cache-hit gates (>=10x, bit-identical, 0 steps): %s\n",
              pass ? "PASS" : "MISS");
  return pass ? 0 : 1;
}
