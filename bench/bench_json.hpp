#pragma once
/// \file bench_json.hpp
/// \brief Machine-readable bench output: a tiny JSON builder over the
///        obs/json.hpp primitives plus the kernel-throughput measurements
///        that bench_headline and bench_scaling_n export as
///        BENCH_headline.json / BENCH_scaling_n.json (docs/PERFORMANCE.md).
///        CI's perf-smoke job parses these files and fails the build when
///        the CPU-kernel interaction rate regresses past the checked-in
///        floor (bench/perf_floor.json).

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "grape6/chip.hpp"
#include "grape6/machine.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/simd_dispatch.hpp"
#include "obs/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace g6::bench {

/// Eagerly-rendered JSON document builder. obs/json.hpp provides the parser
/// and the escaping/number rules; this adds just enough composition to write
/// the BENCH_* exports without hand-assembled format strings.
class JsonBuilder {
 public:
  static JsonBuilder object() { return JsonBuilder('{', '}'); }
  static JsonBuilder array() { return JsonBuilder('[', ']'); }

  JsonBuilder& field(std::string_view key, double v) {
    return raw(key, g6::obs::json_number(v));
  }
  JsonBuilder& field(std::string_view key, bool v) { return raw(key, v ? "true" : "false"); }
  JsonBuilder& field(std::string_view key, std::string_view s) {
    return raw(key, quoted(s));
  }
  // Without this overload a string literal converts to bool, not string_view.
  JsonBuilder& field(std::string_view key, const char* s) { return raw(key, quoted(s)); }
  JsonBuilder& field(std::string_view key, const JsonBuilder& sub) {
    return raw(key, sub.render());
  }

  JsonBuilder& push(double v) { return raw({}, g6::obs::json_number(v)); }
  JsonBuilder& push(std::string_view s) { return raw({}, quoted(s)); }
  JsonBuilder& push(const char* s) { return raw({}, quoted(s)); }
  JsonBuilder& push(const JsonBuilder& sub) { return raw({}, sub.render()); }

  std::string render() const { return open_ + body_ + close_; }

 private:
  JsonBuilder(char open, char close) : open_(1, open), close_(1, close) {}

  // Append-only string building: GCC 12's -Wrestrict misfires on chained
  // std::string operator+ at -O3 (PR105329), and CI builds with -Werror.
  static std::string quoted(std::string_view s) {
    std::string out;
    out += '"';
    out += g6::obs::json_escape(s);
    out += '"';
    return out;
  }

  JsonBuilder& raw(std::string_view key, std::string_view rendered) {
    if (!body_.empty()) body_ += ',';
    if (!key.empty()) {
      body_ += quoted(key);
      body_ += ':';
    }
    body_ += rendered;
    return *this;
  }

  std::string open_, close_, body_;
};

/// Write a rendered document; returns false (with a stderr note) on failure.
inline bool write_json_file(const std::string& path, const JsonBuilder& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return false;
  }
  const std::string text = doc.render() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

// --- CPU force-kernel throughput -------------------------------------------

/// One kernel's measured operating point on the n-body hot loop.
struct KernelMeasurement {
  std::string kernel;
  double interactions_per_sec = 0.0;
  double ns_per_interaction = 0.0;
  double wall_seconds = 0.0;        ///< best-of-repetitions wall per sweep
  bool bit_identical = false;       ///< forces match the reference bit for bit
  double max_rel_err = 0.0;         ///< worst relative acc error vs reference
  double speedup_vs_reference = 1.0;

  JsonBuilder to_json() const {
    return JsonBuilder::object()
        .field("kernel", kernel)
        .field("interactions_per_sec", interactions_per_sec)
        .field("ns_per_interaction", ns_per_interaction)
        .field("wall_seconds", wall_seconds)
        .field("bit_identical", bit_identical)
        .field("max_rel_err", max_rel_err)
        .field("speedup_vs_reference", speedup_vs_reference);
  }
};

/// Fixed-seed system for the throughput sweeps: a thin disk-like cloud, the
/// same shape the conformance tests pin their golden forces on.
inline g6::nbody::ParticleSystem kernel_bench_system(std::size_t n) {
  g6::util::Rng rng(20020101);
  g6::nbody::ParticleSystem ps;
  for (std::size_t i = 0; i < n; ++i) {
    ps.add(rng.uniform(1e-12, 1e-9),
           {rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0), rng.uniform(-1.0, 1.0)},
           {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), rng.uniform(-0.03, 0.03)});
  }
  return ps;
}

/// Time one kernel: best-of-\p reps full force sweeps (all i against all j)
/// at a fixed block time, plus a bitwise comparison of the resulting forces
/// against \p reference (pass nullptr when measuring the reference itself).
inline KernelMeasurement measure_cpu_kernel(
    g6::nbody::CpuKernel kernel, const g6::nbody::ParticleSystem& ps, int reps,
    const std::vector<g6::nbody::Force>* reference,
    std::vector<g6::nbody::Force>* out_forces = nullptr) {
  const std::size_t n = ps.size();
  g6::nbody::CpuDirectBackend backend(0.008);
  backend.set_kernel(kernel);
  backend.load(ps);
  std::vector<std::uint32_t> ilist(n);
  std::iota(ilist.begin(), ilist.end(), 0u);
  std::vector<g6::nbody::Force> f(n);

  backend.compute(0.0, ilist, f);  // warm-up; also the compared forces
  KernelMeasurement m;
  m.kernel = g6::nbody::cpu_kernel_name(kernel);
  m.wall_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    std::fill(f.begin(), f.end(), g6::nbody::Force{});
    g6::util::Timer t;
    backend.compute(0.0, ilist, f);
    m.wall_seconds = std::min(m.wall_seconds, t.seconds());
  }
  const double interactions = double(n) * double(n - 1);
  m.interactions_per_sec = interactions / m.wall_seconds;
  m.ns_per_interaction = 1e9 * m.wall_seconds / interactions;

  if (reference != nullptr) {
    m.bit_identical = true;
    auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    for (std::size_t i = 0; i < n; ++i) {
      const g6::nbody::Force& r = (*reference)[i];
      for (auto [a, b] : {std::pair{f[i].acc.x, r.acc.x}, {f[i].acc.y, r.acc.y},
                          {f[i].acc.z, r.acc.z}, {f[i].jerk.x, r.jerk.x},
                          {f[i].jerk.y, r.jerk.y}, {f[i].jerk.z, r.jerk.z},
                          {f[i].pot, r.pot}}) {
        if (bits(a) != bits(b)) m.bit_identical = false;
      }
      const double scale = std::sqrt(norm2(r.acc)) + 1e-300;
      for (auto [a, b] : {std::pair{f[i].acc.x, r.acc.x}, {f[i].acc.y, r.acc.y},
                          {f[i].acc.z, r.acc.z}}) {
        m.max_rel_err = std::max(m.max_rel_err, std::abs(a - b) / scale);
      }
    }
  }
  if (out_forces != nullptr) *out_forces = f;
  return m;
}

/// All six kernels on one system; speedups are relative to the measured
/// reference (the seed's scalar loop, the pre-SoA operating point).
inline std::vector<KernelMeasurement> measure_cpu_kernels(std::size_t n, int reps) {
  const g6::nbody::ParticleSystem ps = kernel_bench_system(n);
  std::vector<g6::nbody::Force> ref_forces;
  std::vector<KernelMeasurement> out;
  out.push_back(measure_cpu_kernel(g6::nbody::CpuKernel::kReference, ps, reps,
                                   nullptr, &ref_forces));
  out.front().bit_identical = true;
  for (auto k : {g6::nbody::CpuKernel::kTiled, g6::nbody::CpuKernel::kSimd,
                 g6::nbody::CpuKernel::kBlocked, g6::nbody::CpuKernel::kFast,
                 g6::nbody::CpuKernel::kMixed}) {
    out.push_back(measure_cpu_kernel(k, ps, reps, &ref_forces));
  }
  for (auto& m : out)
    m.speedup_vs_reference = m.interactions_per_sec / out.front().interactions_per_sec;
  return out;
}

/// Find one kernel's row by name; dies loudly (empty row) if absent so the
/// pass/fail logic never silently indexes the wrong kernel again.
inline const KernelMeasurement* find_kernel(
    const std::vector<KernelMeasurement>& ms, std::string_view name) {
  for (const auto& m : ms)
    if (m.kernel == name) return &m;
  return nullptr;
}

// --- Kernel × ISA dispatch sweep -------------------------------------------

/// One (kernel, ISA level) cell of the dispatch sweep. Unlike
/// KernelMeasurement this bypasses active_kernel_table() — which is resolved
/// once per process — and drives each level's kernel_table() entry points
/// directly, so a single binary can time every dispatchable rung.
struct SweepMeasurement {
  std::string kernel;
  std::string level;
  double interactions_per_sec = 0.0;
  double ns_per_interaction = 0.0;
  bool exact = false;          ///< contract is bit-identity (vs error bound)
  bool bit_identical = false;  ///< vs the shared reference oracle
  double max_rel_err = 0.0;

  JsonBuilder to_json() const {
    return JsonBuilder::object()
        .field("kernel", kernel)
        .field("level", level)
        .field("interactions_per_sec", interactions_per_sec)
        .field("ns_per_interaction", ns_per_interaction)
        .field("exact", exact)
        .field("bit_identical", bit_identical)
        .field("max_rel_err", max_rel_err);
  }
};

/// Time every dispatched kernel at every level this CPU can actually run
/// (scalar .. detect_simd_level()), best-of-\p reps full sweeps each, and
/// compare forces against the reference oracle. kReference itself is level-
/// independent (one shared compiled copy) so it has no rows here.
inline std::vector<SweepMeasurement> measure_kernel_isa_sweep(std::size_t n,
                                                              int reps) {
  namespace nb = g6::nbody;
  const nb::ParticleSystem ps = kernel_bench_system(n);
  nb::SoAPredicted js;
  js.resize(n);
  std::vector<nb::Vec3> xs(n), vs(n);
  std::vector<std::uint32_t> selves(n);
  for (std::size_t i = 0; i < n; ++i) {
    js.x[i] = ps.pos(i).x;
    js.y[i] = ps.pos(i).y;
    js.z[i] = ps.pos(i).z;
    js.vx[i] = ps.vel(i).x;
    js.vy[i] = ps.vel(i).y;
    js.vz[i] = ps.vel(i).z;
    js.m[i] = ps.mass(i);
    xs[i] = ps.pos(i);
    vs[i] = ps.vel(i);
    selves[i] = static_cast<std::uint32_t>(i);
  }
  js.ensure_mixed();  // shared fill; keeps the kMixed rows compute-only
  const double eps2 = 0.008 * 0.008;
  const nb::BlockGeometry geom = nb::active_block_geometry();
  const double interactions = double(n) * double(n - 1);

  std::vector<nb::Force> ref(n);
  for (std::size_t i = 0; i < n; ++i)
    nb::reference_force_range(js, 0, n, xs[i], vs[i], i, eps2, ref[i]);

  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::vector<nb::Force> f(n);
  std::vector<SweepMeasurement> out;
  auto run = [&](const char* kernel, const char* level, bool exact,
                 auto&& full_sweep) {
    SweepMeasurement m;
    m.kernel = kernel;
    m.level = level;
    m.exact = exact;
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep <= reps; ++rep) {  // rep 0 is the warm-up
      std::fill(f.begin(), f.end(), nb::Force{});
      g6::util::Timer t;
      full_sweep();
      if (rep > 0) best = std::min(best, t.seconds());
    }
    m.interactions_per_sec = interactions / best;
    m.ns_per_interaction = 1e9 * best / interactions;
    m.bit_identical = true;
    for (std::size_t i = 0; i < n; ++i) {
      const nb::Force& r = ref[i];
      for (auto [a, b] : {std::pair{f[i].acc.x, r.acc.x}, {f[i].acc.y, r.acc.y},
                          {f[i].acc.z, r.acc.z}, {f[i].jerk.x, r.jerk.x},
                          {f[i].jerk.y, r.jerk.y}, {f[i].jerk.z, r.jerk.z},
                          {f[i].pot, r.pot}}) {
        if (bits(a) != bits(b)) m.bit_identical = false;
      }
      const double scale = std::sqrt(norm2(r.acc)) + 1e-300;
      for (auto [a, b] : {std::pair{f[i].acc.x, r.acc.x}, {f[i].acc.y, r.acc.y},
                          {f[i].acc.z, r.acc.z}}) {
        m.max_rel_err = std::max(m.max_rel_err, std::abs(a - b) / scale);
      }
    }
    out.push_back(std::move(m));
  };

  const int top = static_cast<int>(nb::detect_simd_level());
  for (int li = 0; li <= top; ++li) {
    const nb::KernelTable& t = nb::kernel_table(static_cast<nb::SimdLevel>(li));
    auto per_i = [&](nb::KernelTable::ForceFn fn) {
      return [&, fn] {
        for (std::size_t i = 0; i < n; ++i) fn(js, xs[i], vs[i], i, eps2, f[i]);
      };
    };
    run("tiled", t.name, true, per_i(t.tiled));
    run("simd", t.name, true, per_i(t.simd));
    run("blocked", t.name, true, [&] {
      t.blocked(js, xs.data(), vs.data(), selves.data(), n, eps2, geom,
                f.data());
    });
    run("fast", t.name, false, per_i(t.fast));
    // Through the block entry — the path force_on_block (and hence the
    // backend) actually takes, with paired i-rows sharing the j-stream.
    run("mixed", t.name, false, [&] {
      t.mixed_block(js, xs.data(), vs.data(), selves.data(), n, eps2, geom,
                    f.data());
    });
  }
  return out;
}

// --- GRAPE chip: batched vs unbatched pipeline emulation -------------------

struct GrapeMeasurement {
  double batched_interactions_per_sec = 0.0;
  double unbatched_interactions_per_sec = 0.0;
  double speedup = 1.0;
  bool bit_identical = false;  ///< identical fixed-point accumulator registers

  JsonBuilder to_json() const {
    return JsonBuilder::object()
        .field("batched_interactions_per_sec", batched_interactions_per_sec)
        .field("unbatched_interactions_per_sec", unbatched_interactions_per_sec)
        .field("speedup", speedup)
        .field("bit_identical", bit_identical);
  }
};

/// One chip, nj resident j-particles, nj i-particles: time the force
/// evaluation with the batched emulation on and off and compare every
/// accumulator register.
inline GrapeMeasurement measure_grape_chip(std::size_t nj, int reps) {
  const g6::hw::FormatSpec fmt = g6::hw::FormatSpec::for_scales(64.0, 1.0);
  g6::util::Rng rng(20020101);
  g6::hw::Chip chip(fmt, nj);
  std::vector<g6::hw::IParticle> is;
  for (std::size_t j = 0; j < nj; ++j) {
    const auto id = static_cast<std::uint32_t>(j);
    const g6::hw::Vec3 x{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0),
                         rng.uniform(-0.5, 0.5)};
    const g6::hw::Vec3 v{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                         rng.uniform(-0.02, 0.02)};
    chip.store_j(g6::hw::make_j_particle(id, rng.uniform(1e-9, 1e-7), 0.0, x, v,
                                         {}, {}, fmt));
    is.push_back(g6::hw::make_i_particle(id, x, v, fmt));
  }
  chip.predict_all(0.0);

  GrapeMeasurement m;
  std::vector<g6::hw::ForceAccumulator> batched_acc, unbatched_acc;
  auto time_path = [&](bool batched, std::vector<g6::hw::ForceAccumulator>& keep) {
    chip.set_batched(batched);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep <= reps; ++rep) {  // rep 0 is the warm-up
      std::vector<g6::hw::ForceAccumulator> acc(is.size(),
                                                g6::hw::ForceAccumulator(fmt));
      g6::util::Timer t;
      chip.compute(is, 1e-4, acc);
      if (rep > 0) best = std::min(best, t.seconds());
      keep = std::move(acc);
    }
    return double(nj) * double(is.size()) / best;
  };
  m.batched_interactions_per_sec = time_path(true, batched_acc);
  m.unbatched_interactions_per_sec = time_path(false, unbatched_acc);
  m.speedup = m.batched_interactions_per_sec / m.unbatched_interactions_per_sec;
  m.bit_identical = batched_acc == unbatched_acc;
  return m;
}

// --- GRAPE machine: serial vs thread-parallel board emulation --------------

/// One serial-vs-parallel operating point of the full machine emulation
/// (predict_all + compute, every board fanned over a ThreadPool). The gate
/// in check_perf_floor.py enforces min_speedup only when the measuring
/// machine actually has >= the floor's thread count (hardware_concurrency is
/// exported for exactly that decision); bit_identical is enforced always —
/// the fixed-point reduction must not depend on the schedule.
struct ParallelMeasurement {
  std::size_t threads = 1;              ///< lanes of the parallel pool
  std::size_t hardware_concurrency = 1; ///< what this machine can actually run
  double serial_seconds = 0.0;          ///< best-of-reps, 1-lane pool
  double parallel_seconds = 0.0;        ///< best-of-reps, threads-lane pool
  double speedup = 1.0;
  double interactions_per_sec = 0.0;    ///< parallel-path throughput
  bool bit_identical = false;           ///< parallel accumulators == serial

  JsonBuilder to_json() const {
    return JsonBuilder::object()
        .field("threads", double(threads))
        .field("hardware_concurrency", double(hardware_concurrency))
        .field("serial_seconds", serial_seconds)
        .field("parallel_seconds", parallel_seconds)
        .field("speedup", speedup)
        .field("interactions_per_sec", interactions_per_sec)
        .field("bit_identical", bit_identical);
  }
};

/// A full-system-shaped mini machine: the real 4 clusters x 4 hosts x
/// 4 boards topology (64 boards — the concurrency the hardware actually
/// has), with fewer chips and a small j-memory so one compute pass stays
/// CI-sized.
inline g6::hw::MachineConfig parallel_bench_machine() {
  g6::hw::MachineConfig cfg;
  cfg.clusters = 4;
  cfg.hosts_per_cluster = 4;
  cfg.boards_per_host = 4;
  cfg.chips_per_board = 2;
  cfg.jmem_per_chip = 128;
  cfg.fmt = g6::hw::FormatSpec::for_scales(64.0, 1.0);
  return cfg;
}

/// Time the machine emulation with a 1-lane pool vs a \p threads-lane pool
/// on the full-system-shaped config and compare every accumulator register.
inline ParallelMeasurement measure_grape_parallel(std::size_t threads, int reps,
                                                  std::size_t nj = 8192,
                                                  std::size_t ni = 256) {
  const g6::hw::MachineConfig cfg = parallel_bench_machine();
  g6::util::Rng rng(20020101);
  std::vector<g6::hw::JParticle> js;
  std::vector<g6::hw::IParticle> is;
  for (std::size_t j = 0; j < nj; ++j) {
    const auto id = static_cast<std::uint32_t>(j);
    const g6::hw::Vec3 x{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0),
                         rng.uniform(-0.5, 0.5)};
    const g6::hw::Vec3 v{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                         rng.uniform(-0.02, 0.02)};
    js.push_back(g6::hw::make_j_particle(id, rng.uniform(1e-9, 1e-7), 0.0, x, v,
                                         {}, {}, cfg.fmt));
    if (is.size() < ni) is.push_back(g6::hw::make_i_particle(id, x, v, cfg.fmt));
  }

  auto time_machine = [&](std::size_t lanes,
                          std::vector<g6::hw::ForceAccumulator>& keep) {
    g6::util::ThreadPool pool(lanes);
    g6::hw::Grape6Machine machine(cfg, &pool);
    machine.load(js);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep <= reps; ++rep) {  // rep 0 is the warm-up
      std::vector<g6::hw::ForceAccumulator> acc;
      g6::util::Timer t;
      machine.predict_all(0.0);
      machine.compute(is, 1e-4, acc);
      if (rep > 0) best = std::min(best, t.seconds());
      keep = std::move(acc);
    }
    return best;
  };

  ParallelMeasurement m;
  m.threads = threads;
  m.hardware_concurrency =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<g6::hw::ForceAccumulator> serial_acc, parallel_acc;
  m.serial_seconds = time_machine(1, serial_acc);
  m.parallel_seconds = time_machine(threads, parallel_acc);
  m.speedup = m.serial_seconds / m.parallel_seconds;
  m.interactions_per_sec = double(nj) * double(is.size()) / m.parallel_seconds;
  m.bit_identical = serial_acc == parallel_acc;
  return m;
}

}  // namespace g6::bench
