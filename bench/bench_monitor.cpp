// M1 — live-monitoring overhead: the same scaled Uranus-Neptune disk run
// twice, bare and with the full monitor stack armed (sampler thread at the
// shipped 1 Hz default — stress with --interval=0.1 — HTTP server
// listening, per-block progress/flight updates). Best-of-reps on both
// sides; the overhead fraction lands in BENCH_monitor.json. Target <2%;
// the exit code only fails beyond 5% so a noisy shared runner cannot flake
// CI on scheduler jitter.
#include <algorithm>
#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/monitor.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"

using namespace g6;
using namespace g6::bench;

namespace {

struct RunResult {
  double seconds = 0.0;
  std::uint64_t blocks = 0;
};

/// One scaled disk run. When \p monitored, wire the same per-block hook the
/// examples' --monitor flag installs: gauge + counter + progress ticket +
/// flight-recorder step record.
RunResult run_once(std::size_t n, double t_end, bool monitored) {
  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 20020101;
  auto d = disk::make_disk(dcfg);

  nbody::CpuDirectBackend backend(0.008);
  nbody::HermiteIntegrator integ(d.system, backend, disk_config());

  obs::JobTicket ticket;
  if (monitored) {
    ticket = obs::ProgressTracker::global().add_job("bench_monitor", 0.0, t_end);
    ticket.set_state(obs::JobState::kRunning);
    auto t_gauge = obs::MetricsRegistry::global().gauge("g6.run.t_sys");
    auto blocks_ctr = obs::MetricsRegistry::global().counter("g6.run.blocks");
    integ.on_block = [&, t_gauge, blocks_ctr, wall = util::Timer(),
                      block_timer = util::Timer()](double t,
                                                   std::size_t n_act) mutable {
      t_gauge.set(t);
      blocks_ctr.add(1);
      ticket.update(t, integ.stats().blocks, wall.seconds());
      obs::FlightRecorder::global().record_step(t, n_act, block_timer.lap());
    };
  }

  RunResult r;
  {
    util::ScopedTimer wall(r.seconds);
    integ.initialize();
    integ.evolve(t_end);
  }
  r.blocks = integ.stats().blocks;
  if (monitored) ticket.finish(obs::JobState::kDone);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const auto n = static_cast<std::size_t>(flag_value(argc, argv, "n", full ? 8192 : 4096));
  const double t_end = flag_value(argc, argv, "t", full ? 200.0 : 100.0);
  const int reps = full ? 5 : 3;

  std::printf("M1: monitor overhead, n=%zu t=%g reps=%d "
              "(server listening, per-block hooks)\n\n", n, t_end, reps);

  // The monitor stays up across all monitored reps — the steady state a
  // long campaign sees, not repeated start/stop cost.
  obs::Monitor monitor;
  obs::MonitorConfig mcfg;
  mcfg.port = 0;  // ephemeral; nobody polls — this measures the idle stack
  mcfg.sample_interval = flag_value(argc, argv, "interval", 1.0);
  mcfg.flight_dir = "/tmp";
  mcfg.crash_handlers = false;
  const bool monitor_up = monitor.start(mcfg);

  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  std::uint64_t blocks = 0;
  for (int rep = 0; rep <= reps; ++rep) {  // rep 0 warms both paths
    const RunResult off = run_once(n, t_end, false);
    const RunResult on = run_once(n, t_end, monitor_up);
    if (rep == 0) continue;
    best_off = std::min(best_off, off.seconds);
    best_on = std::min(best_on, on.seconds);
    blocks = on.blocks;
    std::printf("rep %d: off %.3fs  on %.3fs\n", rep, off.seconds, on.seconds);
  }

  std::uint64_t frames = 0;
#ifndef G6_OBS_DISABLED
  frames = monitor_up ? monitor.sampler().frames_taken() : 0;
#endif
  monitor.stop();

  const double overhead = best_off > 0.0 ? best_on / best_off - 1.0 : 0.0;
  std::printf("\nbest-of-%d: off %.3fs  on %.3fs  overhead %+.2f%%  "
              "(%llu blocks, %llu sampler frames)\n", reps, best_off, best_on,
              overhead * 100.0, static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(frames));

  const std::string json_path =
      flag_str(argc, argv, "json", "BENCH_monitor.json");
  const JsonBuilder doc =
      JsonBuilder::object()
          .field("bench", "monitor")
          .field("hardware_concurrency",
                 double(std::max<std::size_t>(1, std::thread::hardware_concurrency())))
          .field("n", double(n))
          .field("t_end", t_end)
          .field("reps", double(reps))
          .field("sample_interval", mcfg.sample_interval)
          .field("monitor_started", monitor_up)
          .field("seconds_off", best_off)
          .field("seconds_on", best_on)
          .field("overhead_fraction", overhead)
          .field("blocks", double(blocks))
          .field("sampler_frames", double(frames))
          .field("target_fraction", 0.02)
          .field("pass", overhead < 0.02);
  if (write_json_file(json_path, doc))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  std::printf("monitor overhead target <2%%: %s\n",
              overhead < 0.02 ? "PASS" : "MISS");
  return overhead < 0.05 ? 0 : 1;  // hard gate at 5% to stay flake-free
}
