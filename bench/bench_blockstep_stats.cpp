// E3 — the paper's §3 claim: "the timescale ranges six orders of magnitude"
// in the Uranus-Neptune planetesimal problem, which is why individual (block)
// timesteps are essential. This bench integrates the scaled disk and prints
// the distribution of individual timesteps and of block sizes.
#include <cstdio>

#include "bench_common.hpp"
#include "disk/kepler.hpp"
#include "util/histogram.hpp"

using namespace g6;
using namespace g6::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const ObsOptions obs = obs_options(argc, argv);
  const std::size_t n = full ? 4000 : 1200;
  const double t_end = full ? 256.0 : 128.0;

  std::printf("E3: block-timestep statistics (paper §3)\n");
  std::printf("-----------------------------------------\n");
  std::printf("N = %zu, T = %g, eta = 0.02, dt_max = 4\n\n", n, t_end);

  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 4242;
  // Boosted protoplanets provoke deep close encounters within the bench
  // horizon, exercising the timescale range the paper describes.
  for (auto& pp : dcfg.protoplanets) pp.mass = 3.0e-4;
  auto d = disk::make_disk(dcfg);

  nbody::CpuDirectBackend backend(0.008);
  auto icfg = disk_config();
  nbody::HermiteIntegrator integ(d.system, backend, icfg);
  g6::obs::BlockstepRecorder recorder;
  if (obs.any()) integ.set_step_recorder(&recorder);
  integ.initialize();

  // Sample the dt distribution at regular epochs.
  util::Histogram dt_hist(0x1p-24, 8.0, 28, util::BinScale::kLog);
  double next_sample = 0.0;
  const double sample_every = 16.0;
  while (integ.next_time() <= t_end) {
    integ.step();
    if (integ.current_time() >= next_sample) {
      for (std::size_t i = 0; i < d.system.size(); ++i)
        dt_hist.add(d.system.dt(i));
      next_sample += sample_every;
    }
  }
  integ.synchronize(t_end);

  std::printf("distribution of individual timesteps (log bins, all sampled "
              "epochs):\n%s\n", dt_hist.to_ascii(40).c_str());

  double dt_min_seen = 8.0, dt_max_seen = 0.0;
  for (std::size_t i = 0; i < d.system.size(); ++i) {
    dt_min_seen = std::min(dt_min_seen, d.system.dt(i));
    dt_max_seen = std::max(dt_max_seen, d.system.dt(i));
  }

  // Block-size distribution.
  util::Histogram bs_hist(1.0, double(d.system.size()) * 1.01, 20,
                          util::BinScale::kLog);
  for (std::uint32_t b : integ.stats().block_sizes) bs_hist.add(b);
  std::printf("distribution of block sizes (%llu blocks, mean %.1f):\n%s\n",
              static_cast<unsigned long long>(integ.stats().blocks),
              integ.stats().mean_block_size(), bs_hist.to_ascii(40).c_str());

  util::Table t({"quantity", "value"});
  t.row({"orbital period at 15 AU [time units]", util::fmt(disk::orbital_period(15.0, 1.0))});
  t.row({"orbital period at 35 AU [time units]", util::fmt(disk::orbital_period(35.0, 1.0))});
  t.row({"smallest dt in final state", util::fmt(dt_min_seen)});
  t.row({"largest dt in final state", util::fmt(dt_max_seen)});
  t.row({"dt dynamic range [powers of two]",
         util::fmt(std::log2(dt_max_seen / dt_min_seen), 3)});
  t.row({"timestep shrink events", util::fmt_int(static_cast<long long>(
                                       integ.stats().dt_shrinks))});
  t.row({"timestep growth events", util::fmt_int(static_cast<long long>(
                                       integ.stats().dt_grows))});
  std::printf("%s\n", t.render().c_str());

  auto& registry = g6::obs::MetricsRegistry::global();
  nbody::publish_metrics(integ.stats(), registry);
  write_obs_files(obs, registry, obs.any() ? &recorder : nullptr);

  // Shape checks: a wide dt range and blocks much smaller than N on average
  // are exactly why §3 rejects shared timesteps.
  const double range = dt_max_seen / dt_min_seen;
  const bool ok = range >= 16.0 &&
                  integ.stats().mean_block_size() < double(d.system.size());
  std::printf("shape check: dt range >= 2^4 and mean block < N: %s "
              "(range 2^%.1f)\n", ok ? "PASS" : "FAIL", std::log2(range));
  return ok ? 0 : 1;
}
