// E5 — paper §4.3 + figures 3-6: the three ways to attach multiple hosts.
// The naive configuration (fig. 3) moves O(n_act) particle data between all
// hosts every step and therefore does not scale; the GRAPE network boards
// (figs. 4-5) eliminate host-to-host particle traffic entirely; the 2-D
// host matrix (fig. 6) emulates the network boards over Gigabit Ethernet.
//
// Part 1 measures actual bytes moved by the functional multi-host simulator;
// part 2 runs the analytic model at the paper's full scale; part 3 measures
// the aggregated transport against the per-record baseline (messages/step,
// bytes/message, model validation) and exports BENCH_comm.json for the CI
// message-count floor.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "cluster/parallel_sim.hpp"
#include "cluster/perf_model.hpp"
#include "grape6/fabric.hpp"
#include "util/rng.hpp"

using namespace g6;
using namespace g6::bench;
using cluster::HostMode;

namespace {

std::vector<hw::JParticle> disk_cloud(std::size_t n, const hw::FormatSpec& fmt) {
  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 777;
  auto d = disk::make_disk(dcfg);
  std::vector<hw::JParticle> js(d.system.size());
  for (std::size_t i = 0; i < d.system.size(); ++i) {
    js[i].id = static_cast<std::uint32_t>(i);
    js[i].mass = d.system.mass(i);
    js[i].x0 = util::FixedVec3::quantize(d.system.pos(i), fmt.pos_lsb);
    js[i].v0 = d.system.vel(i);
  }
  return js;
}

// One step (compute + corrected-block update) of one host organisation, with
// aggregation on or off. Ids are contiguous from 0 — the contract the
// CommEstimate counting model assumes.
struct CommRun {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t update_messages = 0;  ///< the j-writeback leg alone
  double link_seconds = 0.0;          ///< transport's modeled wire time
  double aggregation_factor = 1.0;
  double overlap_saved_seconds = 0.0;
  std::vector<cluster::ForceAccumulator> forces;
};

bool same_forces(const std::vector<cluster::ForceAccumulator>& a,
                 const std::vector<cluster::ForceAccumulator>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

CommRun run_comm_step(HostMode mode, int hosts, bool aggregated,
                      const std::vector<hw::JParticle>& js,
                      const std::vector<hw::IParticle>& batch,
                      const std::vector<hw::JParticle>& corrected,
                      bool overlap = false) {
  cluster::ParallelHostSystem sys(hosts, mode, hw::FormatSpec{}, 0.008);
  sys.set_aggregation(aggregated);
  sys.set_overlap(overlap);
  sys.load(js);
  CommRun r;
  sys.compute(0.0, batch, r.forces);
  std::uint64_t compute_messages = 0;
  for (int h = 0; h < sys.hosts(); ++h)
    compute_messages += sys.transport().stats(h).messages_sent;
  sys.update(corrected);
  for (int h = 0; h < sys.hosts(); ++h) {
    const auto& st = sys.transport().stats(h);
    r.messages += st.messages_sent;
    r.bytes += st.bytes_sent;
    r.link_seconds += st.modeled_seconds;
  }
  r.update_messages = r.messages - compute_messages;
  r.aggregation_factor = sys.net_stats().aggregation_factor();
  r.overlap_saved_seconds = sys.net_stats().overlap_saved_seconds;
  return r;
}

const char* mode_key(HostMode mode) {
  switch (mode) {
    case HostMode::kNaive: return "naive";
    case HostMode::kHardwareNet: return "hardware_net";
    case HostMode::kMatrix2D: return "matrix";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n = full ? 2048 : 512;
  const std::size_t n_act = n / 8;

  std::printf("E5: multi-host organisations (paper §4.3, figs. 3-6)\n");
  std::printf("-----------------------------------------------------\n\n");

  const hw::FormatSpec fmt;
  const auto js = disk_cloud(n, fmt);
  std::vector<hw::IParticle> batch;
  for (std::size_t k = 0; k < n_act; ++k)
    batch.push_back(hw::make_i_particle(js[k * 7 % js.size()].id,
                                        js[k * 7 % js.size()].x0.to_vec3(),
                                        js[k * 7 % js.size()].v0, fmt));

  std::printf("part 1: functional simulation, %zu particles, block of %zu, "
              "one force step + one update step, 16 hosts\n\n", js.size(), n_act);

  util::Table t1({"mode", "Ethernet bytes", "PCI bytes", "LVDS bytes",
                  "forces identical"});
  std::vector<cluster::ForceAccumulator> reference;
  for (HostMode mode : {HostMode::kNaive, HostMode::kHardwareNet, HostMode::kMatrix2D}) {
    cluster::ParallelHostSystem sys(16, mode, fmt, 0.008);
    sys.load(js);
    std::vector<cluster::ForceAccumulator> out;
    sys.compute(0.0, batch, out);
    // Simulate the post-step writeback of the corrected block.
    std::vector<hw::JParticle> corrected;
    for (std::size_t k = 0; k < n_act; ++k) corrected.push_back(js[k]);
    sys.update(corrected);

    bool identical = true;
    if (reference.empty()) {
      reference = out;
    } else {
      for (std::size_t k = 0; k < out.size(); ++k)
        if (!(out[k] == reference[k])) identical = false;
    }
    t1.row({cluster::host_mode_name(mode),
            util::fmt_sci(double(sys.ethernet_bytes()), 3),
            util::fmt_sci(double(sys.hardware_bytes().pci), 3),
            util::fmt_sci(double(sys.hardware_bytes().lvds), 3),
            identical ? "yes (bitwise)" : "NO"});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("part 1b: routed cluster fabric (fig. 7 wiring), one block of "
              "%zu on a 4-host cluster,\nper-link ledger as a single entity "
              "vs partitioned into four units\n\n", n_act);
  {
    util::Table tf({"partition", "PCI bytes", "cascade bytes", "board bytes",
                    "modeled us"});
    for (int groups : {1, 2, 4}) {
      hw::ClusterFabric fabric(fmt, 4, 4, 4, 4096);
      fabric.set_partition(groups);
      fabric.load_group(0, js);
      fabric.predict_all(0.0);
      std::vector<hw::ForceAccumulator> out;
      // The per-compute ledger (the lifetime ledger also holds load writes).
      const auto t = fabric.compute(0, batch, 0.008 * 0.008, out);
      char label[32];
      std::snprintf(label, sizeof label, "%d unit%s", groups,
                    groups == 1 ? "" : "s");
      tf.row({label, util::fmt_sci(double(t.pci_bytes), 2),
              util::fmt_sci(double(t.cascade_bytes), 2),
              util::fmt_sci(double(t.board_bytes), 2),
              util::fmt(t.modeled_seconds * 1e6, 4)});
    }
    std::printf("%s\n", tf.render().c_str());
  }

  std::printf("part 2: analytic model at the paper scale (N = 1.8M, "
              "n_act = 2000), time per block step vs hosts\n\n");
  util::Table t2({"hosts", "naive [ms]", "hardware net [ms]", "2-D matrix [ms]"});
  double naive_first = 0, naive_last = 0, hw_first = 0, hw_last = 0;
  for (int hosts : {1, 4, 16}) {
    cluster::PerfParams p;
    p.machine.clusters = 1;
    p.machine.hosts_per_cluster = hosts;
    const cluster::PerfModel m(p);
    const double t_naive = m.blockstep_seconds(kPaperN, 2000, HostMode::kNaive);
    const double t_hw = m.blockstep_seconds(kPaperN, 2000, HostMode::kHardwareNet);
    // 1, 4 and 16 are all perfect squares, so the matrix mode is defined.
    const double t_2d = m.blockstep_seconds(kPaperN, 2000, HostMode::kMatrix2D);
    t2.row({util::fmt_int(hosts), util::fmt(t_naive * 1e3, 4),
            util::fmt(t_hw * 1e3, 4), util::fmt(t_2d * 1e3, 4)});
    if (hosts == 1) {
      naive_first = t_naive;
      hw_first = t_hw;
    }
    if (hosts == 16) {
      naive_last = t_naive;
      hw_last = t_hw;
    }
  }
  std::printf("%s\n", t2.render().c_str());

  const double naive_speedup = naive_first / naive_last;
  const double hw_speedup = hw_first / hw_last;
  std::printf("speedup 1 -> 16 hosts:  naive %.2fx,  hardware-net %.2fx\n",
              naive_speedup, hw_speedup);

  bool ok = hw_speedup > naive_speedup && naive_speedup < 8.0;
  std::printf("shape check: hardware network scales better than naive, and "
              "naive is far from ideal 16x: %s\n\n", ok ? "PASS" : "FAIL");

  // --- part 3: aggregated transport vs per-record baseline ------------------
  //
  // One step (compute + corrected-block writeback) per configuration, with
  // contiguous particle ids — the counting contract of PerfModel's
  // update_comm()/compute_comm(), so the model columns can be validated
  // against the measured transport counters.
  const std::size_t n_corr = (3 * n) / 4;
  std::vector<hw::JParticle> corr(js.begin(),
                                  js.begin() + static_cast<long>(n_corr));
  std::vector<hw::IParticle> cbatch;
  for (std::size_t k = 0; k < n_act; ++k)
    cbatch.push_back(hw::make_i_particle(js[k].id, js[k].x0.to_vec3(),
                                         js[k].v0, fmt));

  std::printf("part 3: per-destination aggregation, one step, corrected "
              "block of %zu, i-block of %zu\n\n", n_corr, n_act);

  const cluster::PerfModel model{cluster::PerfParams{}};
  auto modeled_comm = [&](int hosts, HostMode mode, bool aggregated) {
    auto est = model.update_comm(hosts, mode, n_corr, aggregated);
    est += model.compute_comm(hosts, mode, n_act, aggregated, /*overlap=*/false);
    return est;
  };

  util::Table t3({"mode", "msgs/step", "msgs/step (agg)", "j-upd cut",
                  "B/msg (agg)", "agg factor", "comm ms", "model ms",
                  "identical"});
  auto comm_modes = JsonBuilder::array();
  for (HostMode mode : {HostMode::kNaive, HostMode::kHardwareNet,
                        HostMode::kMatrix2D}) {
    const CommRun plain = run_comm_step(mode, 16, false, js, cbatch, corr);
    const CommRun agg = run_comm_step(mode, 16, true, js, cbatch, corr);
    const bool identical = same_forces(plain.forces, agg.forces);
    const auto est = modeled_comm(16, mode, true);
    const bool on_wire = agg.messages > 0;
    const double reduction =
        on_wire ? double(plain.messages) / double(agg.messages) : 1.0;
    // The coalescing target is the per-record j-writeback flood; the compute
    // collectives are already bulk messages, so they are reported but not
    // part of the >=10x floor.
    const double update_reduction =
        agg.update_messages > 0
            ? double(plain.update_messages) / double(agg.update_messages)
            : 1.0;
    const double model_ratio =
        agg.link_seconds > 0.0 ? est.seconds / agg.link_seconds : 1.0;
    ok = ok && identical;
    if (mode != HostMode::kHardwareNet)
      ok = ok && update_reduction >= 10.0 && model_ratio > 0.8 &&
           model_ratio < 1.25;

    t3.row({cluster::host_mode_name(mode), util::fmt_int(int(plain.messages)),
            util::fmt_int(int(agg.messages)), util::fmt(update_reduction, 1),
            on_wire ? util::fmt(double(agg.bytes) / double(agg.messages), 1)
                    : "-",
            util::fmt(agg.aggregation_factor, 2),
            util::fmt(agg.link_seconds * 1e3, 3),
            util::fmt(est.seconds * 1e3, 3),
            identical ? "yes (bitwise)" : "NO"});

    auto row = JsonBuilder::object()
        .field("mode", mode_key(mode))
        .field("hosts", 16.0)
        .field("messages_per_step_unaggregated", double(plain.messages))
        .field("messages_per_step_aggregated", double(agg.messages))
        .field("message_reduction", reduction)
        .field("update_messages_unaggregated", double(plain.update_messages))
        .field("update_messages_aggregated", double(agg.update_messages))
        .field("update_message_reduction", update_reduction)
        .field("bytes_unaggregated", double(plain.bytes))
        .field("bytes_aggregated", double(agg.bytes))
        .field("bytes_per_message",
               on_wire ? double(agg.bytes) / double(agg.messages) : 0.0)
        .field("aggregation_factor", agg.aggregation_factor)
        .field("measured_comm_seconds", agg.link_seconds)
        .field("modeled_comm_seconds", est.seconds)
        .field("model_measured_ratio", model_ratio)
        .field("modeled_messages", double(est.messages))
        .field("modeled_bytes", double(est.bytes))
        .field("bit_identical", identical);
    comm_modes.push(row);
  }
  std::printf("%s\n", t3.render().c_str());

  // Compute/communication overlap on the matrix mode: same forces, link time
  // partially hidden behind the double-buffered i-block pipeline.
  const CommRun agg_ref = run_comm_step(HostMode::kMatrix2D, 16, true, js,
                                        cbatch, corr);
  const CommRun overlapped = run_comm_step(HostMode::kMatrix2D, 16, true, js,
                                           cbatch, corr, /*overlap=*/true);
  const bool overlap_identical = same_forces(agg_ref.forces, overlapped.forces);
  ok = ok && overlap_identical && overlapped.overlap_saved_seconds > 0.0;
  std::printf("overlap (matrix, 16 hosts): %.3f ms of link time hidden, "
              "forces %s\n\n", overlapped.overlap_saved_seconds * 1e3,
              overlap_identical ? "identical (bitwise)" : "DIFFER");

  // Host-matrix sweep past the paper's 4x4: measured 16 / 64 / 256 hosts,
  // modeled on to 20x20 and 32x32 grids.
  std::printf("host sweep (one step, corrected block of %zu): measured to "
              "16x16, modeled beyond\n\n", n_corr);
  util::Table t4({"hosts", "grid", "kind", "naive msgs (agg)", "matrix msgs (agg)",
                  "matrix reduction", "matrix comm ms"});
  auto sweep = JsonBuilder::array();
  auto sweep_row = [&](int hosts, bool measured) {
    std::uint64_t naive_agg_m = 0, mat_plain_m = 0, mat_agg_m = 0;
    double mat_seconds = 0.0;
    if (measured) {
      naive_agg_m = run_comm_step(HostMode::kNaive, hosts, true, js, cbatch,
                                  corr).messages;
      const CommRun mp = run_comm_step(HostMode::kMatrix2D, hosts, false, js,
                                       cbatch, corr);
      const CommRun ma = run_comm_step(HostMode::kMatrix2D, hosts, true, js,
                                       cbatch, corr);
      mat_plain_m = mp.messages;
      mat_agg_m = ma.messages;
      mat_seconds = ma.link_seconds;
    } else {
      naive_agg_m = modeled_comm(hosts, HostMode::kNaive, true).messages;
      const auto mp = modeled_comm(hosts, HostMode::kMatrix2D, false);
      const auto ma = modeled_comm(hosts, HostMode::kMatrix2D, true);
      mat_plain_m = mp.messages;
      mat_agg_m = ma.messages;
      mat_seconds = ma.seconds;
    }
    const double reduction =
        mat_agg_m > 0 ? double(mat_plain_m) / double(mat_agg_m) : 1.0;
    const int side = static_cast<int>(std::lround(std::sqrt(double(hosts))));
    char grid[16];
    std::snprintf(grid, sizeof grid, "%dx%d", side, side);
    t4.row({util::fmt_int(hosts), grid, measured ? "measured" : "modeled",
            util::fmt_int(int(naive_agg_m)), util::fmt_int(int(mat_agg_m)),
            util::fmt(reduction, 1), util::fmt(mat_seconds * 1e3, 3)});
    sweep.push(JsonBuilder::object()
        .field("hosts", double(hosts))
        .field("grid", grid)
        .field("measured", measured)
        .field("naive_messages_aggregated", double(naive_agg_m))
        .field("matrix_messages_unaggregated", double(mat_plain_m))
        .field("matrix_messages_aggregated", double(mat_agg_m))
        .field("matrix_message_reduction", reduction)
        .field("matrix_comm_seconds", mat_seconds));
  };
  for (int hosts : {16, 64, 256}) sweep_row(hosts, /*measured=*/true);
  for (int hosts : {400, 1024}) sweep_row(hosts, /*measured=*/false);
  std::printf("%s\n", t4.render().c_str());

  const std::string json_path =
      flag_str(argc, argv, "json", "BENCH_comm.json");
  auto doc = JsonBuilder::object()
      .field("bench", "network_modes")
      .field("hardware_concurrency",
             double(std::max(1u, std::thread::hardware_concurrency())))
      .field("n", double(n))
      .field("n_act", double(n_act))
      .field("n_corrected", double(n_corr))
      .field("comm_modes", comm_modes)
      .field("overlap_saved_seconds", overlapped.overlap_saved_seconds)
      .field("overlap_bit_identical", overlap_identical)
      .field("host_sweep", sweep);
  if (write_json_file(json_path, doc))
    std::printf("comm counters written to %s\n", json_path.c_str());

  std::printf("part 3 check: bit-identity everywhere, >=10x message cut at "
              "16 hosts, model within 20%%: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
