// E5 — paper §4.3 + figures 3-6: the three ways to attach multiple hosts.
// The naive configuration (fig. 3) moves O(n_act) particle data between all
// hosts every step and therefore does not scale; the GRAPE network boards
// (figs. 4-5) eliminate host-to-host particle traffic entirely; the 2-D
// host matrix (fig. 6) emulates the network boards over Gigabit Ethernet.
//
// Part 1 measures actual bytes moved by the functional multi-host simulator;
// part 2 runs the analytic model at the paper's full scale.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/parallel_sim.hpp"
#include "grape6/fabric.hpp"
#include "util/rng.hpp"

using namespace g6;
using namespace g6::bench;
using cluster::HostMode;

namespace {

std::vector<hw::JParticle> disk_cloud(std::size_t n, const hw::FormatSpec& fmt) {
  disk::DiskConfig dcfg = disk::uranus_neptune_config(n);
  dcfg.seed = 777;
  auto d = disk::make_disk(dcfg);
  std::vector<hw::JParticle> js(d.system.size());
  for (std::size_t i = 0; i < d.system.size(); ++i) {
    js[i].id = static_cast<std::uint32_t>(i);
    js[i].mass = d.system.mass(i);
    js[i].x0 = util::FixedVec3::quantize(d.system.pos(i), fmt.pos_lsb);
    js[i].v0 = d.system.vel(i);
  }
  return js;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n = full ? 2048 : 512;
  const std::size_t n_act = n / 8;

  std::printf("E5: multi-host organisations (paper §4.3, figs. 3-6)\n");
  std::printf("-----------------------------------------------------\n\n");

  const hw::FormatSpec fmt;
  const auto js = disk_cloud(n, fmt);
  std::vector<hw::IParticle> batch;
  for (std::size_t k = 0; k < n_act; ++k)
    batch.push_back(hw::make_i_particle(js[k * 7 % js.size()].id,
                                        js[k * 7 % js.size()].x0.to_vec3(),
                                        js[k * 7 % js.size()].v0, fmt));

  std::printf("part 1: functional simulation, %zu particles, block of %zu, "
              "one force step + one update step, 16 hosts\n\n", js.size(), n_act);

  util::Table t1({"mode", "Ethernet bytes", "PCI bytes", "LVDS bytes",
                  "forces identical"});
  std::vector<cluster::ForceAccumulator> reference;
  for (HostMode mode : {HostMode::kNaive, HostMode::kHardwareNet, HostMode::kMatrix2D}) {
    cluster::ParallelHostSystem sys(16, mode, fmt, 0.008);
    sys.load(js);
    std::vector<cluster::ForceAccumulator> out;
    sys.compute(0.0, batch, out);
    // Simulate the post-step writeback of the corrected block.
    std::vector<hw::JParticle> corrected;
    for (std::size_t k = 0; k < n_act; ++k) corrected.push_back(js[k]);
    sys.update(corrected);

    bool identical = true;
    if (reference.empty()) {
      reference = out;
    } else {
      for (std::size_t k = 0; k < out.size(); ++k)
        if (!(out[k] == reference[k])) identical = false;
    }
    t1.row({cluster::host_mode_name(mode),
            util::fmt_sci(double(sys.ethernet_bytes()), 3),
            util::fmt_sci(double(sys.hardware_bytes().pci), 3),
            util::fmt_sci(double(sys.hardware_bytes().lvds), 3),
            identical ? "yes (bitwise)" : "NO"});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("part 1b: routed cluster fabric (fig. 7 wiring), one block of "
              "%zu on a 4-host cluster,\nper-link ledger as a single entity "
              "vs partitioned into four units\n\n", n_act);
  {
    util::Table tf({"partition", "PCI bytes", "cascade bytes", "board bytes",
                    "modeled us"});
    for (int groups : {1, 2, 4}) {
      hw::ClusterFabric fabric(fmt, 4, 4, 4, 4096);
      fabric.set_partition(groups);
      fabric.load_group(0, js);
      fabric.predict_all(0.0);
      std::vector<hw::ForceAccumulator> out;
      // The per-compute ledger (the lifetime ledger also holds load writes).
      const auto t = fabric.compute(0, batch, 0.008 * 0.008, out);
      char label[32];
      std::snprintf(label, sizeof label, "%d unit%s", groups,
                    groups == 1 ? "" : "s");
      tf.row({label, util::fmt_sci(double(t.pci_bytes), 2),
              util::fmt_sci(double(t.cascade_bytes), 2),
              util::fmt_sci(double(t.board_bytes), 2),
              util::fmt(t.modeled_seconds * 1e6, 4)});
    }
    std::printf("%s\n", tf.render().c_str());
  }

  std::printf("part 2: analytic model at the paper scale (N = 1.8M, "
              "n_act = 2000), time per block step vs hosts\n\n");
  util::Table t2({"hosts", "naive [ms]", "hardware net [ms]", "2-D matrix [ms]"});
  double naive_first = 0, naive_last = 0, hw_first = 0, hw_last = 0;
  for (int hosts : {1, 4, 16}) {
    cluster::PerfParams p;
    p.machine.clusters = 1;
    p.machine.hosts_per_cluster = hosts;
    const cluster::PerfModel m(p);
    const double t_naive = m.blockstep_seconds(kPaperN, 2000, HostMode::kNaive);
    const double t_hw = m.blockstep_seconds(kPaperN, 2000, HostMode::kHardwareNet);
    // 1, 4 and 16 are all perfect squares, so the matrix mode is defined.
    const double t_2d = m.blockstep_seconds(kPaperN, 2000, HostMode::kMatrix2D);
    t2.row({util::fmt_int(hosts), util::fmt(t_naive * 1e3, 4),
            util::fmt(t_hw * 1e3, 4), util::fmt(t_2d * 1e3, 4)});
    if (hosts == 1) {
      naive_first = t_naive;
      hw_first = t_hw;
    }
    if (hosts == 16) {
      naive_last = t_naive;
      hw_last = t_hw;
    }
  }
  std::printf("%s\n", t2.render().c_str());

  const double naive_speedup = naive_first / naive_last;
  const double hw_speedup = hw_first / hw_last;
  std::printf("speedup 1 -> 16 hosts:  naive %.2fx,  hardware-net %.2fx\n",
              naive_speedup, hw_speedup);

  const bool ok = hw_speedup > naive_speedup && naive_speedup < 8.0;
  std::printf("shape check: hardware network scales better than naive, and "
              "naive is far from ideal 16x: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
