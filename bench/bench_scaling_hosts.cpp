// E6 — system scaling (paper §5, figures 7 and 11): sustained performance as
// the installation grows from one node (1 host, 4 boards, 128 chips) to the
// full four-cluster system (16 hosts, 64 boards, 2048 chips), on the paper's
// workload. Uses the analytic model with the hybrid NB-tree + GbE
// organisation the paper adopted.
#include <cstdio>

#include "bench_common.hpp"

using namespace g6;
using namespace g6::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n_scaled = full ? 2400 : 1000;
  const double t_end = full ? 128.0 : 64.0;

  std::printf("E6: sustained performance vs machine size (paper §5)\n");
  std::printf("-----------------------------------------------------\n");
  std::printf("workload: N = 1.8M, block distribution measured on a scaled "
              "run (N=%zu)\n\n", n_scaled);

  const ScaledRun run = run_scaled_disk(n_scaled, t_end);
  const auto blocks = run.distribution_scaled_to(kPaperN);

  struct Row {
    const char* label;
    int clusters, hosts;
  };
  const Row rows[] = {
      {"1 node  (128 chips)", 1, 1},
      {"2 nodes (256 chips)", 1, 2},
      {"1 cluster (512 chips)", 1, 4},
      {"2 clusters (1024 chips)", 2, 4},
      {"full system (2048 chips)", 4, 4},
  };

  util::Table t({"configuration", "peak [Tflops]", "sustained [Tflops]",
                 "efficiency", "speedup vs 1 node"});
  double first = 0.0;
  double last_eff = 0.0, last_sustained = 0.0;
  for (const Row& r : rows) {
    cluster::PerfParams p;
    p.machine.clusters = r.clusters;
    p.machine.hosts_per_cluster = r.hosts;
    const cluster::PerfModel m(p);
    const auto est = m.run(kPaperN, blocks);
    if (first == 0.0) first = est.sustained_flops;
    t.row({r.label, util::fmt(m.peak_flops() / 1e12, 3),
           util::fmt(est.sustained_flops / 1e12, 3), util::fmt_pct(est.efficiency),
           util::fmt(est.sustained_flops / first, 3) + "x"});
    last_eff = est.efficiency;
    last_sustained = est.sustained_flops;
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("paper: full system sustained 29.5 Tflops (46.5%% of 63.4)\n\n");

  // Shape checks: near-linear scaling to the full machine and a final
  // operating point in the paper's efficiency band.
  const bool ok = last_sustained / first > 8.0 && last_eff > 0.25 &&
                  last_eff < 0.75;
  std::printf("shape check: >8x speedup over 16x more hardware and final "
              "efficiency in band: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
