// E6 — system scaling (paper §5, figures 7 and 11): sustained performance as
// the installation grows from one node (1 host, 4 boards, 128 chips) to the
// full four-cluster system (16 hosts, 64 boards, 2048 chips), on the paper's
// workload. Uses the analytic model with the hybrid NB-tree + GbE
// organisation the paper adopted, then extends the sweep past the paper's
// 4x4 host matrix (8x8 and 16x16 grids over aggregated Gigabit Ethernet)
// with the message-count communication model. Exports
// BENCH_scaling_hosts.json for CI's perf-smoke job.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace g6;
using namespace g6::bench;
using cluster::HostMode;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const std::size_t n_scaled = full ? 2400 : 1000;
  const double t_end = full ? 128.0 : 64.0;

  std::printf("E6: sustained performance vs machine size (paper §5)\n");
  std::printf("-----------------------------------------------------\n");
  std::printf("workload: N = 1.8M, block distribution measured on a scaled "
              "run (N=%zu)\n\n", n_scaled);

  const ScaledRun run = run_scaled_disk(n_scaled, t_end);
  const auto blocks = run.distribution_scaled_to(kPaperN);

  // Representative corrected-block size for the Ethernet message model —
  // the paper's kilo-particle operating point.
  const std::size_t kBlock = 2000;

  struct Row {
    const char* label;
    int clusters, hosts;
    HostMode mode;  // host organisation the row is modeled with
  };
  // Rows up to the full system use the hybrid hardware-network organisation
  // the paper ran; the beyond-paper grids only exist over Ethernet, so they
  // use the 2-D host matrix with aggregation.
  const Row rows[] = {
      {"1 node  (128 chips)", 1, 1, HostMode::kHardwareNet},
      {"2 nodes (256 chips)", 1, 2, HostMode::kHardwareNet},
      {"1 cluster (512 chips)", 1, 4, HostMode::kHardwareNet},
      {"2 clusters (1024 chips)", 2, 4, HostMode::kHardwareNet},
      {"full system (2048 chips)", 4, 4, HostMode::kHardwareNet},
      {"8x8 matrix (8192 chips)", 16, 4, HostMode::kMatrix2D},
      {"16x16 matrix (32768 chips)", 64, 4, HostMode::kMatrix2D},
  };

  util::Table t({"configuration", "hosts", "peak [Tflops]",
                 "sustained [Tflops]", "efficiency", "eth msgs/step (agg)",
                 "msg cut"});
  auto json_rows = JsonBuilder::array();
  double first = 0.0;
  double paper_eff = 0.0, paper_sustained = 0.0;
  double last_eff = 0.0, last_cut = 0.0;
  std::uint64_t last_agg_messages = 0;
  for (const Row& r : rows) {
    cluster::PerfParams p;
    p.machine.clusters = r.clusters;
    p.machine.hosts_per_cluster = r.hosts;
    const cluster::PerfModel m(p);
    const int hosts = r.clusters * r.hosts;
    const auto est = m.run(kPaperN, blocks, r.mode);
    if (first == 0.0) first = est.sustained_flops;

    // Ethernet j-writeback traffic per block step, aggregated vs per-record.
    auto plain = m.update_comm(hosts, r.mode, kBlock, /*aggregated=*/false);
    plain += m.compute_comm(hosts, r.mode, kBlock, false, false);
    auto agg = m.update_comm(hosts, r.mode, kBlock, /*aggregated=*/true);
    agg += m.compute_comm(hosts, r.mode, kBlock, true, false);
    const double cut =
        agg.messages > 0 ? double(plain.messages) / double(agg.messages) : 1.0;

    t.row({r.label, util::fmt_int(hosts), util::fmt(m.peak_flops() / 1e12, 3),
           util::fmt(est.sustained_flops / 1e12, 3),
           util::fmt_pct(est.efficiency), util::fmt_int(int(agg.messages)),
           agg.messages > 0 ? util::fmt(cut, 1) + "x" : "-"});
    if (hosts == 16) {
      paper_eff = est.efficiency;
      paper_sustained = est.sustained_flops;
    }
    last_eff = est.efficiency;
    last_cut = cut;
    last_agg_messages = agg.messages;

    json_rows.push(JsonBuilder::object()
        .field("label", r.label)
        .field("clusters", double(r.clusters))
        .field("hosts_per_cluster", double(r.hosts))
        .field("hosts", double(hosts))
        .field("mode", r.mode == HostMode::kMatrix2D ? "matrix" : "hardware_net")
        .field("peak_tflops", m.peak_flops() / 1e12)
        .field("sustained_tflops", est.sustained_flops / 1e12)
        .field("efficiency", est.efficiency)
        .field("speedup_vs_first", est.sustained_flops / first)
        .field("eth_messages_per_step_unaggregated", double(plain.messages))
        .field("eth_messages_per_step_aggregated", double(agg.messages))
        .field("eth_message_reduction", cut)
        .field("eth_comm_seconds_per_step", agg.seconds));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("paper: full system sustained 29.5 Tflops (46.5%% of 63.4)\n\n");

  const std::string json_path =
      flag_str(argc, argv, "json", "BENCH_scaling_hosts.json");
  auto doc = JsonBuilder::object()
      .field("bench", "scaling_hosts")
      .field("hardware_concurrency",
             double(std::max(1u, std::thread::hardware_concurrency())))
      .field("n_scaled", double(n_scaled))
      .field("t_end", t_end)
      .field("n_paper", double(kPaperN))
      .field("block_size", double(kBlock))
      .field("rows", json_rows);
  if (write_json_file(json_path, doc))
    std::printf("host-scaling table written to %s\n", json_path.c_str());

  // Shape checks: near-linear scaling to the full machine and a paper-point
  // efficiency in the measured band. The beyond-paper matrix grids must show
  // Ethernet traffic that aggregation cuts substantially — and an efficiency
  // collapse below the paper point, which is exactly why the real machine
  // used custom network boards instead of scaling the GbE matrix.
  const bool ok = paper_sustained / first > 8.0 && paper_eff > 0.25 &&
                  paper_eff < 0.75 && last_agg_messages > 0 && last_cut > 5.0 &&
                  last_eff < paper_eff;
  std::printf("shape check: >8x speedup over 16x more hardware, paper-point "
              "efficiency in band, aggregated GbE matrix traffic cut >5x but "
              "efficiency collapsing: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
