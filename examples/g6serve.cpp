// g6serve — the long-lived simulation-as-a-service daemon: accept job
// submissions over a line-delimited JSON protocol on a localhost TCP
// socket, schedule them with per-tenant quotas and priorities, serve
// repeated requests bit-identically from the result cache, and expose
// /jobs (+ the full monitor stack) over HTTP (docs/SERVING.md).
//
//   ./g6serve --port=7364 --http=8080 --workers=2 --cache-mb=64
//
// Options (defaults in brackets):
//   --port=<int>          protocol port; 0 = ephemeral, printed     [7364]
//   --http=<int>          HTTP port for /jobs /metrics /progress;
//                         0 = ephemeral, -1 = no HTTP               [0]
//   --workers=<int>       concurrent job lanes                      [2]
//   --queue=<int>         bounded admission queue length            [32]
//   --max-job-n=<int>     per-job particle cap                      [262144]
//   --max-concurrent=<int>   default tenant quota: live jobs        [4]
//   --max-particles=<int>    default tenant quota: live particles   [1048576]
//   --tenant=<name>:<prio>:<jobs>:<particles>   per-tenant override
//                         (repeatable)
//   --cache-mb=<float>    result-cache LRU byte budget, MiB         [64]
//   --cache-dir=<path>    persist results to disk (warm restarts)
//   --max-connections=<int>  concurrent protocol connections        [32]
//   --idle-timeout=<sec>  drop idle protocol connections            [30]
//
// The daemon exits cleanly on SIGINT/SIGTERM or a client's
// {"op":"shutdown"}. Exit status 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/monitor.hpp"
#include "serve/job_server.hpp"

namespace {

double flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  return fallback;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& fallback = {}) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  return fallback;
}

volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

/// Parse every --tenant=name:priority:jobs:particles occurrence.
void parse_tenants(int argc, char** argv, g6::serve::SchedulerConfig* cfg) {
  const std::string prefix = "--tenant=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) continue;
    const std::string spec = argv[i] + prefix.size();
    g6::serve::TenantQuota quota = cfg->default_quota;
    std::string name = spec;
    const auto c1 = spec.find(':');
    if (c1 != std::string::npos) {
      name = spec.substr(0, c1);
      int prio = 0, jobs = quota.max_concurrent;
      long long particles = static_cast<long long>(quota.max_particles);
      std::sscanf(spec.c_str() + c1, ":%d:%d:%lld", &prio, &jobs, &particles);
      quota.priority = prio;
      quota.max_concurrent = jobs;
      quota.max_particles = static_cast<std::uint64_t>(particles);
    }
    cfg->tenant_quotas[name] = quota;
    std::printf("g6serve: tenant '%s' priority=%d max_concurrent=%d "
                "max_particles=%llu\n",
                name.c_str(), quota.priority, quota.max_concurrent,
                static_cast<unsigned long long>(quota.max_particles));
  }
}

}  // namespace

int main(int argc, char** argv) {
  g6::serve::JobServerConfig cfg;
  cfg.port = static_cast<int>(flag(argc, argv, "port", 7364));
  cfg.scheduler.workers = static_cast<int>(flag(argc, argv, "workers", 2));
  cfg.scheduler.max_queue =
      static_cast<std::size_t>(flag(argc, argv, "queue", 32));
  cfg.scheduler.max_job_particles =
      static_cast<std::uint64_t>(flag(argc, argv, "max-job-n", 262144));
  cfg.scheduler.default_quota.max_concurrent =
      static_cast<int>(flag(argc, argv, "max-concurrent", 4));
  cfg.scheduler.default_quota.max_particles =
      static_cast<std::uint64_t>(flag(argc, argv, "max-particles", 1048576));
  parse_tenants(argc, argv, &cfg.scheduler);
  cfg.cache.max_bytes =
      static_cast<std::size_t>(flag(argc, argv, "cache-mb", 64.0) * 1048576.0);
  cfg.cache.persist_dir = flag_str(argc, argv, "cache-dir");
  cfg.max_connections =
      static_cast<int>(flag(argc, argv, "max-connections", 32));
  cfg.idle_timeout = flag(argc, argv, "idle-timeout", 30.0);

  g6::serve::JobServer server(cfg);
  if (!server.start()) {
    std::fprintf(stderr, "g6serve: cannot bind protocol port %d\n", cfg.port);
    return 2;
  }
  std::printf("g6serve: job protocol on 127.0.0.1:%d (%d workers, queue %zu, "
              "cache %.0f MiB)\n",
              server.port(), cfg.scheduler.workers, cfg.scheduler.max_queue,
              static_cast<double>(cfg.cache.max_bytes) / 1048576.0);

  const double http_port = flag(argc, argv, "http", 0.0);
  g6::obs::Monitor monitor;
#ifndef G6_OBS_DISABLED
  if (http_port >= 0.0) {
    // One HTTP port serves the whole story: /metrics (g6.serve.* counters
    // included), /progress (per-job ETAs) and the /jobs family.
    server.attach_http(monitor.server());
    g6::obs::MonitorConfig mcfg;
    mcfg.port = static_cast<int>(http_port);
    mcfg.flight_dir = "/tmp";
    if (!monitor.start(mcfg)) {
      std::fprintf(stderr, "g6serve: cannot bind HTTP port %d\n", mcfg.port);
      return 2;
    }
    std::printf("g6serve: http://127.0.0.1:%d/jobs (/metrics, /metrics.json, "
                "/progress)\n",
                monitor.port());
  }
#else
  if (http_port >= 0.0)
    std::printf("g6serve: built with G6_OBS_DISABLED — no HTTP endpoints\n");
#endif
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signalled == 0 && !server.wants_shutdown())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("g6serve: shutting down (%s)\n",
              g_signalled != 0 ? "signal" : "shutdown op");
  server.stop();
  return 0;
}
