// g6load — load generator for a running g6serve: submit a mixed-tenant
// stream of jobs over the line protocol, poll to completion, and report
// jobs/s, client-observed p50/p99 submit-to-complete latency, cache hit
// rate and admission rejections (docs/SERVING.md).
//
//   ./g6load --port=7364 --jobs=32 --tenants=2 --dup=0.4
//
// Options (defaults in brackets):
//   --port=<int>       g6serve protocol port (required)
//   --jobs=<int>       submissions to issue                        [32]
//   --tenants=<int>    spread jobs across tenant-0..tenant-k       [2]
//   --n=<int>          particles per job                           [64]
//   --t=<float>        t_end per job                               [0.125]
//   --model=<name>     disk | plummer | coldsphere                 [disk]
//   --backend=<name>   cpu | grape | cluster                       [cpu]
//   --unique=<int>     distinct seeds; jobs cycle through them, so
//                      jobs > unique yields repeats (cache hits)   [jobs]
//   --fault-every=<k>  every k-th job injects a fault at block 1      [0]
//   --timeout=<sec>    overall completion deadline                 [120]
//   --shutdown         send {"op":"shutdown"} when done
//
// Exit status: 0 when every accepted job reached a terminal state in
// time, 1 otherwise (rejections are reported, not failures — admission
// control refusing a burst is the server working as specified).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"

namespace {

double flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  return fallback;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& fallback = {}) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string want = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (want == argv[i]) return true;
  return false;
}

double percentile(std::vector<double> xs, double frac) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const int port = static_cast<int>(flag(argc, argv, "port", -1.0));
  if (port <= 0) {
    std::fprintf(stderr, "g6load: needs --port=<g6serve protocol port>\n");
    return 2;
  }
  const int jobs = static_cast<int>(flag(argc, argv, "jobs", 32));
  const int tenants = std::max(1, static_cast<int>(flag(argc, argv, "tenants", 2)));
  const int unique =
      std::max(1, static_cast<int>(flag(argc, argv, "unique", jobs)));
  const int fault_every = static_cast<int>(flag(argc, argv, "fault-every", 0));
  const double deadline = flag(argc, argv, "timeout", 120.0);

  g6::serve::Client client;
  if (!client.connect(port)) {
    std::fprintf(stderr, "g6load: cannot connect to 127.0.0.1:%d\n", port);
    return 2;
  }

  g6::serve::JobRequest base;
  base.model = flag_str(argc, argv, "model", "disk");
  base.backend = flag_str(argc, argv, "backend", "cpu");
  base.n = static_cast<std::uint64_t>(flag(argc, argv, "n", 64));
  base.t_end = flag(argc, argv, "t", 0.125);

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto seconds = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  struct Pending {
    std::string id;
    double submit_seconds = 0.0;
    double latency = -1.0;  ///< filled when observed terminal
    std::string state;
  };
  std::vector<Pending> accepted;
  std::map<std::string, int> rejections;
  int cached = 0;

  for (int k = 0; k < jobs; ++k) {
    g6::serve::JobRequest req = base;
    req.tenant = "tenant-" + std::to_string(k % tenants);
    req.seed = static_cast<std::uint64_t>(1 + k % unique);
    if (fault_every > 0 && (k + 1) % fault_every == 0) req.fault_after_blocks = 1;
    const double at = seconds();
    const g6::serve::SubmitReply reply = client.submit(req);
    if (!reply.ok) {
      ++rejections[reply.reason.empty() ? "error" : reply.reason];
      continue;
    }
    if (reply.cached) ++cached;
    accepted.push_back({reply.id, at, reply.cached ? seconds() - at : -1.0,
                        reply.cached ? "done" : ""});
  }
  const double submit_done = seconds();

  // Poll every accepted job to a terminal state (round-robin; waits would
  // serialize on the slowest job and skew per-job latency).
  int open = 0;
  for (const Pending& p : accepted)
    if (p.latency < 0.0) ++open;
  while (open > 0 && seconds() < deadline) {
    for (Pending& p : accepted) {
      if (p.latency >= 0.0) continue;
      const g6::obs::JsonValue job = client.status(p.id);
      const auto* state = job.find("state");
      p.state = state != nullptr && state->is_string() ? state->as_string() : "?";
      if (p.state == "done" || p.state == "failed") {
        p.latency = seconds() - p.submit_seconds;
        --open;
      }
    }
    if (open > 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  int done = 0, failed = 0;
  std::vector<double> latencies;
  for (const Pending& p : accepted) {
    if (p.latency < 0.0) continue;
    latencies.push_back(p.latency);
    const g6::obs::JsonValue job = client.status(p.id);
    const auto* state = job.find("state");
    if (state != nullptr && state->is_string() && state->as_string() == "done")
      ++done;
    else
      ++failed;
  }

  const g6::obs::JsonValue stats = client.stats();
  auto stat = [&](const char* path, const char* name) -> double {
    const g6::obs::JsonValue* v =
        path == nullptr ? stats.find(name) : nullptr;
    if (path != nullptr)
      if (const auto* sub = stats.find(path); sub != nullptr)
        v = sub->find(name);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };

  const double wall = seconds();
  std::printf("g6load: %d submitted in %.2fs (%zu accepted, %d cached)\n",
              jobs, submit_done, accepted.size(), cached);
  for (const auto& [reason, count] : rejections)
    std::printf("  rejected %-18s %d\n", reason.c_str(), count);
  std::printf("  done %d  failed %d  unresolved %d\n", done, failed, open);
  if (!latencies.empty())
    std::printf("  latency p50 %.3fs  p99 %.3fs  throughput %.2f jobs/s\n",
                percentile(latencies, 0.50), percentile(latencies, 0.99),
                static_cast<double>(latencies.size()) / wall);
  std::printf("  server: completed %.0f failed %.0f rejected %.0f  cache "
              "hits %.0f misses %.0f\n",
              stat(nullptr, "completed"), stat(nullptr, "failed"),
              stat(nullptr, "rejected"), stat("cache", "hits"),
              stat("cache", "misses"));

  if (has_flag(argc, argv, "shutdown")) client.shutdown_server();
  return open == 0 ? 0 : 1;
}
