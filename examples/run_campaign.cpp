// run_campaign — drive a sweep of paper-scenario runs concurrently through
// the CampaignRunner: each job integrates the Uranus-Neptune disk with its
// own N/eta/seed/backend, checkpointing into its own subdirectory of the
// campaign root. Rerunning the same command continues the campaign: jobs
// marked done in campaign.manifest are skipped, interrupted jobs resume from
// their newest valid checkpoint (docs/CHECKPOINTING.md).
//
//   ./run_campaign --dir=camp --jobs=2 --n=64 --t=0.5
//
// Options (defaults in brackets):
//   --dir=<path>          campaign root directory             [campaign]
//   --jobs=<int>          number of sweep jobs                [2]
//   --n=<int>             planetesimals per job               [64]
//   --t=<float>           end time per job (code units)       [0.5]
//   --eta=<float>         base accuracy parameter             [0.02]
//   --backend=cpu|grape|cluster|p3t|mix  force engine(s)      [cpu]
//   --checkpoint-every=<dT>  per-job segment cadence          [t/4]
//   --step-budget=<int>   per-job block-step budget this invocation
//   --walltime-budget=<sec>  per-job wall budget this invocation
//   --monitor=<port>      serve /metrics /metrics.json /progress /series on
//                         127.0.0.1:<port> while the campaign runs
//                         (0 = ephemeral; the bound port is printed)
//   --series=<path>       write the sampler ring as JSONL on exit
//   --flight-dir=<dir>    flight-recorder dump directory      [.]
//
// The sweep varies the IC seed per job (seed = 1000 + k) and, with
// --backend=mix, cycles cpu/grape/cluster/p3t across jobs. Exit status:
// 0 = every job done, 3 = some jobs preempted (rerun to continue),
// 1 = a job failed.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/monitor.hpp"
#include "run/campaign_runner.hpp"
#include "util/table.hpp"

namespace {

double flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  return fallback;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& fallback = {}) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  return fallback;
}

const char* status_name(g6::run::JobStatus s) {
  switch (s) {
    case g6::run::JobStatus::kCompleted: return "completed";
    case g6::run::JobStatus::kPreempted: return "preempted";
    case g6::run::JobStatus::kFailed: return "FAILED";
    case g6::run::JobStatus::kSkipped: return "done (skipped)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = flag_str(argc, argv, "dir", "campaign");
  const auto jobs = static_cast<std::size_t>(flag(argc, argv, "jobs", 2));
  const auto n = static_cast<std::size_t>(flag(argc, argv, "n", 64));
  const double t_end = flag(argc, argv, "t", 0.5);
  const double eta = flag(argc, argv, "eta", 0.02);
  const std::string backend = flag_str(argc, argv, "backend", "cpu");
  const double ckpt_every = flag(argc, argv, "checkpoint-every", t_end / 4.0);

  g6::run::CampaignSpec spec;
  spec.dir = dir;
  spec.walltime_budget = flag(argc, argv, "walltime-budget", 0.0);
  spec.step_budget =
      static_cast<std::uint64_t>(flag(argc, argv, "step-budget", 0));
  static const char* kMix[] = {"cpu", "grape", "cluster", "p3t"};
  for (std::size_t k = 0; k < jobs; ++k) {
    g6::run::JobSpec job;
    job.backend = backend == "mix" ? kMix[k % 4] : backend;
    job.name = "job" + std::to_string(k) + "_" + job.backend;
    job.n = n;
    job.seed = 1000 + k;
    job.eta = eta;
    job.t_end = t_end;
    job.checkpoint_every = ckpt_every;
    spec.jobs.push_back(job);
  }

  std::printf("campaign '%s': %zu jobs, N=%zu, t_end=%g, backend=%s\n\n",
              dir.c_str(), jobs, n, t_end, backend.c_str());

  const double monitor_port = flag(argc, argv, "monitor", -1.0);
  g6::obs::Monitor monitor;  // destructor stops threads + flushes series
  if (monitor_port >= 0.0) {
    g6::obs::MonitorConfig mcfg;
    mcfg.port = static_cast<int>(monitor_port);
    mcfg.sample_interval = flag(argc, argv, "sample-interval", 1.0);
    mcfg.series_path = flag_str(argc, argv, "series");
    mcfg.flight_dir = flag_str(argc, argv, "flight-dir", ".");
    if (!monitor.start(mcfg)) {
      std::fprintf(stderr, "cannot start monitor on port %d\n", mcfg.port);
      return 2;
    }
    std::printf("monitor: http://127.0.0.1:%d/progress (one row per job)\n\n",
                monitor.port());
    std::fflush(stdout);
  }

  g6::run::CampaignRunner runner(std::move(spec));
  const g6::run::CampaignReport report = runner.run();

  g6::util::Table table({"job", "status", "T", "blocks", "segments", "resumed"});
  for (const auto& res : report.jobs)
    table.row({res.name, status_name(res.status), g6::util::fmt(res.final_time, 5),
               g6::util::fmt_int(static_cast<long long>(res.blocks_run)),
               g6::util::fmt_int(static_cast<long long>(res.segments_written)),
               res.resumed ? "yes" : "no"});
  std::printf("%s\n", table.render().c_str());
  for (const auto& res : report.jobs)
    if (!res.error.empty())
      std::fprintf(stderr, "job %s failed: %s\n", res.name.c_str(),
                   res.error.c_str());

  std::printf("%zu completed, %zu skipped, %zu preempted, %zu failed\n",
              report.completed, report.skipped, report.preempted, report.failed);
  if (report.failed > 0) return 1;
  return report.all_done() ? 0 : 3;
}
