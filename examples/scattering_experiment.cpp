// Planetesimal-protoplanet scattering experiment (paper §2: "This scattering
// efficiency is an important key to understand the planetesimal evolution in
// the Neptune region", and the origin of the Oort cloud).
//
// A proto-Neptune on a circular orbit at 30 AU meets a ring of test
// planetesimals with semi-major axes offset by a range of impact parameters
// b (in Hill radii). For each encounter we integrate a few synodic periods
// and classify the outcome: accreted-region crossing, scattered inward/
// outward, ejected toward the Oort cloud (specific energy > threshold), or
// still on a near-initial orbit.
//
//   ./scattering_experiment [n_per_bin]
#include <cstdio>
#include <cstdlib>

#include "disk/hill.hpp"
#include "disk/kepler.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using g6::util::Vec3;

namespace {

struct Outcome {
  int inward = 0;    // final a < initial band
  int outward = 0;   // final a > initial band
  int excited = 0;   // large eccentricity gain, similar a
  int quiet = 0;     // barely perturbed
  int unbound = 0;   // positive energy: Oort-cloud / ejection channel
};

}  // namespace

int main(int argc, char** argv) {
  const int n_per_bin = argc > 1 ? std::atoi(argv[1]) : 24;

  const double m_pp = 1.0e-5;  // paper protoplanet mass
  const double a_pp = 30.0;
  const double r_hill = g6::disk::hill_radius(a_pp, m_pp, 1.0);
  const double eps = 0.008;

  std::printf("scattering by a %g M_sun protoplanet at %g AU "
              "(Hill radius %.3f AU)\n", m_pp, a_pp, r_hill);
  std::printf("%d planetesimals per impact-parameter bin, a few synodic "
              "periods each\n\n", n_per_bin);

  g6::util::Table table({"b [r_Hill]", "quiet", "excited", "scattered in",
                         "scattered out", "unbound", "mean |da| [r_Hill]",
                         "mean de"});

  for (double b_hill : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0}) {
    g6::util::Rng rng(static_cast<std::uint64_t>(b_hill * 1000));
    Outcome out;
    double sum_da = 0.0, sum_de = 0.0;

    for (int trial = 0; trial < n_per_bin; ++trial) {
      // Protoplanet + one planetesimal, synodic phase randomised.
      g6::nbody::ParticleSystem ps;
      g6::disk::OrbitalElements pel;
      pel.a = a_pp;
      const auto psv = g6::disk::elements_to_state(pel, 1.0);
      ps.add(m_pp, psv.pos, psv.vel);

      g6::disk::OrbitalElements el;
      el.a = a_pp + b_hill * r_hill;
      el.e = 0.001;
      el.inc = 0.0005;
      el.Omega = rng.angle();
      el.omega = rng.angle();
      el.M = rng.angle();
      const auto sv = g6::disk::elements_to_state(el, 1.0);
      ps.add(1.0e-12, sv.pos, sv.vel);

      g6::nbody::CpuDirectBackend backend(eps);
      g6::nbody::IntegratorConfig icfg;
      icfg.solar_gm = 1.0;
      icfg.eta = 0.01;
      icfg.dt_max = 2.0;
      g6::nbody::HermiteIntegrator integ(ps, backend, icfg);
      integ.initialize();

      // Synodic period for this offset; integrate ~2 of them (capped).
      const double da = el.a - a_pp;
      const double p_orb = g6::disk::orbital_period(a_pp, 1.0);
      const double t_syn = std::min(p_orb * 2.0 * a_pp / (3.0 * std::abs(da)), 40000.0);
      integ.evolve(std::min(2.0 * t_syn, 60000.0));

      const g6::disk::StateVector fin{ps.pos(1), ps.vel(1)};
      if (g6::disk::specific_energy(fin, 1.0) >= 0.0) {
        ++out.unbound;
        continue;
      }
      const auto f = g6::disk::state_to_elements(fin, 1.0);
      sum_da += std::abs(f.a - el.a) / r_hill;
      sum_de += f.e - el.e;
      if (f.a < a_pp - 0.5 * r_hill && f.a < el.a - r_hill) {
        ++out.inward;
      } else if (f.a > el.a + r_hill) {
        ++out.outward;
      } else if (f.e > 10.0 * el.e) {
        ++out.excited;
      } else {
        ++out.quiet;
      }
    }

    const int bound = n_per_bin - out.unbound;
    table.row({g6::util::fmt(b_hill, 2), g6::util::fmt_int(out.quiet),
               g6::util::fmt_int(out.excited), g6::util::fmt_int(out.inward),
               g6::util::fmt_int(out.outward), g6::util::fmt_int(out.unbound),
               g6::util::fmt(bound > 0 ? sum_da / bound : 0.0, 3),
               g6::util::fmt(bound > 0 ? sum_de / bound : 0.0, 3)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("reading: within ~2.5 Hill radii encounters strongly perturb the\n"
              "orbit (the protoplanet's feeding/scattering zone); far outside,\n"
              "the disk is only weakly stirred. Strong scatterings feed the\n"
              "outward/unbound channels that build the Oort cloud (paper §2).\n");
  return 0;
}
