// Quickstart: the smallest complete use of the library.
//
// Build a scaled-down version of the paper's planetesimal ring, integrate it
// with the block individual-timestep Hermite scheme (the paper's algorithm),
// and check energy conservation.
//
//   ./quickstart [n_planetesimals] [t_end]
#include <cstdio>
#include <cstdlib>

#include "disk/disk_model.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  const double t_end = argc > 2 ? std::atof(argv[2]) : 128.0;

  // 1. Initial conditions: the paper's Uranus-Neptune ring (§2), scaled to n
  //    planetesimals with the ring mass held at the minimum-mass-nebula value.
  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  g6::disk::DiskRealization disk = g6::disk::make_disk(cfg);
  g6::nbody::ParticleSystem& ps = disk.system;
  std::printf("disk: %zu planetesimals + %zu protoplanets, ring mass %.3g M_sun\n",
              n, disk.protoplanet_indices.size(), disk.ring_mass);

  // 2. A force backend. CpuDirectBackend is plain double-precision direct
  //    summation; swap in g6::hw::Grape6Backend to run on the GRAPE-6
  //    machine model instead (see grape_cluster_demo.cpp).
  const double softening = 0.008;  // AU, paper value
  g6::nbody::CpuDirectBackend backend(softening);

  // 3. The integrator: 4th-order Hermite with power-of-two block timesteps.
  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;  // the Sun as an external potential
  icfg.eta = 0.02;      // Aarseth accuracy parameter
  icfg.dt_max = 4.0;    // largest block step (time units; 1 yr = 2*pi)
  g6::nbody::HermiteIntegrator integrator(ps, backend, icfg);
  integrator.initialize();

  const g6::nbody::EnergyReport e0 =
      g6::nbody::compute_energy(ps, softening, icfg.solar_gm);

  // 4. Evolve. evolve() runs block steps and synchronises every particle at
  //    exactly t_end so diagnostics see a coherent state.
  integrator.evolve(t_end);

  const g6::nbody::EnergyReport e1 =
      g6::nbody::compute_energy(ps, softening, icfg.solar_gm);

  std::printf("evolved to T = %.1f (%.1f years)\n", t_end,
              g6::units::to_years(t_end));
  std::printf("block steps: %llu, individual steps: %llu, mean block size: %.1f\n",
              static_cast<unsigned long long>(integrator.stats().blocks),
              static_cast<unsigned long long>(integrator.stats().steps),
              integrator.stats().mean_block_size());
  std::printf("energy: %.10e -> %.10e  (relative drift %.2e)\n", e0.total(),
              e1.total(), (e1.total() - e0.total()) / std::abs(e0.total()));
  std::printf("interactions computed: %llu\n",
              static_cast<unsigned long long>(backend.interaction_count()));
  return 0;
}
