// Tour of the GRAPE-6 machine model: build the hardware, load particles into
// j-memory, run the predictor and force pipelines, inspect the cycle and
// byte counters, and demonstrate the network-board modes and the multi-host
// organisations the paper discusses (§4-§5).
//
//   ./grape_cluster_demo
#include <cstdio>

#include "cluster/parallel_sim.hpp"
#include "cluster/perf_model.hpp"
#include "grape6/fabric.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/force_direct.hpp"
#include "util/table.hpp"

using namespace g6;

int main() {
  // --- 1. The machine -------------------------------------------------------
  // The real installation: 4 clusters x 4 hosts x 4 boards x 32 chips.
  const hw::MachineConfig paper = hw::MachineConfig::full_system();
  std::printf("GRAPE-6 (paper configuration):\n");
  std::printf("  %d clusters x %d hosts x %d boards x %d chips = %lld chips\n",
              paper.clusters, paper.hosts_per_cluster, paper.boards_per_host,
              paper.chips_per_board, paper.total_chips());
  std::printf("  %lld pipelines @ %.0f MHz x %d ops  ->  peak %.1f Tflops\n",
              paper.total_pipelines(), hw::kClockHz / 1e6,
              hw::kOpsPerInteraction, paper.peak_flops() / 1e12);
  std::printf("  j-memory capacity: %.1f M particles\n\n",
              double(hw::Grape6Machine(paper).capacity()) / 1e6);

  // For the demo we instantiate a miniature machine (same architecture,
  // fewer chips) and actually push particles through it.
  hw::MachineConfig mc = hw::MachineConfig::mini(/*boards=*/4, /*chips=*/8,
                                                 /*jmem=*/1024);
  mc.fmt = hw::FormatSpec::for_scales(64.0, 1e-4);
  std::printf("demo machine: %d boards x %d chips, %zu j-slots\n\n",
              mc.total_boards(), mc.chips_per_board,
              hw::Grape6Machine(mc).capacity());

  // --- 2. Load a disk and compute forces through the ForceBackend API -------
  auto disk = disk::make_disk(disk::uranus_neptune_config(1000));
  auto& ps = disk.system;

  hw::Grape6Backend grape(mc, /*eps=*/0.008);
  nbody::CpuDirectBackend cpu(0.008);
  grape.load(ps);
  cpu.load(ps);

  std::vector<std::uint32_t> ilist;
  for (std::uint32_t i = 0; i < ps.size(); i += 101) ilist.push_back(i);
  std::vector<nbody::Force> f_hw(ilist.size()), f_cpu(ilist.size());
  grape.compute(0.0, ilist, f_hw);
  cpu.compute(0.0, ilist, f_cpu);

  std::printf("force cross-check (GRAPE formats vs double precision):\n");
  util::Table t({"particle", "|a| (grape)", "|a| (cpu)", "rel. diff"});
  for (std::size_t k = 0; k < ilist.size(); ++k) {
    const double ah = norm(f_hw[k].acc), ac = norm(f_cpu[k].acc);
    t.row({util::fmt_int(ilist[k]), util::fmt_sci(ah, 6), util::fmt_sci(ac, 6),
           util::fmt_sci(std::abs(ah - ac) / ac, 1)});
  }
  std::printf("%s\n", t.render().c_str());

  const hw::HwCounters counters = grape.machine().counters();
  std::printf("hardware counters: %llu interactions, %llu j predicted, "
              "%llu pipeline passes\n",
              static_cast<unsigned long long>(counters.interactions),
              static_cast<unsigned long long>(counters.predict_ops),
              static_cast<unsigned long long>(counters.passes));
  std::printf("modeled hardware time for that call: %.1f us\n\n",
              grape.modeled_hw_seconds() * 1e6);

  // --- 3. Network boards ----------------------------------------------------
  std::printf("network board modes (paper §4.3): a 4-host/16-board cluster can "
              "run as one entity,\ntwo halves, or four independent nodes:\n");
  hw::NetworkBoard nb(4);
  for (auto [mode, name] : {std::pair{hw::NetMode::kBroadcast, "broadcast"},
                            {hw::NetMode::kMulticast2, "2-way multicast"},
                            {hw::NetMode::kPointToPoint, "point-to-point"}}) {
    nb.set_mode(mode);
    std::printf("  %-16s -> downlinks {", name);
    for (int p : nb.route(0)) std::printf(" %d", p);
    std::printf(" }\n");
  }
  std::printf("\n");

  // --- 4. Multi-host organisations ------------------------------------------
  std::printf("multi-host organisations, one block of 64 forces on 16 hosts:\n");
  std::vector<hw::JParticle> js(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    js[i].id = static_cast<std::uint32_t>(i);
    js[i].mass = ps.mass(i);
    js[i].x0 = util::FixedVec3::quantize(ps.pos(i), mc.fmt.pos_lsb);
    js[i].v0 = ps.vel(i);
  }
  std::vector<hw::IParticle> batch;
  for (int k = 0; k < 64; ++k)
    batch.push_back(hw::make_i_particle(js[k * 3].id, js[k * 3].x0.to_vec3(),
                                        js[k * 3].v0, mc.fmt));

  util::Table tm({"mode", "Ethernet bytes", "hardware bytes (PCI+LVDS)"});
  for (auto mode : {cluster::HostMode::kNaive, cluster::HostMode::kHardwareNet,
                    cluster::HostMode::kMatrix2D}) {
    cluster::ParallelHostSystem sys(16, mode, mc.fmt, 0.008);
    sys.load(js);
    std::vector<cluster::ForceAccumulator> out;
    sys.compute(0.0, batch, out);
    sys.update(std::vector<hw::JParticle>(js.begin(), js.begin() + 64));
    tm.row({cluster::host_mode_name(mode),
            util::fmt_sci(double(sys.ethernet_bytes()), 2),
            util::fmt_sci(double(sys.hardware_bytes().pci +
                                 sys.hardware_bytes().lvds), 2)});
  }
  std::printf("%s\n", tm.render().c_str());

  // --- 4b. The routed cluster fabric and partitioning ------------------------
  std::printf("cluster fabric (figure 7 wiring) and partitioning:\n");
  {
    hw::ClusterFabric fabric(mc.fmt, 4, 2, 4, 1024);
    std::vector<hw::JParticle> js64(js.begin(), js.begin() + 64);
    fabric.load(js64);
    fabric.predict_all(0.0);
    std::vector<hw::ForceAccumulator> out;
    const hw::FabricTraffic t = fabric.compute(0, batch, 0.008 * 0.008, out);
    std::printf("  one 64-i force request as a single entity: "
                "PCI %.1f kB, cascade %.1f kB, board links %.1f kB, "
                "%.1f us modeled\n",
                t.pci_bytes / 1e3, t.cascade_bytes / 1e3, t.board_bytes / 1e3,
                t.modeled_seconds * 1e6);

    fabric.set_partition(4);  // "four separate units"
    fabric.load_group(1, js64);
    fabric.predict_all(0.0);
    const hw::FabricTraffic t4 = fabric.compute(1, batch, 0.008 * 0.008, out);
    std::printf("  the same request on a 1-host partition: "
                "PCI %.1f kB, cascade %.1f kB (no cross-host traffic)\n\n",
                t4.pci_bytes / 1e3, t4.cascade_bytes / 1e3);
  }

  // --- 5. Performance model -------------------------------------------------
  const cluster::PerfModel model{cluster::PerfParams{}};
  std::printf("full-machine performance model at the paper's operating "
              "point:\n  N = 1.8M, n_act = 2000: %.1f Tflops sustained of "
              "%.1f peak\n  (paper: 29.5 of 63.4)\n",
              model.run(1799998, std::vector<cluster::BlockCount>{{2000, 1}})
                      .sustained_flops / 1e12,
              model.peak_flops() / 1e12);
  return 0;
}
