// The paper's scenario end to end (§2, §6): the proto-Uranus/Neptune
// planetesimal ring with two embedded protoplanets, integrated with the
// block-timestep Hermite scheme, with periodic snapshots and disk analysis.
//
//   ./uranus_neptune [options]
//     --n=<int>        planetesimal count              (default 800)
//     --t=<float>      end time in code units          (default 1600)
//     --mpp=<float>    protoplanet mass in M_sun       (default 1e-5, paper)
//     --snap=<float>   snapshot interval               (default 400)
//     --grape          run on the GRAPE-6 machine model instead of the CPU
//     --backend=cpu|grape|p3t  force engine (--grape is shorthand for grape)
//     --theta=<float>  tree opening angle for --backend=p3t (default 0.4)
//     --r-search=<float>  changeover outer radius r_out (0 = auto from Hill)
//     --out=<prefix>   write snapshot files <prefix>_T.snap
//     --trace <file>   write a Chrome trace_event JSON of the run
//     --metrics <file> write a metrics snapshot JSON (includes the
//                      per-blockstep measured phase breakdown)
//     --checkpoint-dir=<dir>   write G6CKPT1 checkpoint segments into <dir>
//     --checkpoint-every=<dT>  segment cadence in sim time (default: snap)
//     --resume                 continue from the newest valid segment
//     --monitor=<port>         serve /metrics /metrics.json /progress /series
//                              on 127.0.0.1:<port> (0 = ephemeral)
//     --series=<path>          write the sampler ring as JSONL on exit
//     --flight-dir=<dir>       flight-recorder dump directory (default .)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/disk_analysis.hpp"
#include "disk/disk_model.hpp"
#include "disk/hill.hpp"
#include "grape6/backend.hpp"
#include "grape6/g6_types.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "nbody/snapshot.hpp"
#include "obs/blockstep_record.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "p3t/p3t_backend.hpp"
#include "run/run_manager.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace {

double flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string want = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (want == argv[i]) return true;
  return false;
}

// Accepts both `--name=value` and `--name value`.
std::string flag_str(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
    // Space form: the next argv must be a value, not another --flag.
    if (bare == argv[i] && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
      return argv[i + 1];
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const auto n = static_cast<std::size_t>(flag(argc, argv, "n", 800));
  const double t_end = flag(argc, argv, "t", 1600.0);
  const double mpp = flag(argc, argv, "mpp", 1.0e-5);
  const double snap_every = flag(argc, argv, "snap", 400.0);
  const bool use_grape = has_flag(argc, argv, "grape");
  const std::string out_prefix = flag_str(argc, argv, "out");
  const std::string trace_path = flag_str(argc, argv, "trace");
  const std::string metrics_path = flag_str(argc, argv, "metrics");
  const std::string ckpt_dir = flag_str(argc, argv, "checkpoint-dir");
  const double ckpt_every = flag(argc, argv, "checkpoint-every", snap_every);
  const bool resume = has_flag(argc, argv, "resume");
  if (!trace_path.empty()) g6::obs::TraceRecorder::global().enable();

  const double monitor_port = flag(argc, argv, "monitor", -1.0);
  const bool monitored = monitor_port >= 0.0;
  g6::obs::Monitor monitor;  // destructor stops threads + flushes series
  if (monitored) {
    g6::obs::MonitorConfig mcfg;
    mcfg.port = static_cast<int>(monitor_port);
    mcfg.sample_interval = flag(argc, argv, "sample-interval", 1.0);
    mcfg.series_path = flag_str(argc, argv, "series");
    const std::string flight_dir = flag_str(argc, argv, "flight-dir");
    if (!flight_dir.empty()) mcfg.flight_dir = flight_dir;
    if (!monitor.start(mcfg)) {
      std::fprintf(stderr, "cannot start monitor on port %d\n", mcfg.port);
      return 2;
    }
    std::printf("monitor: http://127.0.0.1:%d/metrics (.json, /progress, "
                "/series)\n\n",
                monitor.port());
    std::fflush(stdout);
  }

  const double eps = 0.008;

  g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
  for (auto& pp : cfg.protoplanets) pp.mass = mpp;
  auto disk = g6::disk::make_disk(cfg);
  auto& ps = disk.system;
  std::vector<std::size_t> exclude(disk.protoplanet_indices.begin(),
                                   disk.protoplanet_indices.end());

  std::printf("Uranus-Neptune region, paper configuration (scaled)\n");
  std::printf("  N = %zu + %zu protoplanets of %g M_sun at 20 and 30 AU\n", n,
              exclude.size(), mpp);
  std::printf("  ring mass %.3g M_sun, softening %g AU "
              "(Hill radius at 20 AU: %.3f AU)\n\n",
              disk.ring_mass, eps, g6::disk::hill_radius(20.0, mpp, 1.0));

  std::string backend_name = flag_str(argc, argv, "backend");
  if (backend_name.empty()) backend_name = use_grape ? "grape" : "cpu";
  std::unique_ptr<g6::nbody::ForceBackend> backend;
  if (backend_name == "grape") {
    g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(4, 8, 4096);
    mc.fmt = g6::hw::FormatSpec::for_scales(64.0, 1e-4);
    backend = std::make_unique<g6::hw::Grape6Backend>(mc, eps);
    std::printf("force engine: GRAPE-6 machine model (%lld chips)\n\n",
                mc.total_chips());
  } else if (backend_name == "p3t") {
    // Hybrid tree+direct (docs/P3T.md): neighbor forces stay on the exact
    // Hermite path, the far field comes from the Barnes-Hut tree — this is
    // what opens planetesimal counts past the direct O(N^2) wall.
    g6::p3t::P3TConfig pc;
    pc.theta = flag(argc, argv, "theta", 0.4);
    pc.r_out = flag(argc, argv, "r-search", 0.0);
    pc.r_in = pc.r_out > 0.0 ? pc.r_out / 8.0 : 0.0;
    pc.gm_central = 1.0;
    backend = std::make_unique<g6::p3t::P3THybridBackend>(
        pc, eps, &g6::util::shared_pool());
    std::printf("force engine: P3T hybrid tree+direct (theta=%g)\n\n",
                pc.theta);
  } else if (backend_name == "cpu") {
    backend = std::make_unique<g6::nbody::CpuDirectBackend>(eps);
    std::printf("force engine: CPU direct summation\n\n");
  } else {
    std::fprintf(stderr, "unknown backend '%s' (want cpu|grape|p3t)\n",
                 backend_name.c_str());
    return 2;
  }

  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = 0.02;
  icfg.dt_max = 4.0;
  g6::nbody::HermiteIntegrator integ(ps, *backend, icfg);
  g6::obs::BlockstepRecorder recorder;
  const bool record_steps = !trace_path.empty() || !metrics_path.empty();
  if (record_steps) integ.set_step_recorder(&recorder);
  g6::util::Timer timer;

  const auto export_telemetry = [&] {
    if (!record_steps) return;
    auto& registry = g6::obs::MetricsRegistry::global();
    g6::nbody::publish_metrics(integ.stats(), registry);
    if (backend_name == "grape")
      g6::hw::publish_metrics(
          static_cast<g6::hw::Grape6Backend*>(backend.get())->machine().counters(),
          registry);
    registry.gauge("g6.example.wall_seconds").set(timer.seconds());
    if (!metrics_path.empty()) {
      std::vector<std::pair<std::string, std::string>> extras;
      extras.emplace_back("blocksteps", recorder.to_json());
      if (g6::obs::write_metrics_json(metrics_path, registry.snapshot(), extras))
        std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
      else
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_path.c_str());
    }
    if (!trace_path.empty() &&
        g6::obs::TraceRecorder::global().write_chrome_trace(trace_path))
      std::printf("trace written to %s\n", trace_path.c_str());
  };

  if (!ckpt_dir.empty()) {
    // Checkpointed drive: RunManager owns initialize/restore and segmenting;
    // a rerun with --resume continues bit-identically (docs/CHECKPOINTING.md).
    const double e0 = g6::nbody::compute_energy(ps, eps, 1.0).total();
    g6::run::RunConfig rcfg;
    rcfg.checkpoint_dir = ckpt_dir;
    rcfg.t_end = t_end;
    rcfg.checkpoint_every = ckpt_every;
    rcfg.resume = resume;
    rcfg.ic_seed = cfg.seed;
    g6::run::RunManager manager(integ, rcfg);
    g6::util::Table ck_table({"T", "years", "rms e", "rms i", "|dE/E|",
                              "segments", "wall [s]"});
    manager.on_segment = [&](const g6::run::RunReport& rep, double t) {
      const auto disp = g6::analysis::dispersions(ps, 1.0, exclude);
      const double e = g6::nbody::compute_energy(ps, eps, 1.0).total();
      ck_table.row({g6::util::fmt(t, 5), g6::util::fmt(g6::units::to_years(t), 4),
                    g6::util::fmt(disp.rms_e, 3), g6::util::fmt(disp.rms_i, 3),
                    g6::util::fmt_sci(std::abs((e - e0) / e0), 1),
                    g6::util::fmt_int(static_cast<long long>(rep.segments_written)),
                    g6::util::fmt(timer.seconds(), 3)});
    };
    const g6::run::RunReport rep = manager.run();
    std::printf("%s\n", ck_table.render().c_str());
    if (rep.resumed)
      std::printf("resumed from segment %llu\n",
                  static_cast<unsigned long long>(rep.resume_segment));
    std::printf("%s at T=%g after %llu blocks, %llu segments on disk\n",
                rep.outcome == g6::run::RunOutcome::kCompleted ? "completed"
                                                               : "preempted",
                rep.final_time, static_cast<unsigned long long>(rep.blocks_run),
                static_cast<unsigned long long>(rep.segments_written));
    if (!out_prefix.empty() &&
        rep.outcome == g6::run::RunOutcome::kCompleted) {
      char path[256];
      std::snprintf(path, sizeof path, "%s_%06.0f.snap", out_prefix.c_str(),
                    rep.final_time);
      g6::nbody::write_snapshot_file(path, ps, rep.final_time);
    }
    export_telemetry();
    return rep.outcome == g6::run::RunOutcome::kCompleted ? 0 : 3;
  }

  integ.initialize();
  const double e0 = g6::nbody::compute_energy(ps, eps, 1.0).total();

  g6::obs::JobTicket ticket;
  if (monitored) {
    // Plain drive: publish per-block progress from the driver thread.
    ticket = g6::obs::ProgressTracker::global().add_job("uranus_neptune", 0.0,
                                                        t_end);
    ticket.set_state(g6::obs::JobState::kRunning);
    auto t_gauge = g6::obs::MetricsRegistry::global().gauge("g6.run.t_sys");
    auto blocks_ctr =
        g6::obs::MetricsRegistry::global().counter("g6.run.blocks");
    integ.on_block = [&, t_gauge, blocks_ctr,
                      block_timer = g6::util::Timer()](double t,
                                                       std::size_t n_act) mutable {
      t_gauge.set(t);
      blocks_ctr.add(1);
      ticket.update(t, integ.stats().blocks, timer.seconds());
      g6::obs::FlightRecorder::global().record_step(t, n_act,
                                                    block_timer.lap());
    };
  }

  g6::util::Table table({"T", "years", "rms e", "rms i", "gap@20", "gap@30",
                         "unbound", "|dE/E|", "wall [s]"});
  for (double t = 0.0; t <= t_end + 1e-9; t += snap_every) {
    integ.evolve(t);
    const auto disp = g6::analysis::dispersions(ps, 1.0, exclude);
    const double e = g6::nbody::compute_energy(ps, eps, 1.0).total();
    table.row({g6::util::fmt(t, 5), g6::util::fmt(g6::units::to_years(t), 4),
               g6::util::fmt(disp.rms_e, 3), g6::util::fmt(disp.rms_i, 3),
               g6::util::fmt(g6::analysis::gap_contrast(ps, 1.0, 20.0, 0.6, exclude), 3),
               g6::util::fmt(g6::analysis::gap_contrast(ps, 1.0, 30.0, 0.6, exclude), 3),
               g6::util::fmt_int(static_cast<long long>(disp.n_unbound)),
               g6::util::fmt_sci(std::abs((e - e0) / e0), 1),
               g6::util::fmt(timer.seconds(), 3)});
    if (!out_prefix.empty()) {
      char path[256];
      std::snprintf(path, sizeof path, "%s_%06.0f.snap", out_prefix.c_str(), t);
      g6::nbody::write_snapshot_file(path, ps, t);
    }
  }
  ticket.finish(g6::obs::JobState::kDone);
  std::printf("%s\n", table.render().c_str());

  std::printf("totals: %llu block steps, %llu individual steps, mean block %.1f\n",
              static_cast<unsigned long long>(integ.stats().blocks),
              static_cast<unsigned long long>(integ.stats().steps),
              integ.stats().mean_block_size());
  std::printf("interactions: %llu (%.3g Gordon-Bell ops)\n",
              static_cast<unsigned long long>(backend->interaction_count()),
              57.0 * static_cast<double>(backend->interaction_count()));

  export_telemetry();
  return 0;
}
