// Planetary accretion demo (paper §2: "planetesimals accrete to form
// terrestrial and uranian planets ... Planetary accretion is an important
// process of planet formation").
//
// A narrow, dynamically cold ring of planetesimals at 1 AU — the terrestrial
// zone — evolves under self-gravity with physical collisions and perfect
// merging (the accretion layer on top of the paper's integrator). To bring
// the accretion timescale within a demo run, the physical radii are enhanced
// by a large factor, the standard small-N device of the group's production
// accretion simulations (Kokubo & Ida).
//
//   ./accretion_demo [n] [t_end] [radius_enhancement]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "disk/disk_model.hpp"
#include "nbody/accretion.hpp"
#include "nbody/force_direct.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const double t_end = argc > 2 ? std::atof(argv[2]) : 192.0;
  const double enhance = argc > 3 ? std::atof(argv[3]) : 1500.0;

  // A 0.9-1.1 AU ring carrying ~MMSN rocky mass, dynamically cold.
  g6::disk::DiskConfig cfg;
  cfg.n_planetesimals = n;
  cfg.r_inner = 0.9;
  cfg.r_outer = 1.1;
  cfg.total_ring_mass = 5.0e-7;  // ~0.17 Earth masses
  cfg.e_sigma = 0.002;
  cfg.i_sigma = 0.001;
  cfg.protoplanets.clear();  // growth starts from the planetesimals alone
  cfg.seed = 7;
  auto disk = g6::disk::make_disk(cfg);

  g6::nbody::CollisionConfig ccfg;
  ccfg.radius_enhancement = enhance;

  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = 1.0;
  icfg.eta = 0.02;
  icfg.dt_max = 0.125;  // orbital period at 1 AU is 2*pi
  icfg.dt_min = 0x1p-30;

  const double m0_max = [&] {
    double m = 0.0;
    for (std::size_t i = 0; i < disk.system.size(); ++i)
      m = std::max(m, disk.system.mass(i));
    return m;
  }();

  std::printf("accretion demo: %zu planetesimals in a 0.9-1.1 AU ring, "
              "ring mass %.2g M_sun,\nradius enhancement %.0fx "
              "(largest initial body %.2e M_sun)\n\n",
              n, disk.ring_mass, enhance, m0_max);

  g6::nbody::AccretionDriver driver(
      std::move(disk.system), ccfg, icfg, /*eps=*/1e-5,
      [](double eps) { return std::make_unique<g6::nbody::CpuDirectBackend>(eps); });

  g6::util::Timer timer;
  g6::util::Table t({"T", "years", "bodies", "mergers", "largest [M_sun]",
                     "largest / initial", "wall [s]"});
  const double report_every = t_end / 8.0;
  for (double tt = 0.0; tt <= t_end + 1e-9; tt += report_every) {
    driver.evolve(tt, /*check_interval=*/1.0);
    t.row({g6::util::fmt(tt, 4), g6::util::fmt(g6::units::to_years(tt), 3),
           g6::util::fmt_int(static_cast<long long>(driver.system().size())),
           g6::util::fmt_int(static_cast<long long>(driver.total_mergers())),
           g6::util::fmt_sci(driver.largest_mass(), 2),
           g6::util::fmt(driver.largest_mass() / m0_max, 3),
           g6::util::fmt(timer.seconds(), 3)});
  }
  std::printf("%s\n", t.render().c_str());

  // Final mass spectrum: runaway growth steepens the tail beyond the initial
  // power law.
  g6::util::Histogram spectrum(1e-10, 1e-7, 12, g6::util::BinScale::kLog);
  for (std::size_t i = 0; i < driver.system().size(); ++i)
    spectrum.add(driver.system().mass(i));
  std::printf("final mass spectrum:\n%s", spectrum.to_ascii(40).c_str());

  std::printf("\n%llu mergers in %.1f years of simulated accretion\n",
              static_cast<unsigned long long>(driver.total_mergers()),
              g6::units::to_years(t_end));
  return 0;
}
