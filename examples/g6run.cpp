// g6run — the general-purpose driver binary: choose a model (or load a
// snapshot), choose a force engine (CPU / GRAPE-6 model / multi-host
// cluster), integrate with the paper's block-timestep Hermite scheme, with
// optional collisional accretion, periodic diagnostics and snapshot output.
//
//   ./g6run --model=disk --n=1000 --t=800 --backend=grape --snap=200 --out=run
//
// Options (defaults in brackets):
//   --model=disk|plummer|coldsphere|file   initial conditions        [disk]
//   --file=<path>         snapshot to load when --model=file
//   --n=<int>             particle count                             [1000]
//   --seed=<int>          RNG seed                                   [20020101]
//   --mpp=<float>         disk protoplanet mass, M_sun               [1e-5]
//   --backend=cpu|grape|cluster|p3t                                  [cpu]
//   --cluster-mode=naive|hwnet|matrix   host organisation            [hwnet]
//   --hosts=<int>         simulated hosts for --backend=cluster      [16]
//   --theta=<float>       tree opening angle for --backend=p3t       [0.4]
//   --r-search=<float>    changeover outer radius r_out (0 = auto)   [0]
//   --no-aggregation      per-record cluster transport (A/B the default)
//   --defer-updates       stage j-update flush to the next compute entry
//   --overlap             double-buffered i-block exchange (matrix mode)
//   --t=<float>           end time (code units; 1 yr = 2*pi)         [400]
//   --eta=<float>         Aarseth accuracy parameter                 [0.02]
//   --dtmax=<float>       largest block step (power of two)          [model]
//   --eps=<float>         softening length                           [model]
//   --iters=<int>         corrector passes (P(EC)^n)                 [1]
//   --snap=<float>        diagnostics/snapshot interval              [t/8]
//   --out=<prefix>        write snapshots <prefix>_T.snap
//   --binary              write binary snapshots
//   --collisions=<f>      enable accretion with radius enhancement f
//
// Checkpoint/restart (docs/CHECKPOINTING.md):
//   --checkpoint-dir=<dir>    write G6CKPT1 segments into <dir>
//   --checkpoint-every=<dT>   segment cadence in sim time        [snap]
//   --resume                  continue from the newest valid segment
//   --step-budget=<int>       preempt after this many block steps
//   --walltime-budget=<sec>   preempt after this much wall clock
// A preempted (or SIGKILLed) run rerun with --resume finishes bit-identically
// to an uninterrupted one. Exit status: 0 = completed, 3 = preempted.
//
// Live monitoring (docs/OBSERVABILITY.md):
//   --monitor=<port>          serve /metrics /metrics.json /progress /series
//                             on 127.0.0.1:<port> (0 = ephemeral, port printed)
//   --sample-interval=<sec>   time-series sampler cadence        [1]
//   --series=<path>           write the sampler ring as JSONL on exit
//   --flight-dir=<dir>        flight-recorder dump directory     [.]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/disk_analysis.hpp"
#include "cluster/cluster_backend.hpp"
#include "disk/disk_model.hpp"
#include "grape6/backend.hpp"
#include "nbody/accretion.hpp"
#include "nbody/energy.hpp"
#include "nbody/force_direct.hpp"
#include "nbody/integrator.hpp"
#include "nbody/models.hpp"
#include "nbody/snapshot.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/progress.hpp"
#include "p3t/p3t_backend.hpp"
#include "run/checkpoint.hpp"
#include "run/run_manager.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  return fallback;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& fallback = {}) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string want = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (want == argv[i]) return true;
  return false;
}

g6::hw::FormatSpec format_for(const g6::nbody::ParticleSystem& ps) {
  double extent = 1.0, acc = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i)
    extent = std::max(extent, norm(ps.pos(i)));
  acc = std::max(1e-12, ps.total_mass() / (extent * extent));
  return g6::hw::FormatSpec::for_scales(2.0 * extent, acc);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = flag_str(argc, argv, "model", "disk");
  const auto n = static_cast<std::size_t>(flag(argc, argv, "n", 1000));
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 20020101));

  // --- initial conditions ---------------------------------------------------
  g6::nbody::ParticleSystem ps;
  std::vector<std::size_t> exclude;  // protoplanets, for disk analysis
  double default_eps = 0.008, default_dtmax = 4.0, solar_gm = 1.0;
  if (model == "disk") {
    g6::disk::DiskConfig cfg = g6::disk::uranus_neptune_config(n);
    cfg.seed = seed;
    const double mpp = flag(argc, argv, "mpp", 1e-5);
    for (auto& pp : cfg.protoplanets) pp.mass = mpp;
    auto d = g6::disk::make_disk(cfg);
    ps = std::move(d.system);
    exclude.assign(d.protoplanet_indices.begin(), d.protoplanet_indices.end());
  } else if (model == "plummer") {
    g6::util::Rng rng(seed);
    ps = g6::nbody::plummer_sphere(n, 1.0, 1.0, rng);
    default_eps = 4.0 / static_cast<double>(n);  // the usual 1/N softening scale
    default_dtmax = 0x1p-3;
    solar_gm = 0.0;
  } else if (model == "coldsphere") {
    g6::util::Rng rng(seed);
    ps = g6::nbody::cold_uniform_sphere(n, 1.0, 1.0, rng);
    default_eps = 4.0 / static_cast<double>(n);
    default_dtmax = 0x1p-5;
    solar_gm = 0.0;
  } else if (model == "file") {
    const std::string path = flag_str(argc, argv, "file");
    if (path.empty()) {
      std::fprintf(stderr, "--model=file needs --file=<path>\n");
      return 2;
    }
    g6::nbody::read_snapshot_file(path, ps);
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
    return 2;
  }

  const double eps = flag(argc, argv, "eps", default_eps);
  const double t_end = flag(argc, argv, "t", 400.0);
  const double snap_every = flag(argc, argv, "snap", t_end / 8.0);
  const std::string out_prefix = flag_str(argc, argv, "out");
  const bool binary = has_flag(argc, argv, "binary");
  const double collisions = flag(argc, argv, "collisions", 0.0);

  const std::string ckpt_dir = flag_str(argc, argv, "checkpoint-dir");
  const double ckpt_every = flag(argc, argv, "checkpoint-every", snap_every);
  const bool resume = has_flag(argc, argv, "resume");
  const auto step_budget =
      static_cast<std::uint64_t>(flag(argc, argv, "step-budget", 0));
  const double walltime_budget = flag(argc, argv, "walltime-budget", 0.0);

  // --- live monitoring --------------------------------------------------------
  const double monitor_port = flag(argc, argv, "monitor", -1.0);
  const bool monitored = monitor_port >= 0.0;
  g6::obs::Monitor monitor;  // destructor stops threads + flushes series
  if (monitored) {
    g6::obs::MonitorConfig mcfg;
    mcfg.port = static_cast<int>(monitor_port);
    mcfg.sample_interval = flag(argc, argv, "sample-interval", 1.0);
    mcfg.series_path = flag_str(argc, argv, "series");
    mcfg.flight_dir = flag_str(argc, argv, "flight-dir", ".");
    if (!monitor.start(mcfg)) {
      std::fprintf(stderr, "cannot start monitor on port %d\n", mcfg.port);
      return 2;
    }
    std::printf("monitor: http://127.0.0.1:%d/metrics (.json, /progress, "
                "/series)\n",
                monitor.port());
    std::fflush(stdout);
  }

  g6::nbody::IntegratorConfig icfg;
  icfg.solar_gm = solar_gm;
  icfg.eta = flag(argc, argv, "eta", 0.02);
  icfg.eta_init = icfg.eta / 2.0;
  icfg.dt_max = flag(argc, argv, "dtmax", default_dtmax);
  icfg.corrector_iterations = static_cast<int>(flag(argc, argv, "iters", 1));

  // --- force engine -----------------------------------------------------------
  const std::string backend_name = flag_str(argc, argv, "backend", "cpu");
  auto make_backend = [&](double soft) -> std::unique_ptr<g6::nbody::ForceBackend> {
    if (backend_name == "cpu") {
      return std::make_unique<g6::nbody::CpuDirectBackend>(soft);
    }
    if (backend_name == "grape") {
      g6::hw::MachineConfig mc = g6::hw::MachineConfig::mini(4, 8, 1 << 16);
      mc.fmt = format_for(ps);
      return std::make_unique<g6::hw::Grape6Backend>(mc, soft);
    }
    if (backend_name == "cluster") {
      const std::string mode_name = flag_str(argc, argv, "cluster-mode", "hwnet");
      g6::cluster::HostMode mode = g6::cluster::HostMode::kHardwareNet;
      if (mode_name == "naive") mode = g6::cluster::HostMode::kNaive;
      if (mode_name == "matrix") mode = g6::cluster::HostMode::kMatrix2D;
      const int hosts = static_cast<int>(flag(argc, argv, "hosts", 16));
      auto cb = std::make_unique<g6::cluster::ClusterBackend>(
          hosts, mode, format_for(ps), soft);
      // --no-aggregation / --defer-updates / --overlap tune the transport;
      // forces are bit-identical either way (the determinism contract in
      // docs/PERFORMANCE.md), only the message counters move.
      cb->set_transport_options(!has_flag(argc, argv, "no-aggregation"),
                                has_flag(argc, argv, "defer-updates"),
                                has_flag(argc, argv, "overlap"));
      // A monitored run exposes the g6.net.* aggregation counters live.
      if (monitored)
        cb->set_metrics_registry(&g6::obs::MetricsRegistry::global());
      return cb;
    }
    if (backend_name == "p3t") {
      // Hybrid tree+direct: far field from the Barnes-Hut tree, neighbor
      // forces on the exact Hermite path — opens N well past the direct
      // O(N^2) wall (docs/P3T.md).
      g6::p3t::P3TConfig pc;
      pc.theta = flag(argc, argv, "theta", 0.4);
      pc.r_out = flag(argc, argv, "r-search", 0.0);
      pc.r_in = pc.r_out > 0.0 ? pc.r_out / 8.0 : 0.0;
      pc.gm_central = solar_gm;
      return std::make_unique<g6::p3t::P3THybridBackend>(
          pc, soft, &g6::util::shared_pool());
    }
    return nullptr;
  };
  auto backend = make_backend(eps);
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s'\n", backend_name.c_str());
    return 2;
  }

  std::printf("g6run: model=%s N=%zu backend=%s eps=%g eta=%g dt_max=%g "
              "iters=%d t_end=%g\n\n",
              model.c_str(), ps.size(), backend->name().c_str(), eps, icfg.eta,
              icfg.dt_max, icfg.corrector_iterations, t_end);

  g6::util::Timer timer;
  g6::util::Table table({"T", "N", "|dE/E|", "|dL/L|", "blocks", "steps",
                         "wall [s]"});
  const auto e0 = g6::nbody::compute_energy(ps, eps, solar_gm, &g6::util::shared_pool()).total();
  const auto l0 = norm(g6::nbody::total_angular_momentum(ps));

  auto write_snap = [&](const g6::nbody::ParticleSystem& s, double t) {
    if (out_prefix.empty()) return;
    char path[512];
    std::snprintf(path, sizeof path, "%s_%08.1f.%s", out_prefix.c_str(), t,
                  binary ? "bsnap" : "snap");
    if (binary) {
      g6::nbody::write_snapshot_binary_file(path, s, t);
    } else {
      g6::nbody::write_snapshot_file(path, s, t);
    }
  };

  if (collisions > 0.0) {
    // Accretion mode: the driver owns integrator + backend lifecycles.
    // Checkpoints ride the sweep cadence (the only coherent driver states).
    const std::size_t n_initial = ps.size();
    g6::nbody::CollisionConfig ccfg;
    ccfg.radius_enhancement = collisions;
    g6::nbody::AccretionDriver driver(std::move(ps), ccfg, icfg, eps,
                                      [&](double soft) { return make_backend(soft); });
    std::unique_ptr<g6::run::CheckpointStore> store;
    if (!ckpt_dir.empty()) {
      const std::uint64_t chash = g6::run::config_hash(
          icfg, backend_name + "+accretion", eps, n_initial, seed);
      store = std::make_unique<g6::run::CheckpointStore>(ckpt_dir, chash);
      if (resume && store->open_existing()) {
        if (auto restored = store->load_latest()) {
          driver.restore(std::move(restored->data.system),
                         restored->data.accretion_time,
                         restored->data.accretion_mergers, restored->data.t_sys,
                         std::move(restored->data.stats));
          std::printf("resumed accretion run at T=%g (segment %llu)\n",
                      driver.current_time(),
                      static_cast<unsigned long long>(restored->segment));
        }
      }
      double next_ckpt = driver.current_time() + ckpt_every;
      driver.on_sweep = [&, chash](const g6::nbody::AccretionDriver& d) {
        if (d.current_time() + 1e-12 < next_ckpt) return;
        auto data = g6::run::capture(d.integrator(), chash);
        data.has_accretion = true;
        data.accretion_mergers = d.total_mergers();
        data.accretion_time = d.current_time();
        store->append(data);
        while (next_ckpt <= d.current_time() + 1e-12) next_ckpt += ckpt_every;
      };
    }
    for (double t = 0.0; t <= t_end + 1e-9; t += snap_every) {
      if (t + 1e-9 < driver.current_time()) continue;  // resumed past this row
      driver.evolve(t, snap_every / 4.0);
      const auto& s = driver.system();
      const double e = g6::nbody::compute_energy(s, eps, solar_gm, &g6::util::shared_pool()).total();
      table.row({g6::util::fmt(t, 5),
                 g6::util::fmt_int(static_cast<long long>(s.size())),
                 g6::util::fmt_sci(std::abs((e - e0) / e0), 1), "-",
                 g6::util::fmt_int(static_cast<long long>(driver.total_mergers())),
                 "-", g6::util::fmt(timer.seconds(), 3)});
      write_snap(s, t);
    }
    std::printf("%s\n(the 'blocks' column counts mergers in accretion mode)\n",
                table.render().c_str());
    return 0;
  }

  g6::nbody::HermiteIntegrator integ(ps, *backend, icfg);

  if (!ckpt_dir.empty()) {
    // Checkpointed drive: RunManager owns initialize/restore and segmenting.
    g6::run::RunConfig rcfg;
    rcfg.checkpoint_dir = ckpt_dir;
    rcfg.t_end = t_end;
    rcfg.checkpoint_every = ckpt_every;
    rcfg.walltime_budget = walltime_budget;
    rcfg.step_budget = step_budget;
    rcfg.resume = resume;
    rcfg.ic_seed = seed;
    g6::run::RunManager manager(integ, rcfg);
    manager.on_segment = [&](const g6::run::RunReport&, double t) {
      // Particles sit at individual times inside a segment, so the energy
      // column is approximate until the final (synchronised) row.
      const double e = g6::nbody::compute_energy(ps, eps, solar_gm, &g6::util::shared_pool()).total();
      const double l = norm(g6::nbody::total_angular_momentum(ps));
      table.row({g6::util::fmt(t, 5),
                 g6::util::fmt_int(static_cast<long long>(ps.size())),
                 g6::util::fmt_sci(std::abs((e - e0) / e0), 1),
                 g6::util::fmt_sci(l0 > 0 ? std::abs((l - l0) / l0) : 0.0, 1),
                 g6::util::fmt_int(static_cast<long long>(integ.stats().blocks)),
                 g6::util::fmt_int(static_cast<long long>(integ.stats().steps)),
                 g6::util::fmt(timer.seconds(), 3)});
    };
    const g6::run::RunReport rep = manager.run();
    std::printf("%s\n", table.render().c_str());
    if (rep.resumed) {
      std::printf("resumed from segment %llu (%llu corrupt skipped, wasted "
                  "recompute %.3g sim time)\n",
                  static_cast<unsigned long long>(rep.resume_segment),
                  static_cast<unsigned long long>(rep.crc_fallbacks),
                  rep.wasted_recompute);
    }
    if (rep.outcome == g6::run::RunOutcome::kPreempted) {
      std::printf("preempted at T=%g after %llu blocks; rerun with --resume\n",
                  rep.final_time,
                  static_cast<unsigned long long>(rep.blocks_run));
      return 3;
    }
    write_snap(ps, rep.final_time);
    std::printf("completed at T=%g: %llu blocks, %llu segments, %llu bytes\n",
                rep.final_time, static_cast<unsigned long long>(rep.blocks_run),
                static_cast<unsigned long long>(rep.segments_written),
                static_cast<unsigned long long>(rep.bytes_written));
    std::printf("interactions: %llu\n",
                static_cast<unsigned long long>(backend->interaction_count()));
    return 0;
  }

  integ.initialize();
  g6::obs::JobTicket ticket;
  if (monitored) {
    // Plain (non-checkpointed) drive: publish per-block progress from the
    // driver thread so /progress and the flight recorder stay live.
    ticket = g6::obs::ProgressTracker::global().add_job("g6run", 0.0, t_end);
    ticket.set_state(g6::obs::JobState::kRunning);
    auto t_gauge = g6::obs::MetricsRegistry::global().gauge("g6.run.t_sys");
    auto blocks_ctr = g6::obs::MetricsRegistry::global().counter("g6.run.blocks");
    integ.on_block = [&, t_gauge, blocks_ctr,
                      block_timer = g6::util::Timer()](double t,
                                                       std::size_t n_act) mutable {
      t_gauge.set(t);
      blocks_ctr.add(1);
      ticket.update(t, integ.stats().blocks, timer.seconds());
      g6::obs::FlightRecorder::global().record_step(t, n_act,
                                                    block_timer.lap());
    };
  }
  for (double t = 0.0; t <= t_end + 1e-9; t += snap_every) {
    integ.evolve(t);
    const double e = g6::nbody::compute_energy(ps, eps, solar_gm, &g6::util::shared_pool()).total();
    const double l = norm(g6::nbody::total_angular_momentum(ps));
    table.row({g6::util::fmt(t, 5),
               g6::util::fmt_int(static_cast<long long>(ps.size())),
               g6::util::fmt_sci(std::abs((e - e0) / e0), 1),
               g6::util::fmt_sci(l0 > 0 ? std::abs((l - l0) / l0) : 0.0, 1),
               g6::util::fmt_int(static_cast<long long>(integ.stats().blocks)),
               g6::util::fmt_int(static_cast<long long>(integ.stats().steps)),
               g6::util::fmt(timer.seconds(), 3)});
    write_snap(ps, t);
  }
  ticket.finish(g6::obs::JobState::kDone);
  std::printf("%s\n", table.render().c_str());

  if (model == "disk") {
    const auto census =
        g6::analysis::population_census(ps, solar_gm, {20.0, 30.0}, exclude);
    std::printf("population census: %zu cold, %zu protoplanet-crossing, "
                "%zu scattered (e > 0.3), %zu unbound\n",
                census.n_cold, census.n_crossing, census.n_scattered,
                census.n_unbound);
  }
  std::printf("interactions: %llu\n",
              static_cast<unsigned long long>(backend->interaction_count()));
  return 0;
}
