// Seeded fault-injection campaign driver.
//
// Runs the same workload twice — fault-free and with a randomized, seeded
// fault plan armed — and checks that detection + recovery restored
// bit-identical final force registers, printing the injection/recovery
// accounting. Exit status is non-zero on a bit-identity mismatch, so the
// driver doubles as a CI smoke check.
//
//   ./fault_campaign [--layer machine|cluster|hybrid|all]
//                    [--mode naive|hwnet|matrix]
//                    [--seed S] [--n N] [--steps K] [--hosts H] [--threads T]
//                    [--repeat R] [--monitor PORT] [--flight-dir DIR]
//
// --repeat R reruns the campaign R times (fresh fault seed each round) — the
// long-running shape used to exercise live monitoring and SIGKILL post-
// mortems. --monitor serves /metrics /metrics.json /progress /series on
// 127.0.0.1:PORT while the campaign runs; every fired fault and recovery
// action lands in the flight recorder, whose throttled autosave keeps a
// flight_<ts>.json in --flight-dir current even if the process is SIGKILLed.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/campaign.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/monitor.hpp"
#include "obs/progress.hpp"
#include "util/timer.hpp"

namespace {

g6::cluster::HostMode parse_mode(const std::string& s) {
  if (s == "naive") return g6::cluster::HostMode::kNaive;
  if (s == "hwnet") return g6::cluster::HostMode::kHardwareNet;
  if (s == "matrix") return g6::cluster::HostMode::kMatrix2D;
  std::fprintf(stderr, "unknown --mode '%s' (naive|hwnet|matrix)\n", s.c_str());
  std::exit(2);
}

bool report(const g6::fault::CampaignResult& r) {
  std::printf("%s\n", r.summary.c_str());
  std::printf("  injected=%llu detected(crc_payload=%llu crc_jmem=%llu "
              "selftest=%llu) recovered(retries=%llu resends=%llu "
              "recomputes=%llu remapped=%llu) recovery=%.3g s\n",
              static_cast<unsigned long long>(r.stats.injected_total),
              static_cast<unsigned long long>(r.stats.crc_payload_mismatches),
              static_cast<unsigned long long>(r.stats.crc_jmem_mismatches),
              static_cast<unsigned long long>(r.stats.selftest_failures),
              static_cast<unsigned long long>(r.stats.link_retries),
              static_cast<unsigned long long>(r.stats.resends),
              static_cast<unsigned long long>(r.stats.recomputed_chip_blocks),
              static_cast<unsigned long long>(r.stats.remapped_particles),
              r.recovery_modeled_seconds);
  return r.bit_identical;
}

}  // namespace

int main(int argc, char** argv) {
  std::string layer = "all";
  std::string flight_dir = ".";
  int monitor_port = -1;
  int repeat = 1;
  g6::fault::CampaignConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--layer") layer = next();
    else if (arg == "--mode") cfg.mode = parse_mode(next());
    else if (arg == "--seed") cfg.fault_seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--n") cfg.n = std::atoi(next());
    else if (arg == "--steps") cfg.steps = std::atoi(next());
    else if (arg == "--hosts") cfg.hosts = std::atoi(next());
    else if (arg == "--threads") cfg.threads = std::atoi(next());
    else if (arg == "--repeat") repeat = std::atoi(next());
    else if (arg == "--monitor") monitor_port = std::atoi(next());
    else if (arg == "--flight-dir") flight_dir = next();
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  g6::obs::Monitor monitor;  // destructor stops threads
  if (monitor_port >= 0) {
    g6::obs::MonitorConfig mcfg;
    mcfg.port = monitor_port;
    mcfg.flight_dir = flight_dir;
    mcfg.flight_autosave = 0.5;  // campaigns are short; autosave eagerly
    if (!monitor.start(mcfg)) {
      std::fprintf(stderr, "cannot start monitor on port %d\n", mcfg.port);
      return 2;
    }
    std::printf("monitor: http://127.0.0.1:%d/metrics (.json, /progress, "
                "/series); flight dumps in %s\n",
                monitor.port(), flight_dir.c_str());
    std::fflush(stdout);
  }

  const int rounds = repeat < 1 ? 1 : repeat;
  auto ticket = g6::obs::ProgressTracker::global().add_job(
      "fault_campaign", 0.0, static_cast<double>(rounds));
  ticket.set_state(g6::obs::JobState::kRunning);
  auto& flight = g6::obs::FlightRecorder::global();

  bool ok = true;
  g6::util::Timer wall;
  const std::uint64_t seed0 = cfg.fault_seed;
  for (int round = 0; round < rounds; ++round) {
    cfg.fault_seed = seed0 + static_cast<std::uint64_t>(round);
    flight.note("campaign",
                "round " + std::to_string(round + 1) + "/" +
                    std::to_string(rounds) +
                    " seed=" + std::to_string(cfg.fault_seed));
    if (layer == "machine" || layer == "all") {
      const auto r = g6::fault::run_machine_campaign(cfg);
      ticket.set_capacity_fraction(r.degraded_capacity_fraction);
      if (!r.bit_identical)
        flight.note("fault", "machine campaign NOT bit-identical (seed=" +
                                 std::to_string(cfg.fault_seed) + ")");
      ok = report(r) && ok;
    }
    if (layer == "cluster" || layer == "all") {
      const auto r = g6::fault::run_cluster_campaign(cfg);
      ticket.set_capacity_fraction(r.degraded_capacity_fraction);
      if (!r.bit_identical)
        flight.note("fault", "cluster campaign NOT bit-identical (seed=" +
                                 std::to_string(cfg.fault_seed) + ")");
      ok = report(r) && ok;
    }
    // Process-level kill/resume on the stateful P3T hybrid backend — proves
    // the fault machinery holds beyond the direct-summation force paths.
    if (layer == "hybrid" || layer == "all") {
      const auto r = g6::fault::run_hybrid_campaign(cfg);
      ticket.set_capacity_fraction(r.degraded_capacity_fraction);
      if (!r.bit_identical)
        flight.note("fault", "hybrid campaign NOT bit-identical (seed=" +
                                 std::to_string(cfg.fault_seed) + ")");
      ok = report(r) && ok;
    }
    ticket.update(static_cast<double>(round + 1),
                  static_cast<std::uint64_t>(round + 1), wall.seconds());
    std::fflush(stdout);
  }
  if (!ok) {
    std::fprintf(stderr, "FAULT CAMPAIGN FAILED: recovered run is not "
                         "bit-identical to the fault-free run\n");
    ticket.finish(g6::obs::JobState::kFailed);
    flight.dump("unrecovered-fault");
    return 1;
  }
  ticket.finish(g6::obs::JobState::kDone);
  std::printf("all campaigns recovered bit-identically\n");
  return 0;
}
