// Seeded fault-injection campaign driver.
//
// Runs the same workload twice — fault-free and with a randomized, seeded
// fault plan armed — and checks that detection + recovery restored
// bit-identical final force registers, printing the injection/recovery
// accounting. Exit status is non-zero on a bit-identity mismatch, so the
// driver doubles as a CI smoke check.
//
//   ./fault_campaign [--layer machine|cluster|all] [--mode naive|hwnet|matrix]
//                    [--seed S] [--n N] [--steps K] [--hosts H] [--threads T]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/campaign.hpp"

namespace {

g6::cluster::HostMode parse_mode(const std::string& s) {
  if (s == "naive") return g6::cluster::HostMode::kNaive;
  if (s == "hwnet") return g6::cluster::HostMode::kHardwareNet;
  if (s == "matrix") return g6::cluster::HostMode::kMatrix2D;
  std::fprintf(stderr, "unknown --mode '%s' (naive|hwnet|matrix)\n", s.c_str());
  std::exit(2);
}

bool report(const g6::fault::CampaignResult& r) {
  std::printf("%s\n", r.summary.c_str());
  std::printf("  injected=%llu detected(crc_payload=%llu crc_jmem=%llu "
              "selftest=%llu) recovered(retries=%llu resends=%llu "
              "recomputes=%llu remapped=%llu) recovery=%.3g s\n",
              static_cast<unsigned long long>(r.stats.injected_total),
              static_cast<unsigned long long>(r.stats.crc_payload_mismatches),
              static_cast<unsigned long long>(r.stats.crc_jmem_mismatches),
              static_cast<unsigned long long>(r.stats.selftest_failures),
              static_cast<unsigned long long>(r.stats.link_retries),
              static_cast<unsigned long long>(r.stats.resends),
              static_cast<unsigned long long>(r.stats.recomputed_chip_blocks),
              static_cast<unsigned long long>(r.stats.remapped_particles),
              r.recovery_modeled_seconds);
  return r.bit_identical;
}

}  // namespace

int main(int argc, char** argv) {
  std::string layer = "all";
  g6::fault::CampaignConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--layer") layer = next();
    else if (arg == "--mode") cfg.mode = parse_mode(next());
    else if (arg == "--seed") cfg.fault_seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--n") cfg.n = std::atoi(next());
    else if (arg == "--steps") cfg.steps = std::atoi(next());
    else if (arg == "--hosts") cfg.hosts = std::atoi(next());
    else if (arg == "--threads") cfg.threads = std::atoi(next());
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  bool ok = true;
  if (layer == "machine" || layer == "all")
    ok = report(g6::fault::run_machine_campaign(cfg)) && ok;
  if (layer == "cluster" || layer == "all")
    ok = report(g6::fault::run_cluster_campaign(cfg)) && ok;
  if (!ok) {
    std::fprintf(stderr, "FAULT CAMPAIGN FAILED: recovered run is not "
                         "bit-identical to the fault-free run\n");
    return 1;
  }
  std::printf("all campaigns recovered bit-identically\n");
  return 0;
}
